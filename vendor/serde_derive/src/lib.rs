//! Offline shim for `serde_derive`.
//!
//! The workspace annotates its config and report types with
//! `#[derive(Serialize, Deserialize)]` but never serializes them (no
//! `serde_json`/`bincode` in the tree), so these derives expand to nothing.
//! Swapping in the real `serde_derive` requires no source changes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
