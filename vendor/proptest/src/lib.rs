//! Offline shim for `proptest` 1.x.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait over integer/float ranges, tuples, [`Just`],
//! `prop_flat_map`, and [`collection::vec`]; the `proptest!` item macro with
//! an optional `#![proptest_config(...)]` header; and `prop_assert!` /
//! `prop_assert_eq!`. Sampling is deterministic (seeded per case index) and
//! there is **no shrinking** — a failing case reports its inputs via the
//! assertion message instead.

use rand::rngs::StdRng;

#[doc(hidden)]
pub mod __rt {
    //! Re-exports used by the macro expansions; not public API.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;
}

pub mod strategy {
    //! Core [`Strategy`] trait and combinators.

    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Generates with `self`, then generates from the strategy the
        /// closure builds out of the drawn value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { source: self, f }
        }

        /// Generates with `self`, then maps the drawn value.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let first = self.source.sample(rng);
            (self.f)(first).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(usize, u64, u32, i64, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case configuration and failure reporting.

    /// Per-block configuration (only `cases` is honoured by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Like real proptest, the PROPTEST_CASES environment variable
            // overrides the default case count (CI uses this to pin the
            // differential suites to a known budget).
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    /// A failed property assertion, carried to the harness as an `Err`.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Fails the enclosing property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Declares property tests. Each parameter is drawn from its strategy for
/// every case; the body runs once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = <$crate::__rt::StdRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    0x9c0d_0000_0000_0000u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(
                    let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!("proptest case {case} failed: {err}");
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}
