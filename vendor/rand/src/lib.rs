//! Offline shim for `rand` 0.8.
//!
//! Implements exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `distributions::{Distribution, WeightedIndex}` — over a SplitMix64
//! generator. Deterministic for a given seed, which is all the synthetic
//! dataset generators and initializers require.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Modulo reduction; bias is negligible for the spans used in tests.
    rng.next_u64() % span
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64. Deterministic,
    /// fast, and statistically sound for synthetic-dataset generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::{Rng, RngCore};
    use std::borrow::Borrow;

    /// A type that yields values of `T` when sampled.
    pub trait Distribution<T> {
        /// Draws one value from the distribution.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error constructing a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// The weight list was empty.
        NoItem,
        /// A weight was negative or not finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices proportionally to a list of `f64` weights, via the
    /// cumulative-sum + binary-search scheme the real crate uses.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<X>,
        total: X,
    }

    impl WeightedIndex<f64> {
        /// Builds the sampler from any iterator of (borrowed) weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<f64>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(Self { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let mut local = Probe(rng);
            let x: f64 = local.gen::<f64>() * self.total;
            // partition_point: first index whose cumulative weight exceeds x.
            self.cumulative
                .partition_point(|&c| c <= x)
                .min(self.cumulative.len() - 1)
        }
    }

    // Adapter so `Distribution::sample` can take `&mut R` with `R: ?Sized`
    // while still using the sized-only `Rng::gen` convenience.
    struct Probe<'a, R: RngCore + ?Sized>(&'a mut R);

    impl<R: RngCore + ?Sized> RngCore for Probe<'_, R> {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}
