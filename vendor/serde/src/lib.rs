//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros so that `use serde::{Deserialize, Serialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Nothing in the
//! workspace currently serializes, so no data model is implemented.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
