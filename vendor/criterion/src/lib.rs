//! Offline shim for `criterion` 0.5.
//!
//! Implements the subset of the criterion API the workspace benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is simple wall-clock: a warm-up
//! iteration followed by `sample_size` timed samples, reporting the median.
//! No statistics engine, plots, or baseline storage.
//!
//! Two extensions beyond plain timing:
//!
//! * **test mode** — `cargo bench -- --test` runs every benchmark exactly
//!   once (like real criterion), so CI can smoke-test benches cheaply,
//! * **result access** — [`Criterion::results`] exposes the `(label,
//!   median)` pairs recorded so far, letting benches write machine-readable
//!   summaries (e.g. the `BENCH_spmm.json` sweep) without re-measuring.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function_name, self.parameter)
    }
}

/// Times closures for one benchmark case.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measured.push(start.elapsed());
        }
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            samples: self.criterion.effective_samples(self.sample_size),
            measured: Vec::new(),
        };
        f(&mut bencher);
        self.criterion.report(&label, &mut bencher.measured);
        self
    }

    /// Benches a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label());
        let mut bencher = Bencher {
            samples: self.criterion.effective_samples(self.sample_size),
            measured: Vec::new(),
        };
        f(&mut bencher, input);
        self.criterion.report(&label, &mut bencher.measured);
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// A driver configured from the process arguments: `--test` (as passed
    /// by `cargo bench -- --test`) switches to one sample per benchmark.
    pub fn from_args() -> Self {
        Self {
            test_mode: std::env::args().any(|a| a == "--test"),
            ..Self::default()
        }
    }

    /// Whether the driver runs in `--test` smoke mode (one sample per
    /// benchmark, timings meaningless).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// `(label, median)` of every benchmark reported so far, in run order.
    pub fn results(&self) -> &[(String, Duration)] {
        &self.results
    }

    fn effective_samples(&self, requested: usize) -> usize {
        if self.test_mode {
            1
        } else {
            requested
        }
    }

    fn report(&mut self, label: &str, measured: &mut [Duration]) {
        if measured.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        measured.sort_unstable();
        let median = measured[measured.len() / 2];
        let min = measured[0];
        let max = measured[measured.len() - 1];
        println!("{label:<60} median {median:>12.3?}  [{min:.3?} .. {max:.3?}]");
        self.results.push((label.to_string(), median));
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benches a closure outside any group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let label = id.into();
        let requested = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        let mut bencher = Bencher {
            samples: self.effective_samples(requested),
            measured: Vec::new(),
        };
        f(&mut bencher);
        self.report(&label, &mut bencher.measured);
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            // `--test` (from `cargo bench -- --test`) runs each benchmark
            // once as a smoke test, mirroring real criterion.
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
