//! CLI for the workspace lint pass.
//!
//! - `cargo run -p gcod-check -- lint` — lint the whole workspace tree with
//!   crate-scoped lint applicability; exit 0 when clean, 1 otherwise.
//! - `cargo run -p gcod-check -- lint <files...>` — lint explicit files with
//!   every lint enabled (the strict scope fixtures are tested under).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use gcod_check::{lint_file, lint_tree, LintScope};

fn workspace_root() -> PathBuf {
    // crates/gcod-check → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate sits two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let findings = if args.len() > 1 {
                let mut all = Vec::new();
                for path in &args[1..] {
                    match lint_file(Path::new(path), LintScope::STRICT) {
                        Ok(found) => all.extend(found),
                        Err(err) => {
                            eprintln!("gcod-check: cannot read {path}: {err}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                all
            } else {
                match lint_tree(&workspace_root()) {
                    Ok(found) => found,
                    Err(err) => {
                        eprintln!("gcod-check: tree walk failed: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            for finding in &findings {
                eprintln!("{finding}");
            }
            if findings.is_empty() {
                println!("gcod-check: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("gcod-check: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: gcod-check lint [files...]");
            ExitCode::FAILURE
        }
    }
}
