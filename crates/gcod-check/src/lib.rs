//! Repo-specific static analysis for the GCoD workspace.
//!
//! `gcod-check` is a hand-rolled lint pass — a character-level token scanner,
//! no `syn` (the same vendored-offline constraint the rest of the workspace
//! lives under) — that walks every library source file and enforces
//! invariants `clippy` cannot express because they are *policy*, not syntax:
//!
//! | lint                 | invariant                                                          |
//! |----------------------|--------------------------------------------------------------------|
//! | `safety-comment`     | every `unsafe` block carries a `// SAFETY:` rationale nearby       |
//! | `no-unwrap`          | no `.unwrap()` / `panic!` in non-test library code of the          |
//! |                      | concurrency crates (`gcod-runtime`, `gcod-serve`, `gcod-shard`);   |
//! |                      | lock poisoning                                                     |
//! |                      | goes through the named `lock_unpoisoned` helper and invariants are |
//! |                      | spelled `.expect("why this cannot fail")`                          |
//! | `hash-container`     | no `HashMap`/`HashSet` in deterministic-output crates              |
//! |                      | (`gcod-nn`, `gcod-graph`, `gcod-bench`, `gcod-shard`) — iteration  |
//! |                      | order leaks into golden files; use the `BTree` forms. Covers the   |
//! |                      | f32 *and* quantized compute paths (`gcod_nn::qkernels`,            |
//! |                      | `gcod_graph::quant`), whose bit-exactness contract the             |
//! |                      | differential suites pin                                            |
//! | `wall-clock`         | no `Instant::now` / `SystemTime` in kernel crates — wall-clock     |
//! |                      | reads belong to the timing layer (`gcod-bench`) and the runtime's  |
//! |                      | deadline plumbing, nowhere else. The integer kernels of the        |
//! |                      | quantized path sit in `gcod-nn`/`gcod-graph` and are covered like  |
//! |                      | their f32 counterparts                                             |
//! | `thread-sleep`       | no `thread::sleep` in library code — sleeping is either a test     |
//! |                      | convenience or a bug                                               |
//! | `condvar-wait-while` | every `Condvar::wait`/`wait_timeout` sits inside a `while`/`loop`  |
//! |                      | that re-checks its predicate — never an `if`                       |
//! | `reactor-notify-one` | no `notify_one` in reactor modules (file stem containing           |
//! |                      | `reactor`) — reactor waiters are heterogeneous (dispatcher,        |
//! |                      | pausers, event polls) and multiplex distinct event masks on one    |
//! |                      | condvar, so `notify_one` can wake the wrong class and lose the     |
//! |                      | wakeup the model checker proves impossible with `notify_all`       |
//!
//! Each lint has an annotation escape hatch, placed on the offending line or
//! the line directly above, with a mandatory non-empty reason:
//!
//! ```text
//! // gcod-check: allow(hash-container) — membership-only set; iteration order never observed.
//! ```
//!
//! The scanner strips comments, strings, and char literals first (preserving
//! line structure), so lints never fire on prose; the raw lines are kept
//! alongside for the `SAFETY:` and `allow(...)` checks, which live *in*
//! comments. Test code — `#[cfg(test)]` modules and `#[test]` functions — is
//! exempt from every lint except `safety-comment`.
//!
//! Run it as `cargo run -p gcod-check -- lint` (whole tree, crate-scoped
//! lint applicability) or `cargo run -p gcod-check -- lint <files...>`
//! (explicit files, every lint enabled — the mode the fixture tests use).

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint names, as they appear in findings and `allow(...)` annotations.
pub const LINT_SAFETY: &str = "safety-comment";
pub const LINT_UNWRAP: &str = "no-unwrap";
pub const LINT_HASH: &str = "hash-container";
pub const LINT_WALL_CLOCK: &str = "wall-clock";
pub const LINT_SLEEP: &str = "thread-sleep";
pub const LINT_CONDVAR: &str = "condvar-wait-while";
pub const LINT_NOTIFY: &str = "reactor-notify-one";

/// One lint violation: `file:line: [lint] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub lint: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Which crate-scoped lints apply to a file. `safety-comment`,
/// `thread-sleep`, and `condvar-wait-while` are unconditional; the other
/// three are policy decisions scoped to the crates where the invariant is
/// load-bearing. `reactor_discipline` is *module*-scoped rather than
/// crate-scoped: it follows the file stem (see [`is_reactor_module`]), so
/// [`LintScope::STRICT`] leaves it off and [`lint_file`]/[`lint_tree`]
/// derive it from the path.
#[derive(Debug, Clone, Copy)]
pub struct LintScope {
    pub no_unwrap: bool,
    pub hash_container: bool,
    pub wall_clock: bool,
    pub reactor_discipline: bool,
}

impl LintScope {
    /// Every crate-scoped lint enabled — used for explicitly-passed files
    /// and fixtures (the module-scoped `reactor-notify-one` still follows
    /// the file stem).
    pub const STRICT: LintScope = LintScope {
        no_unwrap: true,
        hash_container: true,
        wall_clock: true,
        reactor_discipline: false,
    };

    /// Crate-scoped applicability, derived from the path's
    /// `crates/<name>/` component (the workspace-root package is `gcod`).
    pub fn for_path(path: &Path) -> LintScope {
        let crate_name = crate_of(path);
        let name = crate_name.as_deref().unwrap_or("");
        LintScope {
            no_unwrap: matches!(name, "gcod-runtime" | "gcod-serve" | "gcod-shard"),
            hash_container: matches!(name, "gcod-nn" | "gcod-graph" | "gcod-bench" | "gcod-shard"),
            wall_clock: matches!(
                name,
                "gcod-nn"
                    | "gcod-graph"
                    | "gcod-core"
                    | "gcod-accel"
                    | "gcod-platform"
                    | "gcod-baselines"
                    | "gcod-shard"
                    | "gcod-serve"
            ),
            reactor_discipline: is_reactor_module(path),
        }
    }
}

/// Is this a reactor module — a file whose stem contains `reactor`
/// (`reactor.rs`, `model_reactor.rs`, ...)? Scopes the condvar-discipline
/// extension `reactor-notify-one`: inside a reactor, waiters of different
/// classes multiplex one condvar, so only `notify_all` is sound.
pub fn is_reactor_module(path: &Path) -> bool {
    path.file_stem()
        .is_some_and(|stem| stem.to_string_lossy().contains("reactor"))
}

fn crate_of(path: &Path) -> Option<String> {
    let mut components = path.components().map(|c| c.as_os_str().to_string_lossy());
    while let Some(component) = components.next() {
        if component == "crates" {
            return components.next().map(|name| name.into_owned());
        }
    }
    None
}

/// Replaces comments, string/char literals, and raw strings with spaces,
/// preserving newlines so every byte of the result sits on its original
/// line. Lints scan this; the raw text is only consulted for comments.
pub fn strip_comments_and_strings(source: &str) -> String {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(source.len());
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    let mut i = 0;
    while i < n {
        let c = chars[i];
        // Line comment: blank to end of line.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            out.push_str("  ");
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, chars[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) strings: r"..."  r#"..."#  br##"..."##.
        let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
        if (c == 'r' || c == 'b') && !prev_is_ident {
            let mut j = i;
            if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if chars[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if chars.get(k) == Some(&'"') {
                    for &ch in &chars[i..=k] {
                        blank(&mut out, ch);
                    }
                    i = k + 1;
                    'raw: while i < n {
                        if chars[i] == '"'
                            && chars[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes
                        {
                            for &ch in &chars[i..(i + 1 + hashes).min(n)] {
                                blank(&mut out, ch);
                            }
                            i += 1 + hashes;
                            break 'raw;
                        }
                        blank(&mut out, chars[i]);
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Ordinary (or byte) string literal.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    blank(&mut out, chars[i]);
                    blank(&mut out, chars[i + 1]);
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                }
                blank(&mut out, chars[i]);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: `'\n'` and `'a'` are literals; `'a` in
        // `<'a>` is a lifetime and passes through untouched.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                out.push(' ');
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        blank(&mut out, chars[i]);
                        blank(&mut out, chars[i + 1]);
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    }
                    blank(&mut out, chars[i]);
                    i += 1;
                }
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                out.push(' ');
                blank(&mut out, chars[i + 1]);
                out.push(' ');
                i += 3;
                continue;
            }
            out.push(c);
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items and
/// `#[test]` functions: from the attribute to the closing brace of the next
/// block. An item that ends in `;` before any `{` (e.g. a `#[cfg(test)]`
/// import) covers only its own lines.
pub fn test_regions(stripped: &str) -> Vec<(usize, usize)> {
    let chars: Vec<char> = stripped.chars().collect();
    let n = chars.len();
    let mut regions = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        if chars[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        let attr_len = ["#[cfg(test)]", "#[test]"]
            .iter()
            .find(|attr| chars[i..].starts_with(&attr.chars().collect::<Vec<_>>()[..]))
            .map(|attr| attr.len());
        let Some(attr_len) = attr_len else {
            i += 1;
            continue;
        };
        let start_line = line;
        i += attr_len;
        // Find the block the attribute decorates (or bail at `;`).
        while i < n && chars[i] != '{' && chars[i] != ';' {
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }
        if i >= n || chars[i] == ';' {
            regions.push((start_line, line));
            continue;
        }
        let mut depth = 0usize;
        while i < n {
            match chars[i] {
                '\n' => line += 1,
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        regions.push((start_line, line));
    }
    regions
}

fn in_test(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// Does `raw` carry a well-formed `gcod-check: allow(<lint>)` annotation for
/// `lint`, inside a `//` comment, with a non-empty reason after the `)`?
fn has_allow(raw: &str, lint: &str) -> bool {
    let Some(comment_start) = raw.find("//") else {
        return false;
    };
    let comment = &raw[comment_start..];
    let marker = "gcod-check: allow(";
    let Some(pos) = comment.find(marker) else {
        return false;
    };
    let rest = &comment[pos + marker.len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    if rest[..close].trim() != lint {
        return false;
    }
    let reason = rest[close + 1..]
        .trim_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':');
    !reason.is_empty()
}

/// A finding at `line` is suppressed by an annotation on that line or the
/// line directly above it.
fn allowed(raw_lines: &[&str], line: usize, lint: &str) -> bool {
    let same = raw_lines.get(line - 1).is_some_and(|l| has_allow(l, lint));
    let above = line >= 2 && raw_lines.get(line - 2).is_some_and(|l| has_allow(l, lint));
    same || above
}

/// Lints a single file's source. `file_label` is used verbatim in findings.
pub fn lint_source(file_label: &str, source: &str, scope: LintScope) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let regions = test_regions(&stripped);
    let mut findings = Vec::new();
    let mut push = |line: usize, lint: &'static str, message: String| {
        if !allowed(&raw_lines, line, lint) {
            findings.push(Finding {
                file: file_label.to_string(),
                line,
                lint,
                message,
            });
        }
    };

    // Line-scoped lints on the stripped text.
    for (idx, line_text) in stripped.lines().enumerate() {
        let line = idx + 1;
        if in_test(&regions, line) {
            continue;
        }
        if scope.no_unwrap {
            if line_text.contains(".unwrap()") {
                push(
                    line,
                    LINT_UNWRAP,
                    "bare `.unwrap()` in library code — spell the invariant with \
                     `.expect(\"...\")`, or `lock_unpoisoned()` for locks"
                        .to_string(),
                );
            }
            if contains_word_bang(line_text, "panic") {
                push(
                    line,
                    LINT_UNWRAP,
                    "`panic!` in library code — return an error or document the \
                     invariant with `.expect(\"...\")`"
                        .to_string(),
                );
            }
        }
        if scope.hash_container {
            for container in ["HashMap", "HashSet"] {
                if contains_word(line_text, container) {
                    push(
                        line,
                        LINT_HASH,
                        format!(
                            "`{container}` in a deterministic-output crate — iteration \
                             order leaks into golden files; use `BTree{}`",
                            &container[4..]
                        ),
                    );
                }
            }
        }
        if scope.wall_clock {
            if line_text.contains("Instant::now") {
                push(
                    line,
                    LINT_WALL_CLOCK,
                    "`Instant::now` outside the timing layer — kernels must be \
                     replayable without a clock"
                        .to_string(),
                );
            }
            if contains_word(line_text, "SystemTime") {
                push(
                    line,
                    LINT_WALL_CLOCK,
                    "`SystemTime` outside the timing layer — kernels must be \
                     replayable without a clock"
                        .to_string(),
                );
            }
        }
        if line_text.contains("thread::sleep") {
            push(
                line,
                LINT_SLEEP,
                "`thread::sleep` in library code — wait on a condition, not the clock".to_string(),
            );
        }
        if scope.reactor_discipline && line_text.contains(".notify_one(") {
            push(
                line,
                LINT_NOTIFY,
                "`notify_one` in a reactor module — heterogeneous waiter classes \
                 share the condvar, so a single wakeup can land on the wrong \
                 class and be lost; use `notify_all`"
                    .to_string(),
            );
        }
    }

    // Structure-scoped lints: a single pass tracking brace frames.
    let structure = structural_lints(&stripped, &regions);
    for line in structure.unsafe_blocks {
        if !safety_comment_nearby(&raw_lines, line) {
            push(
                line,
                LINT_SAFETY,
                "`unsafe` block without a nearby `// SAFETY:` rationale".to_string(),
            );
        }
    }
    for (line, message) in structure.naked_waits {
        push(line, LINT_CONDVAR, message);
    }

    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

/// What the brace-structure pass surfaces for `lint_source` to judge.
struct Structure {
    /// Lines opening an `unsafe { ... }` block.
    unsafe_blocks: Vec<usize>,
    /// `Condvar` waits with no enclosing loop inside their function.
    naked_waits: Vec<(usize, String)>,
}

/// Whole-word occurrence (no identifier char on either side).
fn contains_word(haystack: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0
            || !haystack[..start]
                .chars()
                .next_back()
                .is_some_and(is_ident_char);
        let right_ok = !haystack[end..].chars().next().is_some_and(is_ident_char);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

/// `word!` with no identifier char before it (matches `panic!`, not
/// `some_panic!`).
fn contains_word_bang(haystack: &str, word: &str) -> bool {
    let with_bang = format!("{word}!");
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(&with_bang) {
        let start = from + pos;
        let left_ok = start == 0
            || !haystack[..start]
                .chars()
                .next_back()
                .is_some_and(is_ident_char);
        if left_ok {
            return true;
        }
        from = start + with_bang.len();
    }
    false
}

/// Brace-frame label for the condvar-discipline walk: what kind of scope a
/// `{` opened. `if`/`match`/plain blocks are transparent — a wait inside
/// them still "sees" an enclosing loop; `fn` bodies and closures are
/// boundaries — a loop outside the function does not count.
#[derive(Clone, Copy)]
enum Frame {
    Boundary,
    Loop,
    Transparent,
}

/// One pass over the stripped text for the lints that need brace structure:
/// `safety-comment` (an `unsafe` token directly opening a block) and
/// `condvar-wait-while` (a `.wait(..)`/`.wait_timeout(..)` receiver call
/// whose nearest loop-or-boundary frame is not a loop).
fn structural_lints(stripped: &str, regions: &[(usize, usize)]) -> Structure {
    let chars: Vec<char> = stripped.chars().collect();
    let n = chars.len();
    let mut structure = Structure {
        unsafe_blocks: Vec::new(),
        naked_waits: Vec::new(),
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending: Option<Frame> = None;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        match c {
            '{' => {
                stack.push(pending.take().unwrap_or(Frame::Transparent));
            }
            '}' => {
                stack.pop();
                pending = None;
            }
            ';' => pending = None,
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && is_ident_char(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                match word.as_str() {
                    "while" | "loop" | "for" => pending = Some(Frame::Loop),
                    // `move` approximates a closure boundary; item keywords
                    // end any function scope.
                    "fn" | "move" | "mod" | "impl" | "trait" | "struct" | "enum" | "union" => {
                        pending = Some(Frame::Boundary)
                    }
                    "unsafe" => {
                        let mut j = i;
                        while j < n && chars[j].is_whitespace() {
                            j += 1;
                        }
                        if chars.get(j) == Some(&'{') {
                            structure.unsafe_blocks.push(line);
                        }
                    }
                    "wait" | "wait_timeout" => {
                        let preceded_by_dot = chars[..start]
                            .iter()
                            .rev()
                            .find(|ch| !ch.is_whitespace())
                            .is_some_and(|&ch| ch == '.');
                        if preceded_by_dot && chars.get(i) == Some(&'(') {
                            let needed = if word == "wait" { 1 } else { 2 };
                            if count_args(&chars, i) >= needed && !in_test(regions, line) {
                                let satisfied = stack.iter().rev().find_map(|f| match f {
                                    Frame::Loop => Some(true),
                                    Frame::Boundary => Some(false),
                                    Frame::Transparent => None,
                                });
                                if !satisfied.unwrap_or(false) {
                                    structure.naked_waits.push((
                                        line,
                                        format!(
                                            "`Condvar::{word}` outside a `while`/`loop` — \
                                             wakeups are advisory; re-check the predicate \
                                             in a loop"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                    _ => {}
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    structure
}

/// Argument count of the call whose `(` sits at `open`: top-level commas
/// plus one, or zero for an empty list. Brackets and braces nest; angle
/// brackets are ignored (turbofish inside an argument list is rare enough
/// not to matter for a ≥-threshold check).
fn count_args(chars: &[char], open: usize) -> usize {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut saw_content = false;
    let mut i = open;
    while i < chars.len() {
        match chars[i] {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            ',' if depth == 1 => commas += 1,
            c if depth >= 1 && !c.is_whitespace() => saw_content = true,
            _ => {}
        }
        i += 1;
    }
    if saw_content {
        commas + 1
    } else {
        0
    }
}

/// The `SAFETY:` check is a second, line-scoped pass over the *raw* text:
/// structural detection finds the block, this decides whether a rationale
/// is attached — on the `unsafe` line itself or anywhere in the contiguous
/// run of `//` comment lines directly above it (multi-line rationales are
/// idiomatic).
fn safety_comment_nearby(raw_lines: &[&str], line: usize) -> bool {
    if raw_lines
        .get(line - 1)
        .is_some_and(|l| l.contains("SAFETY:"))
    {
        return true;
    }
    let mut above = line - 1; // 1-based line of the row above `line`
    while above >= 1 {
        let text = raw_lines[above - 1].trim_start();
        if !text.starts_with("//") {
            return false;
        }
        if text.contains("SAFETY:") {
            return true;
        }
        above -= 1;
    }
    false
}

/// Lints one on-disk file. The module-scoped `reactor-notify-one` lint is
/// derived from the file name on top of the passed crate scope.
pub fn lint_file(path: &Path, scope: LintScope) -> io::Result<Vec<Finding>> {
    let source = fs::read_to_string(path)?;
    let scope = LintScope {
        reactor_discipline: scope.reactor_discipline || is_reactor_module(path),
        ..scope
    };
    Ok(lint_source(&path.display().to_string(), &source, scope))
}

/// Walks the workspace's library sources (`src/` at the root and under each
/// `crates/*`), skipping `vendor/`, `target/`, and test fixtures, and lints
/// each file under its crate-scoped [`LintScope`]. Findings come back
/// sorted by path and line.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let src = crate_dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    let mut findings = Vec::new();
    for file in &files {
        let scope = LintScope::for_path(file);
        let label = file
            .strip_prefix(root)
            .unwrap_or(file)
            .display()
            .to_string();
        let source = fs::read_to_string(file)?;
        findings.extend(lint_source(&label, &source, scope));
    }
    Ok(findings)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_blanks_comments_and_strings_but_keeps_lines() {
        let src = "let a = \"unwrap()\"; // .unwrap()\nlet b = 'x';\n/* panic! */ let c = 1;\n";
        let stripped = strip_comments_and_strings(src);
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(!stripped.contains("unwrap"));
        assert!(!stripped.contains("panic"));
        assert!(stripped.contains("let a ="));
        assert!(stripped.contains("let c = 1;"));
    }

    #[test]
    fn strip_handles_raw_strings_and_lifetimes() {
        let src = "fn f<'a>(s: &'a str) -> &'a str { let _ = r#\"panic!\"#; s }";
        let stripped = strip_comments_and_strings(src);
        assert!(!stripped.contains("panic"));
        assert!(stripped.contains("fn f<'a>"));
    }

    #[test]
    fn allow_annotation_requires_matching_lint_and_reason() {
        assert!(has_allow(
            "x(); // gcod-check: allow(no-unwrap) — invariant documented above.",
            LINT_UNWRAP
        ));
        assert!(!has_allow(
            "x(); // gcod-check: allow(no-unwrap)",
            LINT_UNWRAP
        ));
        assert!(!has_allow(
            "x(); // gcod-check: allow(thread-sleep) — wrong lint.",
            LINT_UNWRAP
        ));
        assert!(!has_allow(
            "x(); // allow(no-unwrap) — not ours.",
            LINT_UNWRAP
        ));
    }

    #[test]
    fn test_region_detection_spans_the_module() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n}\n";
        let stripped = strip_comments_and_strings(src);
        let regions = test_regions(&stripped);
        assert!(in_test(&regions, 3));
        assert!(in_test(&regions, 5));
        assert!(!in_test(&regions, 1));
    }

    #[test]
    fn unwrap_in_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint_source("x.rs", src, LintScope::STRICT).is_empty());
    }

    #[test]
    fn wait_inside_while_is_clean_inside_if_fires() {
        let in_while = "fn f() { while !*g { g = cv.wait(g); } }";
        assert!(lint_source("x.rs", in_while, LintScope::STRICT).is_empty());
        let in_if = "fn f() { if !*g { g = cv.wait(g); } }";
        let findings = lint_source("x.rs", in_if, LintScope::STRICT);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, LINT_CONDVAR);
    }

    #[test]
    fn zero_arg_wait_is_not_a_condvar_wait() {
        // `Latch::wait()` / `Ticket::wait()` take no guard — never flagged.
        let src = "fn f(t: &Ticket) { t.wait(); }";
        assert!(lint_source("x.rs", src, LintScope::STRICT).is_empty());
    }

    #[test]
    fn notify_one_fires_only_under_reactor_discipline() {
        let src = "fn raise(cv: &Condvar) { cv.notify_one(); }";
        let reactor_scope = LintScope {
            reactor_discipline: true,
            ..LintScope::STRICT
        };
        let findings = lint_source("reactor.rs", src, reactor_scope);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].lint, LINT_NOTIFY);
        assert!(
            lint_source("server.rs", src, LintScope::STRICT).is_empty(),
            "outside reactor modules notify_one is a legitimate single-waiter handoff"
        );
        let all = "fn raise(cv: &Condvar) { cv.notify_all(); }";
        assert!(lint_source("reactor.rs", all, reactor_scope).is_empty());
    }

    #[test]
    fn reactor_module_detection_follows_the_file_stem() {
        assert!(is_reactor_module(Path::new("crates/x/src/reactor.rs")));
        assert!(is_reactor_module(Path::new("tests/model_reactor.rs")));
        assert!(!is_reactor_module(Path::new("crates/x/src/server.rs")));
    }

    #[test]
    fn safety_rationale_distance() {
        assert!(safety_comment_nearby(
            &["// SAFETY: bounds checked above.", "unsafe { x() }"],
            2
        ));
        assert!(!safety_comment_nearby(&["let a = 1;", "unsafe { x() }"], 2));
    }
}
