//! Fixture tests for the lint pass: each seeded fixture fires exactly the
//! expected lint on the expected lines, the clean fixture is silent, the
//! allow annotation suppresses, and the CLI's exit codes match.

use std::path::PathBuf;
use std::process::Command;

use gcod_check::{
    lint_file, LintScope, LINT_CONDVAR, LINT_HASH, LINT_NOTIFY, LINT_SAFETY, LINT_SLEEP,
    LINT_UNWRAP, LINT_WALL_CLOCK,
};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings_of(name: &str) -> Vec<(usize, &'static str)> {
    lint_file(&fixture(name), LintScope::STRICT)
        .expect("fixture file is readable")
        .into_iter()
        .map(|f| (f.line, f.lint))
        .collect()
}

#[test]
fn bare_unwrap_fixture_fires_on_unwrap_and_panic() {
    assert_eq!(
        findings_of("bare_unwrap.rs"),
        vec![(5, LINT_UNWRAP), (10, LINT_UNWRAP)]
    );
}

#[test]
fn unsafe_fixture_fires_without_safety_comment() {
    assert_eq!(findings_of("unsafe_no_safety.rs"), vec![(4, LINT_SAFETY)]);
}

#[test]
fn hash_container_fixture_fires_on_import_and_signature() {
    assert_eq!(
        findings_of("hash_container.rs"),
        vec![(3, LINT_HASH), (5, LINT_HASH)]
    );
}

#[test]
fn wall_clock_fixture_fires_on_the_clock_read() {
    assert_eq!(findings_of("wall_clock.rs"), vec![(6, LINT_WALL_CLOCK)]);
}

#[test]
fn thread_sleep_fixture_fires_on_the_sleep() {
    assert_eq!(findings_of("thread_sleep.rs"), vec![(4, LINT_SLEEP)]);
}

#[test]
fn condvar_fixture_fires_on_wait_under_if() {
    assert_eq!(findings_of("condvar_wait_if.rs"), vec![(8, LINT_CONDVAR)]);
}

#[test]
fn reactor_notify_one_fixture_fires_via_the_file_stem() {
    assert_eq!(findings_of("reactor_notify_one.rs"), vec![(9, LINT_NOTIFY)]);
}

#[test]
fn clean_fixture_is_silent() {
    assert_eq!(findings_of("clean.rs"), vec![]);
}

#[test]
fn allow_annotations_suppress_every_violation() {
    assert_eq!(findings_of("allowed.rs"), vec![]);
}

/// The CLI contract CI relies on: exit 0 on the real tree, non-0 on each
/// seeded violation fixture.
#[test]
fn cli_exits_zero_on_tree_and_nonzero_on_violations() {
    let bin = env!("CARGO_BIN_EXE_gcod-check");
    let tree = Command::new(bin)
        .arg("lint")
        .output()
        .expect("lint pass runs");
    assert!(
        tree.status.success(),
        "workspace tree must lint clean:\n{}",
        String::from_utf8_lossy(&tree.stderr)
    );
    for violation in [
        "bare_unwrap.rs",
        "unsafe_no_safety.rs",
        "hash_container.rs",
        "wall_clock.rs",
        "thread_sleep.rs",
        "condvar_wait_if.rs",
        "reactor_notify_one.rs",
    ] {
        let status = Command::new(bin)
            .arg("lint")
            .arg(fixture(violation))
            .status()
            .expect("lint pass runs");
        assert!(!status.success(), "{violation} must fail the lint pass");
    }
    for clean in ["clean.rs", "allowed.rs"] {
        let status = Command::new(bin)
            .arg("lint")
            .arg(fixture(clean))
            .status()
            .expect("lint pass runs");
        assert!(status.success(), "{clean} must pass the lint pass");
    }
}
