// Fixture: [no-unwrap] must fire on the bare unwrap (line 5) and the
// panic (line 10), and nowhere else.

pub fn first(values: &[u32]) -> u32 {
    *values.first().unwrap()
}

pub fn must_be_even(v: u32) {
    if v % 2 != 0 {
        panic!("odd value");
    }
}
