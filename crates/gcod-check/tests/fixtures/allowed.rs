// Fixture: every violation below carries a well-formed allow annotation —
// must produce zero findings under the strict scope.

// gcod-check: allow(hash-container) — fixture: annotation on the line above suppresses.
use std::collections::HashMap;

// gcod-check: allow(hash-container) — fixture: membership-only map, no iteration.
pub fn lookup(map: &HashMap<u32, u32>, key: u32) -> u32 {
    map.get(&key).copied().unwrap_or(0)
}

pub fn must(values: &[u32]) -> u32 {
    *values.first().unwrap() // gcod-check: allow(no-unwrap) — fixture: same-line annotation suppresses.
}

pub fn nap() {
    // gcod-check: allow(thread-sleep) — fixture: deliberate example backoff.
    std::thread::sleep(std::time::Duration::from_millis(1));
}
