// Fixture: [hash-container] must fire on the import (line 3) and the
// signature (line 5).
use std::collections::HashMap;

pub fn total(map: &HashMap<String, u32>) -> u32 {
    map.values().sum()
}
