// Fixture: [thread-sleep] must fire on the sleep (line 4).

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
