// Fixture: [condvar-wait-while] must fire on the wait under `if`
// (line 8) — a single wakeup check instead of a predicate loop.
use std::sync::{Condvar, Mutex, PoisonError};

pub fn wait_once(lock: &Mutex<bool>, cond: &Condvar) {
    let mut guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
    if !*guard {
        guard = cond.wait(guard).unwrap_or_else(PoisonError::into_inner);
    }
    drop(guard);
}
