//! Seeded violation: `notify_one` inside a reactor module (the file stem
//! scopes the lint) — heterogeneous waiters share the condvar.

use std::sync::{Condvar, Mutex};

pub fn raise(lock: &Mutex<u64>, changed: &Condvar) {
    let mut bits = lock.lock().unwrap_or_else(|e| e.into_inner());
    *bits |= 1;
    changed.notify_one();
}
