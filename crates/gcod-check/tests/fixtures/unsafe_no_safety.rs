// Fixture: [safety-comment] must fire on the unsafe block (line 4).

pub fn peek(values: &[u32]) -> u32 {
    unsafe { *values.get_unchecked(0) }
}
