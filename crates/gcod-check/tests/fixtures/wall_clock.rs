// Fixture: [wall-clock] must fire on the clock read (line 6), not the
// import.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
