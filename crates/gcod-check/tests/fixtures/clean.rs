// Fixture: the disciplined spellings of everything the other fixtures get
// wrong — must produce zero findings under the strict scope.
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, PoisonError};

/// Waits until the flag flips, re-checking the predicate in a loop.
pub fn wait_ready(lock: &Mutex<bool>, cond: &Condvar) {
    let mut guard = lock.lock().unwrap_or_else(PoisonError::into_inner);
    while !*guard {
        guard = cond.wait(guard).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Deterministic histogram: sorted iteration order.
pub fn histogram(values: &[u32]) -> BTreeMap<u32, usize> {
    let mut out = BTreeMap::new();
    for v in values {
        *out.entry(*v).or_insert(0usize) += 1;
    }
    out
}

/// The documented-invariant spelling the `no-unwrap` lint points at.
pub fn first(values: &[u32]) -> u32 {
    *values.first().expect("caller guarantees a non-empty slice")
}

pub fn first_unchecked(values: &[u32]) -> u32 {
    // SAFETY: callers guarantee `values` is non-empty.
    unsafe { *values.get_unchecked(0) }
}
