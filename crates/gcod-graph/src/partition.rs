//! Balanced edge-cut graph partitioning.
//!
//! The GCoD algorithm uses METIS to split each degree class into subgraphs
//! with a similar number of edges (Step 1, Sec. IV-B). This module provides a
//! from-scratch multilevel partitioner with the same interface obligations:
//! produce `k` parts of roughly equal weight while keeping the edge cut low.
//!
//! The implementation follows the classic multilevel recipe:
//!
//! 1. **Coarsening** — repeated heavy-edge matching collapses matched node
//!    pairs until the graph is small,
//! 2. **Initial partitioning** — greedy growth of `k` regions balanced by
//!    node weight,
//! 3. **Uncoarsening + refinement** — the partition is projected back and a
//!    boundary Kernighan–Lin style pass moves nodes that reduce the cut
//!    without violating the balance constraint.

use crate::{CsrMatrix, GraphError, Result};
use serde::{Deserialize, Serialize};

/// Configuration of the partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of parts to produce.
    pub parts: usize,
    /// Allowed imbalance: a part may hold up to `(1 + imbalance)` times the
    /// average weight.
    pub imbalance: f64,
    /// Stop coarsening once the graph has at most this many nodes.
    pub coarsen_until: usize,
    /// Number of boundary refinement sweeps per uncoarsening level.
    pub refinement_passes: usize,
    /// RNG-free deterministic tie-breaking is always used; this seed only
    /// varies the initial growth order.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            parts: 2,
            imbalance: 0.1,
            coarsen_until: 64,
            refinement_passes: 4,
            seed: 0,
        }
    }
}

impl PartitionConfig {
    /// Convenience constructor for a `k`-way partition with default knobs.
    pub fn k_way(parts: usize) -> Self {
        Self {
            parts,
            ..Self::default()
        }
    }
}

/// Result of a partitioning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partitioning {
    assignment: Vec<u32>,
    parts: usize,
    edge_cut: usize,
}

impl Partitioning {
    /// Part id of every node.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// Number of (undirected) edges whose endpoints fall in different parts.
    pub fn edge_cut(&self) -> usize {
        self.edge_cut
    }

    /// Part id of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn part_of(&self, node: usize) -> usize {
        self.assignment[node] as usize
    }

    /// Nodes of one part, in ascending node order, without allocating.
    ///
    /// This replaces the old `members()` accessor, which materialised a
    /// `Vec<Vec<usize>>` of every part on every call; callers that need the
    /// node list of one part iterate (or `collect()`) this instead, and
    /// callers that only need counts use [`sizes`](Partitioning::sizes).
    pub fn members_of(&self, part: usize) -> impl Iterator<Item = usize> + '_ {
        let part = part as u32;
        self.assignment
            .iter()
            .enumerate()
            .filter(move |&(_, &p)| p == part)
            .map(|(node, _)| node)
    }

    /// Nodes with at least one neighbour in a different part, in ascending
    /// node order — the nodes whose activations must cross a shard boundary
    /// under a 1-hop (GCN-layer) halo exchange.
    pub fn boundary_nodes(&self, adj: &CsrMatrix) -> Vec<usize> {
        (0..self.assignment.len())
            .filter(|&node| {
                let own = self.assignment[node];
                let (cols, _) = adj.row(node);
                cols.iter().any(|&c| self.assignment[c as usize] != own)
            })
            .collect()
    }

    /// Number of distinct halo nodes of `part`: nodes owned by *other* parts
    /// that are adjacent to at least one node of `part`. This is exactly the
    /// per-layer activation traffic a 1-hop halo exchange must move into
    /// `part`.
    pub fn halo_size(&self, adj: &CsrMatrix, part: usize) -> usize {
        let part = part as u32;
        let mut seen = vec![false; self.assignment.len()];
        let mut count = 0usize;
        for (node, &p) in self.assignment.iter().enumerate() {
            if p != part {
                continue;
            }
            let (cols, _) = adj.row(node);
            for &c in cols {
                let v = c as usize;
                if self.assignment[v] != part && !seen[v] {
                    seen[v] = true;
                    count += 1;
                }
            }
        }
        count
    }

    /// Node count per part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Maximum part size divided by the average part size.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.sizes();
        let avg = self.assignment.len() as f64 / self.parts as f64;
        let max = sizes.into_iter().max().unwrap_or(0) as f64;
        if avg > 0.0 {
            max / avg
        } else {
            0.0
        }
    }
}

/// Multilevel balanced edge-cut partitioner (the METIS stand-in).
#[derive(Debug, Clone, Default)]
pub struct Partitioner {
    config: PartitionConfig,
}

struct Level {
    adj: CsrMatrix,
    node_weights: Vec<u64>,
    /// Mapping from this level's nodes to the next-coarser level's nodes.
    coarse_map: Vec<u32>,
}

impl Partitioner {
    /// Creates a partitioner with the given configuration.
    pub fn new(config: PartitionConfig) -> Self {
        Self { config }
    }

    /// Partitions the graph described by a (symmetric) adjacency matrix.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] when `parts == 0` or exceeds
    /// the number of nodes, and [`GraphError::EmptyGraph`] for an empty graph.
    pub fn partition(&self, adj: &CsrMatrix) -> Result<Partitioning> {
        let n = adj.rows();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if self.config.parts == 0 {
            return Err(GraphError::InvalidParameter {
                name: "parts",
                reason: "must be positive".to_string(),
            });
        }
        if self.config.parts > n {
            return Err(GraphError::InvalidParameter {
                name: "parts",
                reason: format!("cannot split {n} nodes into {} parts", self.config.parts),
            });
        }
        if self.config.parts == 1 {
            return Ok(Partitioning {
                assignment: vec![0; n],
                parts: 1,
                edge_cut: 0,
            });
        }

        // Coarsening phase.
        let mut levels: Vec<Level> = Vec::new();
        let mut current_adj = adj.clone();
        let mut current_weights: Vec<u64> = vec![1; n];
        while current_adj.rows() > self.config.coarsen_until.max(self.config.parts * 4) {
            let (coarse_adj, coarse_weights, map) =
                coarsen(&current_adj, &current_weights, self.config.seed);
            if coarse_adj.rows() as f64 > current_adj.rows() as f64 * 0.95 {
                // Matching stopped making progress; bail out of coarsening.
                break;
            }
            levels.push(Level {
                adj: current_adj,
                node_weights: current_weights,
                coarse_map: map,
            });
            current_adj = coarse_adj;
            current_weights = coarse_weights;
        }

        // Initial partition on the coarsest graph.
        let mut assignment = initial_partition(
            &current_adj,
            &current_weights,
            self.config.parts,
            self.config.seed,
        );
        refine(
            &current_adj,
            &current_weights,
            &mut assignment,
            self.config.parts,
            self.config.imbalance,
            self.config.refinement_passes,
        );

        // Uncoarsen and refine at each level.
        while let Some(level) = levels.pop() {
            let mut fine_assignment = vec![0u32; level.adj.rows()];
            for (fine, &coarse) in level.coarse_map.iter().enumerate() {
                fine_assignment[fine] = assignment[coarse as usize];
            }
            assignment = fine_assignment;
            refine(
                &level.adj,
                &level.node_weights,
                &mut assignment,
                self.config.parts,
                self.config.imbalance,
                self.config.refinement_passes,
            );
        }

        let edge_cut = edge_cut(adj, &assignment);
        Ok(Partitioning {
            assignment,
            parts: self.config.parts,
            edge_cut,
        })
    }
}

/// Heavy-edge matching coarsening: visits nodes in a pseudo-random order and
/// matches each unmatched node with its heaviest-edge unmatched neighbour.
fn coarsen(adj: &CsrMatrix, weights: &[u64], seed: u64) -> (CsrMatrix, Vec<u64>, Vec<u32>) {
    let n = adj.rows();
    let mut matched = vec![u32::MAX; n];
    let mut order: Vec<usize> = (0..n).collect();
    // Deterministic pseudo-shuffle driven by the seed.
    order.sort_unstable_by_key(|&i| {
        (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add(seed)
            >> 33
    });

    let mut next_coarse = 0u32;
    let mut coarse_of = vec![u32::MAX; n];
    for &u in &order {
        if coarse_of[u] != u32::MAX {
            continue;
        }
        let (cols, vals) = adj.row(u);
        let mut best: Option<(usize, f32)> = None;
        for (&c, &w) in cols.iter().zip(vals) {
            let v = c as usize;
            if v != u && coarse_of[v] == u32::MAX && best.map(|(_, bw)| w > bw).unwrap_or(true) {
                best = Some((v, w));
            }
        }
        coarse_of[u] = next_coarse;
        if let Some((v, _)) = best {
            coarse_of[v] = next_coarse;
            matched[u] = v as u32;
            matched[v] = u as u32;
        }
        next_coarse += 1;
    }

    let coarse_n = next_coarse as usize;
    let mut coarse_weights = vec![0u64; coarse_n];
    for u in 0..n {
        coarse_weights[coarse_of[u] as usize] += weights[u];
    }
    let mut coo = crate::CooMatrix::with_capacity(coarse_n, coarse_n, adj.nnz());
    for (r, c, v) in adj.iter() {
        let cr = coarse_of[r] as usize;
        let cc = coarse_of[c] as usize;
        if cr != cc {
            coo.push(cr, cc, v).expect("coarse indices valid");
        }
    }
    (coo.to_csr(), coarse_weights, coarse_of)
}

/// Greedy graph-growing initial partition balanced by node weight.
fn initial_partition(adj: &CsrMatrix, weights: &[u64], parts: usize, seed: u64) -> Vec<u32> {
    let n = adj.rows();
    let total: u64 = weights.iter().sum();
    let target = (total as f64 / parts as f64).ceil() as u64;
    let mut assignment = vec![u32::MAX; n];
    let mut part_weight = vec![0u64; parts];

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| {
        (i as u64)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(seed)
            >> 32
    });

    let mut current_part = 0usize;
    let mut frontier: Vec<usize> = Vec::new();
    let mut cursor = 0usize;
    while assignment.contains(&u32::MAX) {
        // Pick a seed node for the current part if the frontier is empty.
        if frontier.is_empty() {
            while cursor < n && assignment[order[cursor]] != u32::MAX {
                cursor += 1;
            }
            if cursor >= n {
                break;
            }
            frontier.push(order[cursor]);
        }
        let node = frontier.pop().expect("frontier non-empty");
        if assignment[node] != u32::MAX {
            continue;
        }
        assignment[node] = current_part as u32;
        part_weight[current_part] += weights[node];
        let (cols, _) = adj.row(node);
        for &c in cols {
            if assignment[c as usize] == u32::MAX {
                frontier.push(c as usize);
            }
        }
        if part_weight[current_part] >= target && current_part + 1 < parts {
            current_part += 1;
            frontier.clear();
        }
    }
    // Any stragglers (disconnected pieces) go to the lightest part.
    for node in 0..n {
        if assignment[node] == u32::MAX {
            let lightest = (0..parts).min_by_key(|&p| part_weight[p]).unwrap_or(0);
            assignment[node] = lightest as u32;
            part_weight[lightest] += weights[node];
        }
    }
    assignment
}

/// Boundary refinement: moves nodes to the neighbouring part with the largest
/// cut gain as long as the balance constraint stays satisfied.
fn refine(
    adj: &CsrMatrix,
    weights: &[u64],
    assignment: &mut [u32],
    parts: usize,
    imbalance: f64,
    passes: usize,
) {
    let n = adj.rows();
    let total: u64 = weights.iter().sum();
    let max_weight = ((total as f64 / parts as f64) * (1.0 + imbalance)).ceil() as u64;
    let mut part_weight = vec![0u64; parts];
    for (node, &p) in assignment.iter().enumerate() {
        part_weight[p as usize] += weights[node];
    }

    for _ in 0..passes {
        let mut moved = 0usize;
        for node in 0..n {
            let current = assignment[node] as usize;
            let (cols, vals) = adj.row(node);
            if cols.is_empty() {
                continue;
            }
            // Connectivity of this node to each neighbouring part.
            let mut conn: Vec<(usize, f32)> = Vec::with_capacity(4);
            for (&c, &w) in cols.iter().zip(vals) {
                let p = assignment[c as usize] as usize;
                match conn.iter_mut().find(|(pp, _)| *pp == p) {
                    Some((_, acc)) => *acc += w,
                    None => conn.push((p, w)),
                }
            }
            let here = conn
                .iter()
                .find(|(p, _)| *p == current)
                .map(|(_, w)| *w)
                .unwrap_or(0.0);
            let mut best: Option<(usize, f32)> = None;
            for &(p, w) in &conn {
                if p == current {
                    continue;
                }
                let gain = w - here;
                if gain > 0.0
                    && part_weight[p] + weights[node] <= max_weight
                    && best.map(|(_, g)| gain > g).unwrap_or(true)
                {
                    best = Some((p, gain));
                }
            }
            if let Some((p, _)) = best {
                part_weight[current] -= weights[node];
                part_weight[p] += weights[node];
                assignment[node] = p as u32;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Number of undirected edges crossing the partition.
fn edge_cut(adj: &CsrMatrix, assignment: &[u32]) -> usize {
    let mut cut = 0usize;
    for (r, c, _) in adj.iter() {
        if r < c && assignment[r] != assignment[c] {
            cut += 1;
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, GeneratorConfig, GraphGenerator};

    fn two_cliques(k: usize) -> CsrMatrix {
        // Two k-cliques joined by a single bridge edge: the optimal bisection
        // cuts exactly one edge.
        let n = 2 * k;
        let mut coo = CooMatrix::new(n, n);
        for offset in [0, k] {
            for a in 0..k {
                for b in (a + 1)..k {
                    coo.push(offset + a, offset + b, 1.0).unwrap();
                    coo.push(offset + b, offset + a, 1.0).unwrap();
                }
            }
        }
        coo.push(0, k, 1.0).unwrap();
        coo.push(k, 0, 1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn bisection_of_two_cliques_cuts_the_bridge() {
        let adj = two_cliques(8);
        let result = Partitioner::new(PartitionConfig::k_way(2))
            .partition(&adj)
            .unwrap();
        assert_eq!(result.parts(), 2);
        assert_eq!(result.edge_cut(), 1, "should cut only the bridge");
        let sizes = result.sizes();
        assert_eq!(sizes[0], 8);
        assert_eq!(sizes[1], 8);
    }

    #[test]
    fn single_part_is_trivial() {
        let adj = two_cliques(4);
        let result = Partitioner::new(PartitionConfig::k_way(1))
            .partition(&adj)
            .unwrap();
        assert_eq!(result.edge_cut(), 0);
        assert!(result.assignment().iter().all(|&p| p == 0));
    }

    #[test]
    fn rejects_zero_or_too_many_parts() {
        let adj = two_cliques(3);
        assert!(Partitioner::new(PartitionConfig::k_way(0))
            .partition(&adj)
            .is_err());
        assert!(Partitioner::new(PartitionConfig::k_way(100))
            .partition(&adj)
            .is_err());
    }

    #[test]
    fn empty_graph_is_rejected() {
        let adj = CsrMatrix::zeros(0, 0);
        assert!(matches!(
            Partitioner::default().partition(&adj),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn parts_cover_all_nodes_exactly_once() {
        let cfg = GeneratorConfig {
            nodes: 400,
            edges: 1500,
            communities: 4,
            feature_dim: 8,
            power_law_exponent: 2.5,
            community_mixing: 0.1,
            splits: (0.5, 0.2, 0.3),
            feature_noise: 0.3,
        };
        let g = GraphGenerator::new(21).generate_with(&cfg, "p").unwrap();
        let result = Partitioner::new(PartitionConfig::k_way(4))
            .partition(g.adjacency())
            .unwrap();
        let covered: usize = (0..result.parts())
            .map(|p| result.members_of(p).count())
            .sum();
        assert_eq!(covered, g.num_nodes());
        assert!(result.assignment().iter().all(|&p| (p as usize) < 4));
        // members_of agrees with the assignment and is ascending.
        for part in 0..result.parts() {
            let nodes: Vec<usize> = result.members_of(part).collect();
            assert!(nodes.windows(2).all(|w| w[0] < w[1]));
            assert!(nodes.iter().all(|&n| result.part_of(n) == part));
        }
    }

    #[test]
    fn boundary_and_halo_of_two_cliques() {
        // Two 8-cliques joined by one bridge (0 -- 8): the optimal bisection
        // puts each clique in its own part, so the only boundary nodes are
        // the bridge endpoints and each part's halo is exactly the opposite
        // endpoint.
        let adj = two_cliques(8);
        let result = Partitioner::new(PartitionConfig::k_way(2))
            .partition(&adj)
            .unwrap();
        assert_eq!(result.edge_cut(), 1);
        let boundary = result.boundary_nodes(&adj);
        assert_eq!(boundary, vec![0, 8]);
        assert_eq!(result.halo_size(&adj, result.part_of(0)), 1);
        assert_eq!(result.halo_size(&adj, result.part_of(8)), 1);
    }

    #[test]
    fn single_part_has_no_boundary_or_halo() {
        let adj = two_cliques(4);
        let result = Partitioner::new(PartitionConfig::k_way(1))
            .partition(&adj)
            .unwrap();
        assert!(result.boundary_nodes(&adj).is_empty());
        assert_eq!(result.halo_size(&adj, 0), 0);
    }

    #[test]
    fn halo_counts_distinct_nodes_not_edges() {
        // Star: hub 0 in part 0 alone, leaves in part 1. Part 1's halo is
        // {0} (one node) even though every leaf touches it; part 0's halo is
        // every leaf.
        let n = 6;
        let mut coo = CooMatrix::new(n, n);
        for leaf in 1..n {
            coo.push(0, leaf, 1.0).unwrap();
            coo.push(leaf, 0, 1.0).unwrap();
        }
        let adj = coo.to_csr();
        let assignment: Vec<u32> = (0..n).map(|i| u32::from(i != 0)).collect();
        let partitioning = Partitioning {
            assignment,
            parts: 2,
            edge_cut: n - 1,
        };
        assert_eq!(partitioning.halo_size(&adj, 1), 1);
        assert_eq!(partitioning.halo_size(&adj, 0), n - 1);
        assert_eq!(partitioning.boundary_nodes(&adj).len(), n);
    }

    #[test]
    fn partition_is_reasonably_balanced() {
        let cfg = GeneratorConfig {
            nodes: 600,
            edges: 2500,
            communities: 6,
            feature_dim: 8,
            power_law_exponent: 2.3,
            community_mixing: 0.15,
            splits: (0.5, 0.2, 0.3),
            feature_noise: 0.3,
        };
        let g = GraphGenerator::new(33).generate_with(&cfg, "bal").unwrap();
        let result = Partitioner::new(PartitionConfig::k_way(6))
            .partition(g.adjacency())
            .unwrap();
        assert!(
            result.imbalance() < 1.6,
            "imbalance too high: {}",
            result.imbalance()
        );
    }

    #[test]
    fn cut_better_than_random_assignment() {
        let cfg = GeneratorConfig {
            nodes: 500,
            edges: 2000,
            communities: 4,
            feature_dim: 8,
            power_law_exponent: 2.4,
            community_mixing: 0.05,
            splits: (0.5, 0.2, 0.3),
            feature_noise: 0.3,
        };
        let g = GraphGenerator::new(55).generate_with(&cfg, "cut").unwrap();
        let result = Partitioner::new(PartitionConfig::k_way(4))
            .partition(g.adjacency())
            .unwrap();
        // Random 4-way assignment cuts ~75% of the edges in expectation.
        let random_cut: usize = g
            .adjacency()
            .iter()
            .filter(|&(r, c, _)| r < c && (r % 4) != (c % 4))
            .count();
        assert!(
            result.edge_cut() < random_cut,
            "partitioner cut {} not better than hash cut {}",
            result.edge_cut(),
            random_cut
        );
    }
}
