//! Synthetic graph generation.
//!
//! Real-world GCN benchmark graphs share two structural features the GCoD
//! paper leans on: a power-law degree distribution (a few hub nodes, a long
//! tail of low-degree nodes) and community structure correlated with the node
//! labels. The generator here plants both: nodes receive a community (= class
//! label), edge endpoints are sampled with preferential attachment weights
//! and a configurable probability of staying inside the community, and node
//! features are noisy class centroids so that a GCN can actually learn the
//! labels.

use crate::{CooMatrix, DatasetProfile, Graph, GraphError, NodeMask, Result};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Low-level generator parameters, independent of a dataset profile.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of undirected edges.
    pub edges: usize,
    /// Number of planted communities (also the number of classes).
    pub communities: usize,
    /// Feature dimension.
    pub feature_dim: usize,
    /// Power-law exponent for the preferential-attachment weights.
    pub power_law_exponent: f64,
    /// Probability that an edge leaves its community.
    pub community_mixing: f64,
    /// Train/validation/test fractions (must sum to at most 1).
    pub splits: (f64, f64, f64),
    /// Standard deviation of the feature noise around the class centroid.
    pub feature_noise: f64,
}

impl GeneratorConfig {
    /// Derives the low-level configuration from a dataset profile.
    pub fn from_profile(profile: &DatasetProfile) -> Self {
        Self {
            nodes: profile.nodes,
            edges: profile.edges,
            communities: profile.classes,
            feature_dim: profile.feature_dim,
            power_law_exponent: profile.power_law_exponent,
            community_mixing: profile.community_mixing,
            splits: (
                profile.train_fraction,
                profile.val_fraction,
                profile.test_fraction,
            ),
            feature_noise: 0.6,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(GraphError::InvalidParameter {
                name: "nodes",
                reason: "must be positive".to_string(),
            });
        }
        if self.communities == 0 || self.communities > self.nodes {
            return Err(GraphError::InvalidParameter {
                name: "communities",
                reason: format!(
                    "must be in 1..={} (nodes), got {}",
                    self.nodes, self.communities
                ),
            });
        }
        if self.feature_dim == 0 {
            return Err(GraphError::InvalidParameter {
                name: "feature_dim",
                reason: "must be positive".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.community_mixing) {
            return Err(GraphError::InvalidParameter {
                name: "community_mixing",
                reason: "must lie in [0, 1]".to_string(),
            });
        }
        let (tr, va, te) = self.splits;
        if tr < 0.0 || va < 0.0 || te < 0.0 || tr + va + te > 1.0 + 1e-9 {
            return Err(GraphError::InvalidParameter {
                name: "splits",
                reason: "fractions must be non-negative and sum to at most 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Deterministic synthetic graph generator.
///
/// The generator is seeded so that every experiment in the benchmark harness
/// is reproducible run-to-run.
#[derive(Debug, Clone)]
pub struct GraphGenerator {
    seed: u64,
}

impl GraphGenerator {
    /// Creates a generator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates a graph from a dataset profile.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for inconsistent profiles.
    pub fn generate(&self, profile: &DatasetProfile) -> Result<Graph> {
        self.generate_with(&GeneratorConfig::from_profile(profile), &profile.name)
    }

    /// Generates a graph from low-level parameters.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] for inconsistent
    /// configurations.
    pub fn generate_with(&self, config: &GeneratorConfig, name: &str) -> Result<Graph> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = config.nodes;

        // 1. Assign communities round-robin with a random shuffle so classes
        //    are balanced but not index-contiguous (index-contiguity is what
        //    GCoD's reordering later creates on purpose).
        let mut labels: Vec<u32> = (0..n).map(|i| (i % config.communities) as u32).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            labels.swap(i, j);
        }

        // 2. Preferential-attachment weights w_i ~ (i+1)^(-1/(gamma-1)) give a
        //    power-law degree tail with exponent gamma.
        let gamma = config.power_law_exponent.max(1.5);
        let exponent = 1.0 / (gamma - 1.0);
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-exponent)).collect();

        // Per-community alias tables for intra-community sampling.
        let mut community_members: Vec<Vec<usize>> = vec![Vec::new(); config.communities];
        for (i, &l) in labels.iter().enumerate() {
            community_members[l as usize].push(i);
        }
        let global_dist = WeightedIndex::new(&weights).expect("weights are positive");
        let community_dists: Vec<Option<WeightedIndex<f64>>> = community_members
            .iter()
            .map(|members| {
                if members.len() < 2 {
                    None
                } else {
                    Some(
                        WeightedIndex::new(members.iter().map(|&m| weights[m]))
                            .expect("weights are positive"),
                    )
                }
            })
            .collect();

        // 3. Sample undirected edges. Self loops and duplicates are rejected
        //    via a hash set keyed on the ordered pair.
        let target_edges = config.edges.min(n * (n - 1) / 2);
        // gcod-check: allow(hash-container) — membership-only dedup; iteration order is never observed.
        let mut seen = std::collections::HashSet::with_capacity(target_edges * 2);
        let mut coo = CooMatrix::with_capacity(n, n, target_edges * 2);
        let mut attempts = 0usize;
        let max_attempts = target_edges.saturating_mul(30).max(1000);
        let mut accepted = 0usize;
        while accepted < target_edges && attempts < max_attempts {
            attempts += 1;
            let u = global_dist.sample(&mut rng);
            let v = if rng.gen_bool(1.0 - config.community_mixing) {
                // Stay inside u's community when it has other members.
                let c = labels[u] as usize;
                match &community_dists[c] {
                    Some(dist) => community_members[c][dist.sample(&mut rng)],
                    None => global_dist.sample(&mut rng),
                }
            } else {
                global_dist.sample(&mut rng)
            };
            if u == v {
                continue;
            }
            let key = (u.min(v) as u64) << 32 | (u.max(v) as u64);
            if !seen.insert(key) {
                continue;
            }
            coo.push(u, v, 1.0).expect("sampled indices are in range");
            coo.push(v, u, 1.0).expect("sampled indices are in range");
            accepted += 1;
        }
        // Guarantee no isolated node: attach any zero-degree node to a random
        // member of its community (or any node).
        let adj_probe = coo.to_csr();
        for (node, &label) in labels.iter().enumerate() {
            if adj_probe.row_nnz(node) == 0 {
                let c = label as usize;
                let partner = community_members[c]
                    .iter()
                    .copied()
                    .find(|&m| m != node)
                    .unwrap_or((node + 1) % n);
                coo.push(node, partner, 1.0).expect("in range");
                coo.push(partner, node, 1.0).expect("in range");
            }
        }
        let adjacency = coo.to_csr();

        // 4. Features: class centroid + Gaussian noise, so that the labels are
        //    learnable from features alone and even better with aggregation.
        let mut centroids = vec![0.0f32; config.communities * config.feature_dim];
        for c in 0..config.communities {
            for f in 0..config.feature_dim {
                centroids[c * config.feature_dim + f] = if (f % config.communities) == c {
                    1.0
                } else {
                    0.0
                };
            }
        }
        let mut features = vec![0.0f32; n * config.feature_dim];
        for i in 0..n {
            let c = labels[i] as usize;
            for f in 0..config.feature_dim {
                let noise: f64 = rng.gen::<f64>() - 0.5;
                features[i * config.feature_dim + f] = centroids[c * config.feature_dim + f]
                    + (noise * 2.0 * config.feature_noise) as f32;
            }
        }

        // 5. Splits: a random permutation carved into train/val/test.
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let (tr, va, te) = config.splits;
        let n_train = ((n as f64 * tr) as usize).max(config.communities.min(n));
        let n_val = (n as f64 * va) as usize;
        let n_test = ((n as f64 * te) as usize).min(n - n_train.min(n) - n_val.min(n));
        let train_mask = NodeMask::from_indices(n, &order[..n_train.min(n)]);
        let val_mask = NodeMask::from_indices(n, &order[n_train.min(n)..(n_train + n_val).min(n)]);
        let test_mask = NodeMask::from_indices(
            n,
            &order[(n_train + n_val).min(n)..(n_train + n_val + n_test).min(n)],
        );

        Graph::new(
            name,
            adjacency,
            features,
            config.feature_dim,
            labels,
            config.communities,
            train_mask,
            val_mask,
            test_mask,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GeneratorConfig {
        GeneratorConfig {
            nodes: 200,
            edges: 600,
            communities: 4,
            feature_dim: 16,
            power_law_exponent: 2.5,
            community_mixing: 0.1,
            splits: (0.5, 0.2, 0.3),
            feature_noise: 0.3,
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = small_config();
        let a = GraphGenerator::new(7).generate_with(&cfg, "a").unwrap();
        let b = GraphGenerator::new(7).generate_with(&cfg, "a").unwrap();
        let c = GraphGenerator::new(8).generate_with(&cfg, "a").unwrap();
        assert_eq!(a, b);
        assert_ne!(a.adjacency(), c.adjacency());
    }

    #[test]
    fn generated_graph_matches_profile_size() {
        let profile = DatasetProfile::cora().scaled(0.1);
        let g = GraphGenerator::new(1).generate(&profile).unwrap();
        assert_eq!(g.num_nodes(), profile.nodes);
        assert_eq!(g.feature_dim(), profile.feature_dim);
        assert_eq!(g.num_classes(), profile.classes);
        // Directed edge count should be close to 2x the undirected target.
        let undirected = g.num_edges() / 2;
        assert!(undirected as f64 >= profile.edges as f64 * 0.8);
    }

    #[test]
    fn adjacency_is_symmetric_without_self_loops() {
        let g = GraphGenerator::new(3)
            .generate_with(&small_config(), "sym")
            .unwrap();
        let adj = g.adjacency();
        for (r, c, v) in adj.iter() {
            assert_ne!(r, c, "self loop found");
            assert_eq!(adj.get(c, r), v, "asymmetric entry at ({r},{c})");
        }
    }

    #[test]
    fn no_isolated_nodes() {
        let g = GraphGenerator::new(5)
            .generate_with(&small_config(), "iso")
            .unwrap();
        assert!(g.degrees().iter().all(|&d| d > 0));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let mut cfg = small_config();
        cfg.nodes = 1000;
        cfg.edges = 4000;
        let g = GraphGenerator::new(11).generate_with(&cfg, "skew").unwrap();
        let mut degrees = g.degrees();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = degrees[..100].iter().sum();
        let total: usize = degrees.iter().sum();
        // Hubs concentrate edges: the top 10% of nodes should hold well over
        // 10% of the degree mass.
        assert!(
            top_decile as f64 > 0.25 * total as f64,
            "top decile holds only {top_decile}/{total}"
        );
    }

    #[test]
    fn community_structure_dominates() {
        let g = GraphGenerator::new(13)
            .generate_with(&small_config(), "mod")
            .unwrap();
        let labels = g.labels();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (r, c, _) in g.adjacency().iter() {
            if labels[r] == labels[c] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn splits_are_disjoint() {
        let g = GraphGenerator::new(17)
            .generate_with(&small_config(), "split")
            .unwrap();
        for i in 0..g.num_nodes() {
            let in_train = g.train_mask().contains(i) as u8;
            let in_val = g.val_mask().contains(i) as u8;
            let in_test = g.test_mask().contains(i) as u8;
            assert!(in_train + in_val + in_test <= 1);
        }
        assert!(g.train_mask().count() > 0);
        assert!(g.test_mask().count() > 0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = small_config();
        cfg.communities = 0;
        assert!(GraphGenerator::new(0).generate_with(&cfg, "bad").is_err());
        let mut cfg = small_config();
        cfg.community_mixing = 1.5;
        assert!(GraphGenerator::new(0).generate_with(&cfg, "bad").is_err());
        let mut cfg = small_config();
        cfg.splits = (0.9, 0.9, 0.9);
        assert!(GraphGenerator::new(0).generate_with(&cfg, "bad").is_err());
    }
}
