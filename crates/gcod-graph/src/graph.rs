//! The attributed graph type consumed by the GNN models.

use crate::{CsrMatrix, GraphError, Permutation, Result};
use serde::{Deserialize, Serialize};

/// Which split a node belongs to during semi-supervised training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Split {
    /// Labelled node used for the training loss.
    Train,
    /// Node used for validation / early stopping.
    Validation,
    /// Held-out node used to report test accuracy.
    Test,
    /// Unlabelled node (only participates in message passing).
    Unlabelled,
}

/// Boolean mask over nodes for one split.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMask {
    bits: Vec<bool>,
}

impl NodeMask {
    /// A mask of `n` nodes, all unset.
    pub fn new(n: usize) -> Self {
        Self {
            bits: vec![false; n],
        }
    }

    /// Builds a mask from the listed node indices.
    pub fn from_indices(n: usize, indices: &[usize]) -> Self {
        let mut mask = Self::new(n);
        for &i in indices {
            if i < n {
                mask.bits[i] = true;
            }
        }
        mask
    }

    /// Number of nodes covered by the mask.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether node `i` is selected.
    pub fn contains(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    /// Number of selected nodes.
    pub fn count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Iterates over the selected node indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if b { Some(i) } else { None })
    }

    /// Permutes the mask alongside a node reordering.
    pub fn permute(&self, perm: &Permutation) -> NodeMask {
        let mut bits = vec![false; self.bits.len()];
        for (old, &b) in self.bits.iter().enumerate() {
            bits[perm.apply(old)] = b;
        }
        NodeMask { bits }
    }
}

/// An attributed graph: adjacency, node features, labels and split masks.
///
/// Features are stored row-major (`num_nodes × feature_dim`), labels as one
/// class id per node. This is the single input type shared by the GNN models,
/// the GCoD training pipeline and the accelerator simulators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: CsrMatrix,
    features: Vec<f32>,
    feature_dim: usize,
    labels: Vec<u32>,
    num_classes: usize,
    train_mask: NodeMask,
    val_mask: NodeMask,
    test_mask: NodeMask,
    name: String,
}

impl Graph {
    /// Builds a graph from its parts.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] when the adjacency matrix is
    /// not square or the feature/label/mask lengths disagree with the number
    /// of nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        adjacency: CsrMatrix,
        features: Vec<f32>,
        feature_dim: usize,
        labels: Vec<u32>,
        num_classes: usize,
        train_mask: NodeMask,
        val_mask: NodeMask,
        test_mask: NodeMask,
    ) -> Result<Self> {
        let n = adjacency.rows();
        if adjacency.cols() != n {
            return Err(GraphError::DimensionMismatch {
                context: format!(
                    "adjacency must be square, got {}x{}",
                    adjacency.rows(),
                    adjacency.cols()
                ),
            });
        }
        if feature_dim == 0 || features.len() != n * feature_dim {
            return Err(GraphError::DimensionMismatch {
                context: format!(
                    "features length {} != nodes {} * feature_dim {}",
                    features.len(),
                    n,
                    feature_dim
                ),
            });
        }
        if labels.len() != n {
            return Err(GraphError::DimensionMismatch {
                context: format!("labels length {} != nodes {}", labels.len(), n),
            });
        }
        if labels.iter().any(|&l| l as usize >= num_classes) {
            return Err(GraphError::DimensionMismatch {
                context: format!("a label exceeds num_classes {num_classes}"),
            });
        }
        for (mask, which) in [
            (&train_mask, "train"),
            (&val_mask, "validation"),
            (&test_mask, "test"),
        ] {
            if mask.len() != n {
                return Err(GraphError::DimensionMismatch {
                    context: format!("{which} mask length {} != nodes {}", mask.len(), n),
                });
            }
        }
        Ok(Self {
            adjacency,
            features,
            feature_dim,
            labels,
            num_classes,
            train_mask,
            val_mask,
            test_mask,
            name: name.into(),
        })
    }

    /// Dataset name (e.g. "cora").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of stored directed edges (twice the undirected edge count for a
    /// symmetric adjacency).
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Feature dimension per node.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Adjacency matrix.
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// Replaces the adjacency matrix (used by the GCoD graph tuning steps),
    /// keeping features, labels and masks.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] if the new matrix has a
    /// different number of nodes.
    pub fn with_adjacency(&self, adjacency: CsrMatrix) -> Result<Graph> {
        if adjacency.rows() != self.num_nodes() || adjacency.cols() != self.num_nodes() {
            return Err(GraphError::DimensionMismatch {
                context: format!(
                    "replacement adjacency {}x{} does not match {} nodes",
                    adjacency.rows(),
                    adjacency.cols(),
                    self.num_nodes()
                ),
            });
        }
        let mut g = self.clone();
        g.adjacency = adjacency;
        Ok(g)
    }

    /// Node features, row-major `num_nodes × feature_dim`.
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// Features of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.num_nodes()`.
    pub fn node_features(&self, node: usize) -> &[f32] {
        &self.features[node * self.feature_dim..(node + 1) * self.feature_dim]
    }

    /// Class labels per node.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Training mask.
    pub fn train_mask(&self) -> &NodeMask {
        &self.train_mask
    }

    /// Validation mask.
    pub fn val_mask(&self) -> &NodeMask {
        &self.val_mask
    }

    /// Test mask.
    pub fn test_mask(&self) -> &NodeMask {
        &self.test_mask
    }

    /// The split a node belongs to.
    pub fn split_of(&self, node: usize) -> Split {
        if self.train_mask.contains(node) {
            Split::Train
        } else if self.val_mask.contains(node) {
            Split::Validation
        } else if self.test_mask.contains(node) {
            Split::Test
        } else {
            Split::Unlabelled
        }
    }

    /// Degrees of all nodes.
    pub fn degrees(&self) -> Vec<usize> {
        self.adjacency.row_degrees()
    }

    /// Average node degree.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Sparsity of the adjacency matrix (fraction of zero entries).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.adjacency.density()
    }

    /// Applies a node permutation to the whole graph: adjacency, features,
    /// labels and masks move together.
    pub fn permute(&self, perm: &Permutation) -> Graph {
        assert_eq!(perm.len(), self.num_nodes(), "permutation length mismatch");
        let adjacency = self.adjacency.permute_symmetric(perm);
        let features = perm.permute_rows(&self.features, self.feature_dim);
        let mut labels = vec![0u32; self.labels.len()];
        for (old, &l) in self.labels.iter().enumerate() {
            labels[perm.apply(old)] = l;
        }
        Graph {
            adjacency,
            features,
            feature_dim: self.feature_dim,
            labels,
            num_classes: self.num_classes,
            train_mask: self.train_mask.permute(perm),
            val_mask: self.val_mask.permute(perm),
            test_mask: self.test_mask.permute(perm),
            name: self.name.clone(),
        }
    }

    /// Approximate in-memory footprint in bytes (adjacency + features).
    pub fn storage_bytes(&self) -> usize {
        self.adjacency.storage_bytes() + self.features.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn tiny_graph() -> Graph {
        let mut coo = CooMatrix::new(4, 4);
        for (a, b) in [(0, 1), (1, 2), (2, 3)] {
            coo.push(a, b, 1.0).unwrap();
            coo.push(b, a, 1.0).unwrap();
        }
        let adj = coo.to_csr();
        let features = vec![0.5f32; 4 * 3];
        let labels = vec![0, 1, 0, 1];
        Graph::new(
            "tiny",
            adj,
            features,
            3,
            labels,
            2,
            NodeMask::from_indices(4, &[0, 1]),
            NodeMask::from_indices(4, &[2]),
            NodeMask::from_indices(4, &[3]),
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let g = tiny_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.feature_dim(), 3);
        assert_eq!(g.num_classes(), 2);
        assert_eq!(g.name(), "tiny");
        assert_eq!(g.node_features(1).len(), 3);
    }

    #[test]
    fn new_rejects_bad_shapes() {
        let adj = CooMatrix::new(3, 4).to_csr();
        let err = Graph::new(
            "bad",
            adj,
            vec![0.0; 9],
            3,
            vec![0, 0, 0],
            1,
            NodeMask::new(3),
            NodeMask::new(3),
            NodeMask::new(3),
        );
        assert!(matches!(err, Err(GraphError::DimensionMismatch { .. })));
    }

    #[test]
    fn new_rejects_label_out_of_range() {
        let adj = CooMatrix::new(2, 2).to_csr();
        let err = Graph::new(
            "bad",
            adj,
            vec![0.0; 2],
            1,
            vec![0, 5],
            2,
            NodeMask::new(2),
            NodeMask::new(2),
            NodeMask::new(2),
        );
        assert!(err.is_err());
    }

    #[test]
    fn split_assignment() {
        let g = tiny_graph();
        assert_eq!(g.split_of(0), Split::Train);
        assert_eq!(g.split_of(2), Split::Validation);
        assert_eq!(g.split_of(3), Split::Test);
    }

    #[test]
    fn mask_counts_and_iteration() {
        let mask = NodeMask::from_indices(5, &[1, 3]);
        assert_eq!(mask.count(), 2);
        assert_eq!(mask.iter().collect::<Vec<_>>(), vec![1, 3]);
        assert!(!mask.contains(0));
        assert!(mask.contains(3));
    }

    #[test]
    fn permute_preserves_structure() {
        let g = tiny_graph();
        let perm = Permutation::from_forward(vec![3, 2, 1, 0]).unwrap();
        let p = g.permute(&perm);
        assert_eq!(p.num_edges(), g.num_edges());
        // Edge (0,1) becomes (3,2).
        assert_eq!(p.adjacency().get(3, 2), 1.0);
        // Label of old node 1 moves to new node 2.
        assert_eq!(p.labels()[2], g.labels()[1]);
        // Train mask follows.
        assert!(p.train_mask().contains(3));
    }

    #[test]
    fn with_adjacency_checks_node_count() {
        let g = tiny_graph();
        let smaller = CooMatrix::new(3, 3).to_csr();
        assert!(g.with_adjacency(smaller).is_err());
        let same = g.adjacency().clone();
        assert!(g.with_adjacency(same).is_ok());
    }

    #[test]
    fn sparsity_and_average_degree() {
        let g = tiny_graph();
        assert!((g.average_degree() - 1.5).abs() < 1e-9);
        assert!(g.sparsity() > 0.5);
    }
}
