//! Compressed sparse row (CSR) matrix format.
//!
//! CSR is the workhorse format for row-wise traversal: aggregation of a
//! node's in-neighbours, SpMM with row-major dense operands, and the
//! "gathered aggregation" dataflow of HyGCN all walk rows.

use crate::{CooMatrix, CscMatrix, GraphError, Result};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse row format.
///
/// Invariants (enforced by [`CsrMatrix::from_parts`]):
/// * `indptr.len() == rows + 1`, `indptr[0] == 0`, non-decreasing,
/// * `indices.len() == values.len() == indptr[rows]`,
/// * every column index is `< cols`,
/// * column indices are sorted within each row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<u64>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix, validating all invariants.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] or
    /// [`GraphError::IndexOutOfBounds`] when an invariant is violated.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(GraphError::DimensionMismatch {
                context: format!("indptr length {} != rows + 1 = {}", indptr.len(), rows + 1),
            });
        }
        if indptr.first().copied().unwrap_or(0) != 0 {
            return Err(GraphError::DimensionMismatch {
                context: "indptr must start at 0".to_string(),
            });
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::DimensionMismatch {
                context: "indptr must be non-decreasing".to_string(),
            });
        }
        let nnz = *indptr.last().unwrap_or(&0) as usize;
        if indices.len() != nnz || values.len() != nnz {
            return Err(GraphError::DimensionMismatch {
                context: format!(
                    "nnz {} disagrees with indices {} / values {}",
                    nnz,
                    indices.len(),
                    values.len()
                ),
            });
        }
        for &c in &indices {
            if c as usize >= cols {
                return Err(GraphError::IndexOutOfBounds {
                    index: c as usize,
                    bound: cols,
                    axis: "column",
                });
            }
        }
        for r in 0..rows {
            let (start, end) = (indptr[r] as usize, indptr[r + 1] as usize);
            if indices[start..end].windows(2).any(|w| w[0] >= w[1]) {
                return Err(GraphError::DimensionMismatch {
                    context: format!("row {r} has unsorted or duplicate column indices"),
                });
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix without validation. Used internally by conversions
    /// that construct valid data by construction.
    pub(crate) fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An empty matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        CooMatrix::identity(n).to_csr()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density: `nnz / (rows * cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Row pointer array (`rows + 1` entries).
    pub fn indptr(&self) -> &[u64] {
        &self.indptr
    }

    /// Column indices, row-by-row.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Non-zero values, row-by-row.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of non-zeros in row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_nnz(&self, row: usize) -> usize {
        (self.indptr[row + 1] - self.indptr[row]) as usize
    }

    /// Column indices and values of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> (&[u32], &[f32]) {
        let start = self.indptr[row] as usize;
        let end = self.indptr[row + 1] as usize;
        (&self.indices[start..end], &self.values[start..end])
    }

    /// Value at `(row, col)`, `0.0` when not stored.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        if row >= self.rows || col >= self.cols {
            return 0.0;
        }
        let (cols_slice, vals) = self.row(row);
        match cols_slice.binary_search(&(col as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Out-degree per row (number of stored entries).
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.rows).map(|r| self.row_nnz(r)).collect()
    }

    /// Converts back to COO.
    pub fn to_coo(&self) -> CooMatrix {
        let mut rows_idx = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for _ in self.indptr[r]..self.indptr[r + 1] {
                rows_idx.push(r as u32);
            }
        }
        CooMatrix::from_triplets(
            self.rows,
            self.cols,
            rows_idx,
            self.indices.clone(),
            self.values.clone(),
        )
        .expect("CSR invariants imply valid COO")
    }

    /// Converts to CSC.
    pub fn to_csc(&self) -> CscMatrix {
        self.to_coo().to_csc()
    }

    /// Transposes the matrix (result is again CSR).
    pub fn transpose(&self) -> CsrMatrix {
        self.to_coo().transpose().to_csr()
    }

    /// Reinterprets this CSR matrix (assumed to be the transpose of the
    /// logical matrix) as a CSC matrix of the original.
    pub(crate) fn into_csc_of_transpose(self) -> CscMatrix {
        CscMatrix::from_parts_unchecked(
            self.cols,
            self.rows,
            self.indptr,
            self.indices,
            self.values,
        )
    }

    /// Extracts the sub-matrix restricted to `row_set` × `col_set`, relabelled
    /// to the positions within those sets.
    ///
    /// Both sets must be sorted ascending; entries outside the sets are
    /// dropped.
    pub fn submatrix(&self, row_set: &[usize], col_set: &[usize]) -> CsrMatrix {
        let mut col_pos = vec![usize::MAX; self.cols];
        for (new, &old) in col_set.iter().enumerate() {
            if old < self.cols {
                col_pos[old] = new;
            }
        }
        let mut coo = CooMatrix::with_capacity(row_set.len(), col_set.len(), self.nnz());
        for (new_r, &old_r) in row_set.iter().enumerate() {
            if old_r >= self.rows {
                continue;
            }
            let (cols, vals) = self.row(old_r);
            for (&c, &v) in cols.iter().zip(vals) {
                let nc = col_pos[c as usize];
                if nc != usize::MAX {
                    coo.push(new_r, nc, v)
                        .expect("indices are in range by construction");
                }
            }
        }
        coo.to_csr()
    }

    /// Column indices and values of row `row` restricted to the half-open
    /// column range `[col_start, col_end)`.
    ///
    /// Because column indices are sorted within a row, the restriction is a
    /// contiguous sub-slice found by binary search — this is the primitive
    /// cache-tiled SpMM kernels use to walk one row column-tile by
    /// column-tile without re-scanning the whole row.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_slice_in_cols(
        &self,
        row: usize,
        col_start: usize,
        col_end: usize,
    ) -> (&[u32], &[f32]) {
        let (cols, vals) = self.row(row);
        let lo = cols.partition_point(|&c| (c as usize) < col_start);
        let hi = lo + cols[lo..].partition_point(|&c| (c as usize) < col_end);
        (&cols[lo..hi], &vals[lo..hi])
    }

    /// The half-open tile boundaries covering `[0, extent)` in steps of
    /// `tile` (the last tile may be shorter). A `tile` of 0 is treated as one
    /// tile spanning the whole extent.
    ///
    /// Used by the blocked SpMM kernels in `gcod-nn` so every consumer
    /// agrees on how an axis is tiled.
    pub fn tile_bounds(extent: usize, tile: usize) -> Vec<(usize, usize)> {
        if extent == 0 {
            return Vec::new();
        }
        let tile = if tile == 0 { extent } else { tile };
        (0..extent)
            .step_by(tile)
            .map(|start| (start, (start + tile).min(extent)))
            .collect()
    }

    /// Counts the non-zeros that fall inside the square block
    /// `[row_start, row_end) × [col_start, col_end)`.
    pub fn block_nnz(
        &self,
        row_start: usize,
        row_end: usize,
        col_start: usize,
        col_end: usize,
    ) -> usize {
        (row_start..row_end.min(self.rows))
            .map(|r| self.row_slice_in_cols(r, col_start, col_end).0.len())
            .sum()
    }

    /// Storage footprint in bytes (indptr + indices + values).
    pub fn storage_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<u64>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }

    /// Applies a symmetric permutation `P A P^T`: entry `(i, j)` moves to
    /// `(perm[i], perm[j])`.
    pub fn permute_symmetric(&self, perm: &crate::Permutation) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(perm.apply(r), perm.apply(c), v)
                .expect("permutation preserves bounds");
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> CsrMatrix {
        // Path graph 0-1-2-...-(n-1), symmetric.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0).unwrap();
            coo.push(i + 1, i, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn from_parts_validates_indptr_length() {
        let err = CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(err, Err(GraphError::DimensionMismatch { .. })));
    }

    #[test]
    fn from_parts_validates_sorted_columns() {
        let err = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
        assert!(matches!(err, Err(GraphError::DimensionMismatch { .. })));
    }

    #[test]
    fn from_parts_validates_column_bounds() {
        let err = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(err, Err(GraphError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let m = chain(4);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(0, 3), 0.0);
        assert_eq!(m.get(10, 10), 0.0);
    }

    #[test]
    fn row_degrees_of_chain() {
        let m = chain(5);
        assert_eq!(m.row_degrees(), vec![1, 2, 2, 2, 1]);
    }

    #[test]
    fn roundtrip_coo_csr_csc() {
        let m = chain(6);
        let coo = m.to_coo();
        let csc = m.to_csc();
        assert_eq!(coo.nnz(), m.nnz());
        assert_eq!(csc.nnz(), m.nnz());
        for (r, c, v) in m.iter() {
            assert_eq!(csc.get(r, c), v);
        }
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let m = chain(5);
        assert_eq!(m.transpose(), m);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = chain(6);
        let sub = m.submatrix(&[0, 1, 2], &[0, 1, 2]);
        assert_eq!(sub.rows(), 3);
        assert_eq!(sub.cols(), 3);
        assert_eq!(sub.nnz(), 4); // edges 0-1 and 1-2 in both directions
    }

    #[test]
    fn block_nnz_counts_quadrants() {
        let m = chain(4);
        let total = m.block_nnz(0, 4, 0, 4);
        assert_eq!(total, m.nnz());
        let diag_upper = m.block_nnz(0, 2, 0, 2);
        assert_eq!(diag_upper, 2);
    }

    #[test]
    fn row_slice_in_cols_matches_linear_scan() {
        let m = chain(8);
        for r in 0..m.rows() {
            for (c0, c1) in [(0, 8), (2, 5), (0, 0), (5, 5), (7, 8), (0, 3)] {
                let (cols, vals) = m.row_slice_in_cols(r, c0, c1);
                let (all_cols, all_vals) = m.row(r);
                let expected: Vec<(u32, f32)> = all_cols
                    .iter()
                    .zip(all_vals)
                    .filter(|(&c, _)| (c as usize) >= c0 && (c as usize) < c1)
                    .map(|(&c, &v)| (c, v))
                    .collect();
                let got: Vec<(u32, f32)> = cols.iter().zip(vals).map(|(&c, &v)| (c, v)).collect();
                assert_eq!(got, expected, "row {r} cols [{c0}, {c1})");
            }
        }
    }

    #[test]
    fn tile_bounds_cover_the_extent_exactly() {
        assert_eq!(CsrMatrix::tile_bounds(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(CsrMatrix::tile_bounds(8, 4), vec![(0, 4), (4, 8)]);
        assert_eq!(CsrMatrix::tile_bounds(3, 8), vec![(0, 3)]);
        assert_eq!(CsrMatrix::tile_bounds(0, 4), Vec::new());
        // tile = 0 degrades to a single all-covering tile.
        assert_eq!(CsrMatrix::tile_bounds(5, 0), vec![(0, 5)]);
        // Tiles partition [0, extent): consecutive, non-overlapping, complete.
        let bounds = CsrMatrix::tile_bounds(17, 5);
        assert_eq!(bounds.first().unwrap().0, 0);
        assert_eq!(bounds.last().unwrap().1, 17);
        for w in bounds.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(3, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 7);
        assert_eq!(z.get(1, 1), 0.0);
    }

    #[test]
    fn identity_diagonal() {
        let eye = CsrMatrix::identity(4);
        for i in 0..4 {
            assert_eq!(eye.get(i, i), 1.0);
        }
        assert_eq!(eye.nnz(), 4);
    }

    #[test]
    fn storage_bytes_positive() {
        let m = chain(4);
        assert!(m.storage_bytes() > 0);
    }
}
