//! Sparse graph substrate for the GCoD reproduction.
//!
//! This crate provides every graph-side building block the GCoD paper relies
//! on:
//!
//! * sparse matrix formats ([`CooMatrix`], [`CsrMatrix`], [`CscMatrix`]) with
//!   loss-less conversions between them,
//! * reduced-precision sparse storage ([`QuantizedCsr`], int8/int16 values
//!   behind a symmetric per-matrix scale) for the quantized compute path,
//! * the [`Graph`] type used by the GNN models (adjacency + features +
//!   labels + train/val/test masks),
//! * degree computation and the symmetric normalization
//!   `D^{-1/2} (A + I) D^{-1/2}` used by GCNs,
//! * synthetic dataset generators reproducing the statistics of the six
//!   graphs in Table III of the paper (Cora, CiteSeer, Pubmed, NELL,
//!   ogbn-arxiv, Reddit),
//! * a from-scratch multilevel balanced edge-cut partitioner standing in for
//!   METIS,
//! * node reordering utilities (degree sort, reverse Cuthill–McKee) and
//!   permutation handling,
//! * block/patch density statistics used by the structural sparsification
//!   step and by the accelerator simulator.
//!
//! # Example
//!
//! ```
//! use gcod_graph::{DatasetProfile, GraphGenerator};
//!
//! # fn main() -> Result<(), gcod_graph::GraphError> {
//! let profile = DatasetProfile::cora().scaled(0.1);
//! let graph = GraphGenerator::new(42).generate(&profile)?;
//! assert_eq!(graph.num_nodes(), profile.nodes);
//! assert!(graph.adjacency().nnz() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coo;
mod csc;
mod csr;
mod datasets;
mod error;
mod generators;
mod graph;
mod normalize;
mod partition;
mod permutation;
mod quant;
mod reorder;
mod stats;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use datasets::{DatasetProfile, DatasetStats, KNOWN_DATASETS};
pub use error::GraphError;
pub use generators::{GeneratorConfig, GraphGenerator};
pub use graph::{Graph, NodeMask, Split};
pub use normalize::{degree_vector, normalize_row, normalize_symmetric, SelfLoops};
pub use partition::{PartitionConfig, Partitioner, Partitioning};
pub use permutation::Permutation;
pub use quant::{QuantValues, QuantWidth, QuantizedCsr};
pub use reorder::{bandwidth, degree_descending_order, rcm_order, Reordering};
pub use stats::{BlockDensity, GraphStats, PatchGrid};

/// Result alias used across the graph substrate.
pub type Result<T> = std::result::Result<T, GraphError>;
