//! Dataset profiles matching Table III of the GCoD paper.
//!
//! The paper evaluates on six graph datasets. This reproduction cannot ship
//! the original data, so each dataset is described by a [`DatasetProfile`]
//! capturing the statistics that drive both the algorithm behaviour
//! (size, sparsity, degree distribution, community structure) and the
//! accelerator behaviour (feature width, number of classes, storage). The
//! [`crate::GraphGenerator`] turns a profile into a synthetic [`crate::Graph`]
//! exercising the same code paths as the real data.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Summary statistics of a dataset, as reported in Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Node feature dimension.
    pub features: usize,
    /// Number of label classes.
    pub classes: usize,
    /// Storage of the dataset as reported by the paper, in megabytes.
    pub storage_mb: f64,
}

/// A generative profile for one of the paper's datasets (or a custom graph).
///
/// `power_law_exponent` and `community_mixing` control the degree skew and
/// the fraction of inter-community edges of the synthetic graph; they do not
/// appear in Table III but follow the well-known structure of these datasets
/// (citation graphs are sparse and modular, Reddit is dense and hub-heavy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name, lowercase (e.g. "cora").
    pub name: String,
    /// Number of nodes to generate.
    pub nodes: usize,
    /// Number of undirected edges to generate.
    pub edges: usize,
    /// Node feature dimension.
    pub feature_dim: usize,
    /// Number of label classes; also used as the number of planted
    /// communities.
    pub classes: usize,
    /// Exponent of the power-law degree tail (larger = less skewed).
    pub power_law_exponent: f64,
    /// Fraction of edges that cross community boundaries (0 = perfectly
    /// modular, 1 = no community structure).
    pub community_mixing: f64,
    /// Fraction of nodes placed in the training split.
    pub train_fraction: f64,
    /// Fraction of nodes placed in the validation split.
    pub val_fraction: f64,
    /// Fraction of nodes placed in the test split.
    pub test_fraction: f64,
}

impl DatasetProfile {
    /// Builds a custom profile with sensible split fractions.
    pub fn custom(
        name: impl Into<String>,
        nodes: usize,
        edges: usize,
        feature_dim: usize,
        classes: usize,
    ) -> Self {
        Self {
            name: name.into(),
            nodes,
            edges,
            feature_dim,
            classes,
            power_law_exponent: 2.5,
            community_mixing: 0.15,
            train_fraction: 0.4,
            val_fraction: 0.2,
            test_fraction: 0.4,
        }
    }

    /// The Cora citation graph profile (2,708 nodes / 5,429 edges / 1,433
    /// features / 7 classes).
    pub fn cora() -> Self {
        Self {
            power_law_exponent: 2.7,
            community_mixing: 0.19,
            ..Self::custom("cora", 2_708, 5_429, 1_433, 7)
        }
    }

    /// The CiteSeer citation graph profile (3,312 / 4,372 / 3,703 / 6).
    pub fn citeseer() -> Self {
        Self {
            power_law_exponent: 2.9,
            community_mixing: 0.26,
            ..Self::custom("citeseer", 3_312, 4_372, 3_703, 6)
        }
    }

    /// The Pubmed citation graph profile (19,717 / 44,338 / 500 / 3).
    pub fn pubmed() -> Self {
        Self {
            power_law_exponent: 2.4,
            community_mixing: 0.2,
            ..Self::custom("pubmed", 19_717, 44_338, 500, 3)
        }
    }

    /// The NELL knowledge graph profile (65,755 / 266,144 / 5,414 / 210).
    pub fn nell() -> Self {
        Self {
            power_law_exponent: 2.1,
            community_mixing: 0.3,
            ..Self::custom("nell", 65_755, 266_144, 5_414, 210)
        }
    }

    /// The ogbn-arxiv profile (169,343 / 1,166,243 / 128 / 40).
    pub fn ogbn_arxiv() -> Self {
        Self {
            power_law_exponent: 2.2,
            community_mixing: 0.34,
            ..Self::custom("ogbn-arxiv", 169_343, 1_166_243, 128, 40)
        }
    }

    /// The Reddit post graph profile (232,965 / 114,615,892 / 602 / 41).
    pub fn reddit() -> Self {
        Self {
            power_law_exponent: 1.9,
            community_mixing: 0.4,
            ..Self::custom("reddit", 232_965, 114_615_892, 602, 41)
        }
    }

    /// A Reddit-scale profile that can actually be materialised: the full
    /// node count and feature/class widths of [`DatasetProfile::reddit`],
    /// with the edge count reduced to an average degree of 20 (the full
    /// 114.6M-edge graph is a workload *model* only — synthesising it would
    /// need tens of GB). This is the sharded-serving profile: at full size
    /// its ~560 MB feature matrix plus adjacency will not fit comfortably in
    /// one serving process, which is exactly what `gcod-shard` exists for.
    ///
    /// Not part of [`KNOWN_DATASETS`] (those are the paper's Table III
    /// datasets) but resolvable through [`DatasetProfile::by_name`].
    pub fn reddit_lite() -> Self {
        Self {
            power_law_exponent: 1.9,
            community_mixing: 0.4,
            ..Self::custom("reddit-lite", 232_965, 2_329_650, 602, 41)
        }
    }

    /// Looks a profile up by (case-insensitive) name.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownDataset`] — whose message lists the
    /// valid names — when `name` is none of the paper's six datasets.
    pub fn by_name(name: &str) -> crate::Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "cora" => Ok(Self::cora()),
            "citeseer" => Ok(Self::citeseer()),
            "pubmed" => Ok(Self::pubmed()),
            "nell" => Ok(Self::nell()),
            "ogbn-arxiv" | "arxiv" | "obgn-arxiv" => Ok(Self::ogbn_arxiv()),
            "reddit" => Ok(Self::reddit()),
            "reddit-lite" => Ok(Self::reddit_lite()),
            _ => Err(GraphError::UnknownDataset {
                name: name.to_string(),
            }),
        }
    }

    /// Returns a copy scaled to `factor` of the original size (nodes, edges
    /// and feature dimension), keeping at least two nodes per class.
    ///
    /// Scaling lets the CI-sized test-suite and the benchmark harness run the
    /// full pipeline on laptop-scale replicas of the large graphs while the
    /// analytical accelerator models are still fed the full-size statistics.
    pub fn scaled(&self, factor: f64) -> Self {
        let factor = factor.clamp(1e-6, 1.0);
        let nodes = ((self.nodes as f64 * factor) as usize)
            .max(self.classes * 2)
            .max(8);
        let avg_degree = 2.0 * self.edges as f64 / self.nodes as f64;
        let edges = ((nodes as f64 * avg_degree / 2.0) as usize).max(nodes);
        let feature_dim =
            ((self.feature_dim as f64 * factor.sqrt()) as usize).clamp(4, self.feature_dim);
        Self {
            name: self.name.clone(),
            nodes,
            edges,
            feature_dim,
            classes: self.classes,
            ..*self
        }
    }

    /// The [`DatasetProfile::scaled`] factor that brings this profile down to
    /// roughly `target_nodes` nodes (1.0 when the profile is already small
    /// enough).
    pub fn scale_for_nodes(&self, target_nodes: usize) -> f64 {
        (target_nodes as f64 / self.nodes.max(1) as f64).min(1.0)
    }

    /// Returns a replica profile scaled down to roughly `target_nodes` nodes
    /// (profiles already at or below the target are returned unchanged).
    ///
    /// This is the shared sizing heuristic for laptop-scale replicas: the
    /// algorithm half of an experiment runs on the replica while the
    /// analytical platform models are fed the full-size statistics.
    pub fn scaled_to_nodes(&self, target_nodes: usize) -> Self {
        self.scaled(self.scale_for_nodes(target_nodes))
    }

    /// Table III statistics implied by this profile. Storage is estimated as
    /// the dense feature matrix plus the CSR adjacency, matching the order of
    /// magnitude reported by the paper.
    pub fn stats(&self) -> DatasetStats {
        let feat_bytes = self.nodes * self.feature_dim * 4;
        let adj_bytes = self.edges * 2 * 8 + (self.nodes + 1) * 8;
        DatasetStats {
            nodes: self.nodes,
            edges: self.edges,
            features: self.feature_dim,
            classes: self.classes,
            storage_mb: (feat_bytes + adj_bytes) as f64 / 1.0e6,
        }
    }

    /// Average node degree implied by the profile (`2E/N`).
    pub fn average_degree(&self) -> f64 {
        2.0 * self.edges as f64 / self.nodes as f64
    }

    /// Adjacency sparsity implied by the profile.
    pub fn sparsity(&self) -> f64 {
        1.0 - (2.0 * self.edges as f64) / (self.nodes as f64 * self.nodes as f64)
    }
}

/// Names of the six datasets used by the paper, in Table III order.
pub const KNOWN_DATASETS: [&str; 6] =
    ["cora", "citeseer", "pubmed", "nell", "ogbn-arxiv", "reddit"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_statistics_match_paper() {
        let cora = DatasetProfile::cora();
        assert_eq!(cora.nodes, 2_708);
        assert_eq!(cora.edges, 5_429);
        assert_eq!(cora.feature_dim, 1_433);
        assert_eq!(cora.classes, 7);

        let reddit = DatasetProfile::reddit();
        assert_eq!(reddit.nodes, 232_965);
        assert_eq!(reddit.edges, 114_615_892);
        assert_eq!(reddit.classes, 41);
    }

    #[test]
    fn all_known_datasets_resolve() {
        for name in KNOWN_DATASETS {
            assert!(DatasetProfile::by_name(name).is_ok(), "{name} missing");
        }
        match DatasetProfile::by_name("imagenet") {
            Err(GraphError::UnknownDataset { name }) => assert_eq!(name, "imagenet"),
            other => panic!("expected UnknownDataset, got {other:?}"),
        }
    }

    #[test]
    fn reddit_lite_is_materialisable_reddit() {
        let full = DatasetProfile::reddit();
        let lite = DatasetProfile::reddit_lite();
        assert_eq!(lite.nodes, full.nodes);
        assert_eq!(lite.feature_dim, full.feature_dim);
        assert_eq!(lite.classes, full.classes);
        assert!(lite.edges < full.edges / 10);
        assert!((lite.average_degree() - 20.0).abs() < 1e-9);
        assert_eq!(DatasetProfile::by_name("Reddit-Lite").unwrap(), lite);
        // The paper's Table III list is unchanged.
        assert!(!KNOWN_DATASETS.contains(&"reddit-lite"));
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(DatasetProfile::by_name("Cora").unwrap().name, "cora");
        assert_eq!(DatasetProfile::by_name("ArXiv").unwrap().name, "ogbn-arxiv");
    }

    #[test]
    fn pubmed_is_ultra_sparse() {
        // The paper quotes 99.989% sparsity for Pubmed.
        let pubmed = DatasetProfile::pubmed();
        assert!(pubmed.sparsity() > 0.9997);
    }

    #[test]
    fn scaling_preserves_average_degree() {
        let full = DatasetProfile::pubmed();
        let small = full.scaled(0.05);
        assert!(small.nodes < full.nodes);
        let ratio = small.average_degree() / full.average_degree();
        assert!(ratio > 0.8 && ratio < 1.3, "ratio {ratio}");
    }

    #[test]
    fn scaled_to_nodes_matches_the_manual_heuristic() {
        let pubmed = DatasetProfile::pubmed();
        let factor = (2_000.0 / pubmed.nodes as f64).min(1.0);
        assert_eq!(pubmed.scaled_to_nodes(2_000), pubmed.scaled(factor));
        // Already-small profiles are untouched.
        let cora = DatasetProfile::cora();
        assert_eq!(cora.scale_for_nodes(10_000), 1.0);
        assert_eq!(cora.scaled_to_nodes(10_000).nodes, cora.nodes);
    }

    #[test]
    fn scaling_keeps_nodes_per_class() {
        let nell = DatasetProfile::nell().scaled(0.001);
        assert!(nell.nodes >= nell.classes * 2);
    }

    #[test]
    fn stats_storage_is_positive_and_ordered() {
        let cora = DatasetProfile::cora().stats();
        let reddit = DatasetProfile::reddit().stats();
        assert!(cora.storage_mb > 1.0);
        assert!(reddit.storage_mb > cora.storage_mb);
    }
}
