//! Compressed sparse column (CSC) matrix format.
//!
//! The GCoD accelerator's sparser branch stores the off-diagonal adjacency
//! workload in CSC (Sec. V-B): the distributed aggregation dataflow consumes
//! one column of the adjacency matrix per step, which is exactly what CSC
//! makes cheap.

use crate::{CooMatrix, CsrMatrix, GraphError, Result};
use serde::{Deserialize, Serialize};

/// A sparse matrix in compressed sparse column format.
///
/// Invariants mirror [`CsrMatrix`] with rows and columns swapped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CscMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<u64>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CscMatrix {
    /// Builds a CSC matrix, validating the compressed-column invariants.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] or
    /// [`GraphError::IndexOutOfBounds`] when an invariant is violated.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if indptr.len() != cols + 1 {
            return Err(GraphError::DimensionMismatch {
                context: format!("indptr length {} != cols + 1 = {}", indptr.len(), cols + 1),
            });
        }
        if indptr.first().copied().unwrap_or(0) != 0 || indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::DimensionMismatch {
                context: "indptr must start at 0 and be non-decreasing".to_string(),
            });
        }
        let nnz = *indptr.last().unwrap_or(&0) as usize;
        if indices.len() != nnz || values.len() != nnz {
            return Err(GraphError::DimensionMismatch {
                context: format!(
                    "nnz {} disagrees with indices {} / values {}",
                    nnz,
                    indices.len(),
                    values.len()
                ),
            });
        }
        for &r in &indices {
            if r as usize >= rows {
                return Err(GraphError::IndexOutOfBounds {
                    index: r as usize,
                    bound: rows,
                    axis: "row",
                });
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    pub(crate) fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<u64>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), cols + 1);
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// An empty matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; cols + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array (`cols + 1` entries).
    pub fn indptr(&self) -> &[u64] {
        &self.indptr
    }

    /// Row indices, column-by-column.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Non-zero values, column-by-column.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of non-zeros in column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col_nnz(&self, col: usize) -> usize {
        (self.indptr[col + 1] - self.indptr[col]) as usize
    }

    /// Row indices and values of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn col(&self, col: usize) -> (&[u32], &[f32]) {
        let start = self.indptr[col] as usize;
        let end = self.indptr[col + 1] as usize;
        (&self.indices[start..end], &self.values[start..end])
    }

    /// Value at `(row, col)`, `0.0` when not stored.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        if row >= self.rows || col >= self.cols {
            return 0.0;
        }
        let (rows_slice, vals) = self.col(col);
        match rows_slice.binary_search(&(row as u32)) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates `(row, col, value)` in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        (0..self.cols).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter()
                .zip(vals)
                .map(move |(&r, &v)| (r as usize, c, v))
        })
    }

    /// In-degree per column (number of stored entries).
    pub fn col_degrees(&self) -> Vec<usize> {
        (0..self.cols).map(|c| self.col_nnz(c)).collect()
    }

    /// Converts back to COO.
    pub fn to_coo(&self) -> CooMatrix {
        self.iter()
            .collect::<CooMatrix>()
            .with_shape(self.rows, self.cols)
    }

    /// Converts to CSR.
    pub fn to_csr(&self) -> CsrMatrix {
        self.to_coo().to_csr()
    }

    /// Columns that contain no entries at all.
    ///
    /// The GCoD accelerator skips such columns entirely during distributed
    /// aggregation (Sec. V-B, structural sparsity discussion).
    pub fn empty_columns(&self) -> Vec<usize> {
        (0..self.cols).filter(|&c| self.col_nnz(c) == 0).collect()
    }

    /// Storage footprint in bytes (indptr + indices + values).
    pub fn storage_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<u64>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }
}

impl CooMatrix {
    /// Returns a copy of `self` with the shape replaced (used when a
    /// collected iterator under-estimates trailing empty rows/columns).
    pub(crate) fn with_shape(mut self, rows: usize, cols: usize) -> CooMatrix {
        // Rebuild through triplets to keep validation in one place.
        let ri = self.row_indices().to_vec();
        let ci = self.col_indices().to_vec();
        let vals = self.values().to_vec();
        self = CooMatrix::from_triplets(rows, cols, ri, ci, vals)
            .expect("shape extension keeps indices valid");
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> CscMatrix {
        // Node 0 connected to 1..4 (directed both ways).
        let mut coo = CooMatrix::new(5, 5);
        for i in 1..5 {
            coo.push(0, i, 1.0).unwrap();
            coo.push(i, 0, 1.0).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn col_degrees_of_star() {
        let m = star();
        assert_eq!(m.col_degrees(), vec![4, 1, 1, 1, 1]);
    }

    #[test]
    fn get_matches_construction() {
        let m = star();
        assert_eq!(m.get(0, 3), 1.0);
        assert_eq!(m.get(3, 0), 1.0);
        assert_eq!(m.get(2, 3), 0.0);
    }

    #[test]
    fn from_parts_validates() {
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1, 1], vec![9], vec![1.0]).is_err());
        assert!(CscMatrix::from_parts(2, 2, vec![0, 1, 1], vec![1], vec![1.0]).is_ok());
    }

    #[test]
    fn roundtrip_csr() {
        let m = star();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), m.nnz());
        for (r, c, v) in m.iter() {
            assert_eq!(csr.get(r, c), v);
        }
    }

    #[test]
    fn empty_columns_detected() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        let csc = coo.to_csc();
        assert_eq!(csc.empty_columns(), vec![1]);
    }

    #[test]
    fn zeros_shape() {
        let z = CscMatrix::zeros(4, 2);
        assert_eq!(z.rows(), 4);
        assert_eq!(z.cols(), 2);
        assert_eq!(z.nnz(), 0);
        assert!(z.empty_columns().len() == 2);
    }

    #[test]
    fn csc_storage_smaller_than_coo_for_column_heavy() {
        // CSC shares one pointer per column; COO stores a row and column per
        // entry. For a matrix with many entries per column CSC must win.
        let mut coo = CooMatrix::new(64, 4);
        for c in 0..4usize {
            for r in 0..64usize {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let csc = coo.to_csc();
        assert!(csc.storage_bytes() < coo.storage_bytes());
    }
}
