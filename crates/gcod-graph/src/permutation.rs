//! Node permutations.
//!
//! GCoD's split-and-conquer step reorders the nodes so that each degree class
//! and each group occupies a contiguous index range; everything downstream
//! (adjacency relabelling, feature rows, labels, masks) is expressed through
//! a [`Permutation`].

use crate::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// A bijective mapping from old node indices to new node indices.
///
/// `perm.apply(old) == new`. The inverse mapping is materialised lazily by
/// [`Permutation::inverse`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Permutation {
    forward: Vec<u32>,
}

impl Permutation {
    /// Identity permutation over `n` elements.
    pub fn identity(n: usize) -> Self {
        Self {
            forward: (0..n as u32).collect(),
        }
    }

    /// Builds a permutation from the forward map `old -> new`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if the map is not a bijection
    /// onto `0..n`.
    pub fn from_forward(forward: Vec<u32>) -> Result<Self> {
        let n = forward.len();
        let mut seen = vec![false; n];
        for &v in &forward {
            let v = v as usize;
            if v >= n || seen[v] {
                return Err(GraphError::InvalidParameter {
                    name: "forward",
                    reason: format!("map is not a bijection onto 0..{n}"),
                });
            }
            seen[v] = true;
        }
        Ok(Self { forward })
    }

    /// Builds the permutation that places the nodes in the order given by
    /// `order`: the node `order[k]` is mapped to position `k`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `order` is not a
    /// permutation of `0..order.len()`.
    pub fn from_order(order: &[usize]) -> Result<Self> {
        let n = order.len();
        let mut forward = vec![u32::MAX; n];
        for (new_pos, &old) in order.iter().enumerate() {
            if old >= n || forward[old] != u32::MAX {
                return Err(GraphError::InvalidParameter {
                    name: "order",
                    reason: format!("order is not a permutation of 0..{n}"),
                });
            }
            forward[old] = new_pos as u32;
        }
        Ok(Self { forward })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is over zero elements.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Maps an old index to its new index.
    ///
    /// # Panics
    ///
    /// Panics if `old >= self.len()`.
    pub fn apply(&self, old: usize) -> usize {
        self.forward[old] as usize
    }

    /// The forward map as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.forward
    }

    /// The inverse permutation (new index -> old index).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.forward.len()];
        for (old, &new) in self.forward.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        Permutation { forward: inv }
    }

    /// Composes `self` after `first`: the result maps `x` to
    /// `self.apply(first.apply(x))`.
    ///
    /// # Panics
    ///
    /// Panics if the two permutations have different lengths.
    pub fn compose_after(&self, first: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            first.len(),
            "composed permutations must have equal length"
        );
        let forward = first
            .forward
            .iter()
            .map(|&mid| self.forward[mid as usize])
            .collect();
        Permutation { forward }
    }

    /// Permutes the rows of a table with `row_len` contiguous values per
    /// element (used for feature matrices stored row-major).
    pub fn permute_rows<T: Copy + Default>(&self, data: &[T], row_len: usize) -> Vec<T> {
        assert_eq!(data.len(), self.len() * row_len, "data shape mismatch");
        let mut out = vec![T::default(); data.len()];
        for old in 0..self.len() {
            let new = self.apply(old);
            out[new * row_len..(new + 1) * row_len]
                .copy_from_slice(&data[old * row_len..(old + 1) * row_len]);
        }
        out
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.forward
            .iter()
            .enumerate()
            .all(|(i, &v)| i == v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.apply(3), 3);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn from_forward_rejects_non_bijection() {
        assert!(Permutation::from_forward(vec![0, 0, 1]).is_err());
        assert!(Permutation::from_forward(vec![0, 3, 1]).is_err());
        assert!(Permutation::from_forward(vec![2, 0, 1]).is_ok());
    }

    #[test]
    fn from_order_places_nodes() {
        // order = [2, 0, 1]: node 2 goes to position 0.
        let p = Permutation::from_order(&[2, 0, 1]).unwrap();
        assert_eq!(p.apply(2), 0);
        assert_eq!(p.apply(0), 1);
        assert_eq!(p.apply(1), 2);
    }

    #[test]
    fn inverse_undoes_forward() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        for i in 0..4 {
            assert_eq!(inv.apply(p.apply(i)), i);
        }
    }

    #[test]
    fn compose_applies_in_order() {
        let first = Permutation::from_forward(vec![1, 2, 0]).unwrap();
        let second = Permutation::from_forward(vec![2, 0, 1]).unwrap();
        let composed = second.compose_after(&first);
        for i in 0..3 {
            assert_eq!(composed.apply(i), second.apply(first.apply(i)));
        }
    }

    #[test]
    fn permute_rows_moves_feature_rows() {
        let p = Permutation::from_forward(vec![1, 0]).unwrap();
        let data = vec![1.0f32, 2.0, 3.0, 4.0]; // two rows of two
        let permuted = p.permute_rows(&data, 2);
        assert_eq!(permuted, vec![3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
    }
}
