//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced by the graph substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A sparse matrix was constructed with inconsistent dimensions.
    DimensionMismatch {
        /// Human readable description of the mismatch.
        context: String,
    },
    /// An entry referenced a row or column outside the matrix shape.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Exclusive bound the index must stay below.
        bound: usize,
        /// Which axis the index refers to.
        axis: &'static str,
    },
    /// A generator or partitioner was configured with an invalid parameter.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Why the value is rejected.
        reason: String,
    },
    /// An operation required a non-empty graph but the graph has no nodes.
    EmptyGraph,
    /// A dataset name did not match any of the paper's profiles.
    UnknownDataset {
        /// The name that failed to resolve.
        name: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
            GraphError::IndexOutOfBounds { index, bound, axis } => {
                write!(f, "{axis} index {index} out of bounds (< {bound} required)")
            }
            GraphError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::UnknownDataset { name } => write!(
                f,
                "unknown dataset `{name}` (known datasets: {})",
                crate::KNOWN_DATASETS.join(", ")
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = GraphError::DimensionMismatch {
            context: "values length 3 != 4".to_string(),
        };
        let text = err.to_string();
        assert!(text.starts_with("dimension mismatch"));
        assert!(text.contains("values length 3"));
    }

    #[test]
    fn display_out_of_bounds_mentions_axis() {
        let err = GraphError::IndexOutOfBounds {
            index: 10,
            bound: 5,
            axis: "row",
        };
        assert_eq!(err.to_string(), "row index 10 out of bounds (< 5 required)");
    }

    #[test]
    fn unknown_dataset_lists_valid_names() {
        let err = GraphError::UnknownDataset {
            name: "imagenet".to_string(),
        };
        let text = err.to_string();
        assert!(text.contains("imagenet"));
        assert!(text.contains("cora"));
        assert!(text.contains("reddit"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
