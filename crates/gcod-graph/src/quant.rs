//! Reduced-precision (int8 / int16) sparse storage.
//!
//! The GCoD algorithm half quantizes weights, activations and the
//! aggregation operands to narrow integers; the kernels in `gcod-nn` then
//! compute directly on the integer payloads and accumulate in a wider
//! integer type. This module owns the storage side: a symmetric per-matrix
//! scale plus an integer value array sharing the CSR index structure with
//! the f32 original. Keeping the quantized form a *separate* type (rather
//! than a variant inside [`CsrMatrix`]) keeps every existing f32 code path
//! untouched and makes "which precision is this?" a compile-time question
//! in the kernel layer.
//!
//! Quantization is symmetric and per-matrix: `value ≈ scale * q` with
//! `scale = max_abs / qmax` (`qmax` = 127 for int8, 32767 for int16) and
//! `q = round(value / scale)` clamped to `±qmax`. The round-trip error of
//! any single element is therefore at most `scale / 2` (plus clamping,
//! which the scale choice rules out).

use crate::{CsrMatrix, Result};

/// Integer width of a quantized payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantWidth {
    /// 8-bit signed integers, accumulated in `i32` by the kernels.
    I8,
    /// 16-bit signed integers, accumulated in `i64` by the kernels.
    I16,
}

impl QuantWidth {
    /// Bytes per stored scalar.
    pub fn bytes(self) -> usize {
        match self {
            QuantWidth::I8 => 1,
            QuantWidth::I16 => 2,
        }
    }

    /// Largest representable magnitude (symmetric range, so the most
    /// negative code `-qmax - 1` is never produced).
    pub fn qmax(self) -> f32 {
        match self {
            QuantWidth::I8 => 127.0,
            QuantWidth::I16 => 32767.0,
        }
    }

    /// Human-readable name (used in bench row keys and reports).
    pub fn name(self) -> &'static str {
        match self {
            QuantWidth::I8 => "int8",
            QuantWidth::I16 => "int16",
        }
    }

    /// The symmetric per-tensor scale for `data`: `max_abs / qmax`, or 1.0
    /// for an all-zero (or empty) slice so dequantization stays exact.
    pub fn scale_for(self, data: &[f32]) -> f32 {
        let max_abs = data.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        if max_abs > 0.0 {
            max_abs / self.qmax()
        } else {
            1.0
        }
    }
}

/// The integer payload of a quantized matrix: one variant per supported
/// width, so kernels can match once per call and run a monomorphic inner
/// loop over a typed slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantValues {
    /// 8-bit payload.
    I8(Vec<i8>),
    /// 16-bit payload.
    I16(Vec<i16>),
}

impl QuantValues {
    /// Quantizes `data` with the given `scale` (see
    /// [`QuantWidth::scale_for`]).
    pub fn quantize(data: &[f32], width: QuantWidth, scale: f32) -> Self {
        let qmax = width.qmax();
        match width {
            QuantWidth::I8 => QuantValues::I8(
                data.iter()
                    .map(|&v| (v / scale).round().clamp(-qmax, qmax) as i8)
                    .collect(),
            ),
            QuantWidth::I16 => QuantValues::I16(
                data.iter()
                    .map(|&v| (v / scale).round().clamp(-qmax, qmax) as i16)
                    .collect(),
            ),
        }
    }

    /// The width of this payload.
    pub fn width(&self) -> QuantWidth {
        match self {
            QuantValues::I8(_) => QuantWidth::I8,
            QuantValues::I16(_) => QuantWidth::I16,
        }
    }

    /// Number of stored scalars.
    pub fn len(&self) -> usize {
        match self {
            QuantValues::I8(v) => v.len(),
            QuantValues::I16(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Typed access to an 8-bit payload.
    pub fn as_i8(&self) -> Option<&[i8]> {
        match self {
            QuantValues::I8(v) => Some(v),
            QuantValues::I16(_) => None,
        }
    }

    /// Typed access to a 16-bit payload.
    pub fn as_i16(&self) -> Option<&[i16]> {
        match self {
            QuantValues::I16(v) => Some(v),
            QuantValues::I8(_) => None,
        }
    }

    /// Dequantizes the whole payload to f32 with `scale`.
    pub fn dequantize(&self, scale: f32) -> Vec<f32> {
        match self {
            QuantValues::I8(v) => v.iter().map(|&q| q as f32 * scale).collect(),
            QuantValues::I16(v) => v.iter().map(|&q| q as f32 * scale).collect(),
        }
    }

    /// Payload bytes (excluding the scale).
    pub fn storage_bytes(&self) -> usize {
        self.len() * self.width().bytes()
    }
}

/// A CSR matrix whose values are symmetric per-matrix quantized integers:
/// `value ≈ scale * q`. The index structure (`indptr`, `indices`) is shared
/// verbatim with the f32 original, so the sparsity pattern — and therefore
/// every tiling / partitioning decision — is identical between the f32 and
/// quantized paths; only the value payload narrows.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedCsr {
    rows: usize,
    cols: usize,
    indptr: Vec<u64>,
    indices: Vec<u32>,
    scale: f32,
    values: QuantValues,
}

impl QuantizedCsr {
    /// Quantizes a CSR matrix at the given width.
    pub fn quantize(csr: &CsrMatrix, width: QuantWidth) -> Self {
        let scale = width.scale_for(csr.values());
        Self {
            rows: csr.rows(),
            cols: csr.cols(),
            indptr: csr.indptr().to_vec(),
            indices: csr.indices().to_vec(),
            scale,
            values: QuantValues::quantize(csr.values(), width, scale),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Integer width of the value payload.
    pub fn width(&self) -> QuantWidth {
        self.values.width()
    }

    /// The symmetric quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Row pointer array (`rows + 1` entries), identical to the source CSR.
    pub fn indptr(&self) -> &[u64] {
        &self.indptr
    }

    /// Column indices row-by-row, identical to the source CSR.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The quantized value payload.
    pub fn values(&self) -> &QuantValues {
        &self.values
    }

    /// Number of non-zeros in row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_nnz(&self, row: usize) -> usize {
        (self.indptr[row + 1] - self.indptr[row]) as usize
    }

    /// The half-open value/index range of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.indptr[row] as usize..self.indptr[row + 1] as usize
    }

    /// Dequantizes back to an f32 CSR matrix.
    ///
    /// # Errors
    ///
    /// Never in practice — the index structure is copied from a valid CSR —
    /// but the validating constructor's error type is propagated rather than
    /// unwrapped.
    pub fn dequantize(&self) -> Result<CsrMatrix> {
        CsrMatrix::from_parts(
            self.rows,
            self.cols,
            self.indptr.clone(),
            self.indices.clone(),
            self.values.dequantize(self.scale),
        )
    }

    /// Storage footprint in bytes (indptr + indices + quantized values +
    /// scale).
    pub fn storage_bytes(&self) -> usize {
        self.indptr.len() * std::mem::size_of::<u64>()
            + self.indices.len() * std::mem::size_of::<u32>()
            + self.values.storage_bytes()
            + std::mem::size_of::<f32>()
    }

    /// Worst-case absolute round-trip error against the original values.
    pub fn max_error(&self, original: &CsrMatrix) -> f32 {
        self.values
            .dequantize(self.scale)
            .iter()
            .zip(original.values())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn sample(rows: usize, cols: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if (i * 7 + j * 3) % 5 == 0 {
                    let v = ((i * cols + j) as f32 - 4.0) / 3.0;
                    coo.push(i, j, v).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn widths_report_bytes_and_qmax() {
        assert_eq!(QuantWidth::I8.bytes(), 1);
        assert_eq!(QuantWidth::I16.bytes(), 2);
        assert_eq!(QuantWidth::I8.qmax(), 127.0);
        assert_eq!(QuantWidth::I16.qmax(), 32767.0);
        assert_eq!(QuantWidth::I8.name(), "int8");
        assert_eq!(QuantWidth::I16.name(), "int16");
    }

    #[test]
    fn quantized_csr_preserves_structure() {
        let m = sample(9, 7);
        for width in [QuantWidth::I8, QuantWidth::I16] {
            let q = QuantizedCsr::quantize(&m, width);
            assert_eq!(q.rows(), m.rows());
            assert_eq!(q.cols(), m.cols());
            assert_eq!(q.nnz(), m.nnz());
            assert_eq!(q.indptr(), m.indptr());
            assert_eq!(q.indices(), m.indices());
            assert_eq!(q.width(), width);
            for r in 0..m.rows() {
                assert_eq!(q.row_nnz(r), m.row_nnz(r));
                assert_eq!(q.row_range(r).len(), m.row_nnz(r));
            }
        }
    }

    #[test]
    fn roundtrip_error_within_half_scale() {
        let m = sample(12, 12);
        for width in [QuantWidth::I8, QuantWidth::I16] {
            let q = QuantizedCsr::quantize(&m, width);
            assert!(
                q.max_error(&m) <= q.scale() / 2.0 + 1e-6,
                "{} error {} > scale/2 {}",
                width.name(),
                q.max_error(&m),
                q.scale() / 2.0
            );
            let back = q.dequantize().unwrap();
            assert_eq!(back.indptr(), m.indptr());
            assert_eq!(back.indices(), m.indices());
        }
    }

    #[test]
    fn int16_is_strictly_tighter_than_int8() {
        let m = sample(16, 16);
        let q8 = QuantizedCsr::quantize(&m, QuantWidth::I8);
        let q16 = QuantizedCsr::quantize(&m, QuantWidth::I16);
        assert!(q16.scale() < q8.scale());
        assert!(q16.max_error(&m) <= q8.max_error(&m));
    }

    #[test]
    fn storage_shrinks_with_width() {
        let m = sample(32, 32);
        let q8 = QuantizedCsr::quantize(&m, QuantWidth::I8);
        let q16 = QuantizedCsr::quantize(&m, QuantWidth::I16);
        // Index structure dominates, but the value payload must narrow.
        assert!(q8.storage_bytes() < q16.storage_bytes());
        assert!(q16.storage_bytes() < m.storage_bytes());
        assert_eq!(q8.values().storage_bytes(), m.nnz());
        assert_eq!(q16.values().storage_bytes(), m.nnz() * 2);
    }

    #[test]
    fn zero_matrix_quantizes_cleanly() {
        let z = CsrMatrix::zeros(4, 4);
        let q = QuantizedCsr::quantize(&z, QuantWidth::I8);
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize().unwrap(), z);
        assert!(q.values().is_empty());
    }

    #[test]
    fn typed_access_matches_width() {
        let m = sample(6, 6);
        let q8 = QuantizedCsr::quantize(&m, QuantWidth::I8);
        assert!(q8.values().as_i8().is_some());
        assert!(q8.values().as_i16().is_none());
        let q16 = QuantizedCsr::quantize(&m, QuantWidth::I16);
        assert!(q16.values().as_i16().is_some());
        assert!(q16.values().as_i8().is_none());
    }
}
