//! Block and patch density statistics.
//!
//! Two consumers rely on these statistics:
//!
//! * the GCoD **structural sparsification** step prunes patches whose
//!   non-zero count falls below a threshold η (Step 3, Sec. IV-B),
//! * the **accelerator simulator** estimates per-chunk workloads from the
//!   non-zero distribution over the block-diagonal (denser) and off-diagonal
//!   (sparser) regions.

use crate::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Density of one rectangular block of the adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockDensity {
    /// First row of the block (inclusive).
    pub row_start: usize,
    /// Last row of the block (exclusive).
    pub row_end: usize,
    /// First column (inclusive).
    pub col_start: usize,
    /// Last column (exclusive).
    pub col_end: usize,
    /// Non-zeros inside the block.
    pub nnz: usize,
}

impl BlockDensity {
    /// Number of matrix positions covered by this block.
    pub fn area(&self) -> usize {
        (self.row_end - self.row_start) * (self.col_end - self.col_start)
    }

    /// Non-zero fraction of the block.
    pub fn density(&self) -> f64 {
        let area = self.area();
        if area == 0 {
            0.0
        } else {
            self.nnz as f64 / area as f64
        }
    }
}

/// A uniform grid of square patches over the adjacency matrix.
///
/// This is the "patch" granularity of Fig. 2 in the paper: structural
/// sparsification removes entire patches, and the visualization in Fig. 4
/// renders patch densities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatchGrid {
    patch_size: usize,
    grid_rows: usize,
    grid_cols: usize,
    counts: Vec<u32>,
}

impl PatchGrid {
    /// Computes patch non-zero counts for `adj` with square patches of
    /// `patch_size` (the last row/column of patches may be ragged).
    ///
    /// # Panics
    ///
    /// Panics if `patch_size == 0`.
    pub fn compute(adj: &CsrMatrix, patch_size: usize) -> Self {
        assert!(patch_size > 0, "patch_size must be positive");
        let grid_rows = adj.rows().div_ceil(patch_size);
        let grid_cols = adj.cols().div_ceil(patch_size);
        let mut counts = vec![0u32; grid_rows * grid_cols];
        for (r, c, _) in adj.iter() {
            let pr = r / patch_size;
            let pc = c / patch_size;
            counts[pr * grid_cols + pc] += 1;
        }
        Self {
            patch_size,
            grid_rows,
            grid_cols,
            counts,
        }
    }

    /// Patch side length.
    pub fn patch_size(&self) -> usize {
        self.patch_size
    }

    /// Number of patch rows.
    pub fn grid_rows(&self) -> usize {
        self.grid_rows
    }

    /// Number of patch columns.
    pub fn grid_cols(&self) -> usize {
        self.grid_cols
    }

    /// Non-zero count of the patch at grid position `(pr, pc)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the grid.
    pub fn count(&self, pr: usize, pc: usize) -> u32 {
        self.counts[pr * self.grid_cols + pc]
    }

    /// Iterates `(patch_row, patch_col, nnz)` over all patches.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, u32)> + '_ {
        (0..self.grid_rows)
            .flat_map(move |pr| (0..self.grid_cols).map(move |pc| (pr, pc, self.count(pr, pc))))
    }

    /// Patches whose count is positive but below the threshold (candidates
    /// for structural pruning).
    pub fn sparse_patches(&self, threshold: u32) -> Vec<(usize, usize)> {
        self.iter()
            .filter(|&(_, _, c)| c > 0 && c < threshold)
            .map(|(pr, pc, _)| (pr, pc))
            .collect()
    }

    /// Number of completely empty patches.
    pub fn empty_patches(&self) -> usize {
        self.counts.iter().filter(|&&c| c == 0).count()
    }

    /// The maximum patch count (the densest patch).
    pub fn max_count(&self) -> u32 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

/// Whole-matrix summary statistics used in reports and by the workload
/// models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes (rows of the adjacency matrix).
    pub nodes: usize,
    /// Number of stored non-zeros (directed edges).
    pub nnz: usize,
    /// Fraction of zero entries.
    pub sparsity: f64,
    /// Average node degree.
    pub average_degree: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Gini coefficient of the degree distribution (0 = perfectly even,
    /// values close to 1 = extremely hub dominated). Quantifies the
    /// "power-law irregularity" the paper describes.
    pub degree_gini: f64,
    /// Fraction of non-zeros lying within the block-diagonal band of width
    /// `nodes / 8` (a locality proxy used in reports).
    pub diagonal_mass: f64,
}

impl GraphStats {
    /// Computes statistics for an adjacency matrix.
    pub fn compute(adj: &CsrMatrix) -> Self {
        let nodes = adj.rows();
        let nnz = adj.nnz();
        let degrees = adj.row_degrees();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let average_degree = if nodes > 0 {
            nnz as f64 / nodes as f64
        } else {
            0.0
        };
        let degree_gini = gini(&degrees);
        let band = (nodes / 8).max(1);
        let diag_nnz = adj
            .iter()
            .filter(|&(r, c, _)| r.abs_diff(c) <= band)
            .count();
        let diagonal_mass = if nnz > 0 {
            diag_nnz as f64 / nnz as f64
        } else {
            0.0
        };
        Self {
            nodes,
            nnz,
            sparsity: 1.0 - adj.density(),
            average_degree,
            max_degree,
            degree_gini,
            diagonal_mass,
        }
    }
}

fn gini(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("degrees are finite"));
    let n = sorted.len() as f64;
    let sum: f64 = sorted.iter().sum();
    if sum == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted) / (n * sum) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, GeneratorConfig, GraphGenerator};

    fn block_diag_matrix() -> CsrMatrix {
        // Two dense 4x4 blocks on the diagonal of an 8x8 matrix.
        let mut coo = CooMatrix::new(8, 8);
        for offset in [0usize, 4] {
            for a in 0..4 {
                for b in 0..4 {
                    if a != b {
                        coo.push(offset + a, offset + b, 1.0).unwrap();
                    }
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn patch_grid_counts_blocks() {
        let adj = block_diag_matrix();
        let grid = PatchGrid::compute(&adj, 4);
        assert_eq!(grid.grid_rows(), 2);
        assert_eq!(grid.grid_cols(), 2);
        assert_eq!(grid.count(0, 0), 12);
        assert_eq!(grid.count(1, 1), 12);
        assert_eq!(grid.count(0, 1), 0);
        assert_eq!(grid.empty_patches(), 2);
        assert_eq!(grid.max_count(), 12);
    }

    #[test]
    fn sparse_patches_respect_threshold() {
        let mut coo = CooMatrix::new(8, 8);
        coo.push(0, 7, 1.0).unwrap(); // lonely entry in the off-diagonal patch
        coo.push(1, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        let grid = PatchGrid::compute(&coo.to_csr(), 4);
        let sparse = grid.sparse_patches(3);
        assert!(sparse.contains(&(0, 1)));
        assert!(sparse.contains(&(0, 0)));
        assert!(
            !sparse.contains(&(1, 1)),
            "empty patches are not candidates"
        );
    }

    #[test]
    fn ragged_grids_cover_whole_matrix() {
        let mut coo = CooMatrix::new(10, 10);
        coo.push(9, 9, 1.0).unwrap();
        let grid = PatchGrid::compute(&coo.to_csr(), 4);
        assert_eq!(grid.grid_rows(), 3);
        assert_eq!(grid.count(2, 2), 1);
    }

    #[test]
    fn stats_of_block_diagonal_matrix() {
        let adj = block_diag_matrix();
        let stats = GraphStats::compute(&adj);
        assert_eq!(stats.nodes, 8);
        assert_eq!(stats.nnz, 24);
        assert_eq!(stats.max_degree, 3);
        assert!((stats.average_degree - 3.0).abs() < 1e-9);
        assert!(
            stats.degree_gini.abs() < 1e-9,
            "uniform degrees => zero gini"
        );
    }

    #[test]
    fn gini_detects_hub_dominance() {
        let cfg = GeneratorConfig {
            nodes: 500,
            edges: 1500,
            communities: 5,
            feature_dim: 4,
            power_law_exponent: 2.0,
            community_mixing: 0.2,
            splits: (0.5, 0.2, 0.3),
            feature_noise: 0.3,
        };
        let g = GraphGenerator::new(9).generate_with(&cfg, "g").unwrap();
        let stats = GraphStats::compute(g.adjacency());
        assert!(
            stats.degree_gini > 0.2,
            "power-law graph should be unequal, gini = {}",
            stats.degree_gini
        );
    }

    #[test]
    fn block_density_helpers() {
        let block = BlockDensity {
            row_start: 0,
            row_end: 4,
            col_start: 0,
            col_end: 2,
            nnz: 4,
        };
        assert_eq!(block.area(), 8);
        assert!((block.density() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "patch_size must be positive")]
    fn zero_patch_size_panics() {
        let adj = block_diag_matrix();
        let _ = PatchGrid::compute(&adj, 0);
    }
}
