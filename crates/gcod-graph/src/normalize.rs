//! Degree computation and adjacency normalization.
//!
//! GCN inference uses the symmetrically normalized adjacency
//! `Â = D^{-1/2} (A + I) D^{-1/2}` (Kipf & Welling formulation referenced in
//! Sec. IV-A of the paper). GraphSAGE-style mean aggregation uses the row
//! normalized variant `D^{-1} A`.

use crate::{CooMatrix, CsrMatrix};

/// Whether to add self loops before normalizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelfLoops {
    /// Add the identity to the adjacency matrix before normalizing (the GCN
    /// renormalization trick). This is the default.
    #[default]
    Add,
    /// Normalize the adjacency matrix as given.
    Keep,
}

/// Returns the degree of every node, counting stored entries per row.
///
/// For a symmetric adjacency matrix this is the ordinary node degree; for a
/// directed one it is the out-degree.
pub fn degree_vector(adj: &CsrMatrix) -> Vec<f64> {
    (0..adj.rows()).map(|r| adj.row_nnz(r) as f64).collect()
}

/// Symmetric normalization `D^{-1/2} (A [+ I]) D^{-1/2}`.
///
/// Isolated nodes (degree zero after optional self-loop insertion) keep a
/// zero row rather than producing NaNs.
pub fn normalize_symmetric(adj: &CsrMatrix, self_loops: SelfLoops) -> CsrMatrix {
    let with_loops = match self_loops {
        SelfLoops::Add => add_self_loops(adj),
        SelfLoops::Keep => adj.clone(),
    };
    let degrees = degree_vector(&with_loops);
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    scale_entries(&with_loops, |r, c, v| {
        (v as f64 * inv_sqrt[r] * inv_sqrt[c]) as f32
    })
}

/// Row normalization `D^{-1} (A [+ I])` (mean aggregation).
pub fn normalize_row(adj: &CsrMatrix, self_loops: SelfLoops) -> CsrMatrix {
    let with_loops = match self_loops {
        SelfLoops::Add => add_self_loops(adj),
        SelfLoops::Keep => adj.clone(),
    };
    let degrees = degree_vector(&with_loops);
    let inv: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();
    scale_entries(&with_loops, |r, _c, v| (v as f64 * inv[r]) as f32)
}

fn add_self_loops(adj: &CsrMatrix) -> CsrMatrix {
    let n = adj.rows();
    let mut coo = adj.to_coo();
    for i in 0..n {
        if adj.get(i, i) == 0.0 {
            coo.push(i, i, 1.0).expect("diagonal index is in range");
        }
    }
    coo.to_csr()
}

fn scale_entries<F>(adj: &CsrMatrix, mut scale: F) -> CsrMatrix
where
    F: FnMut(usize, usize, f32) -> f32,
{
    let mut coo = CooMatrix::with_capacity(adj.rows(), adj.cols(), adj.nnz());
    for (r, c, v) in adj.iter() {
        coo.push(r, c, scale(r, c, v))
            .expect("indices already valid");
    }
    coo.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn triangle() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        for (a, b) in [(0, 1), (1, 2), (2, 0)] {
            coo.push(a, b, 1.0).unwrap();
            coo.push(b, a, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn degree_vector_counts_neighbors() {
        let adj = triangle();
        assert_eq!(degree_vector(&adj), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn symmetric_normalization_rows_bounded_by_one() {
        let adj = triangle();
        let norm = normalize_symmetric(&adj, SelfLoops::Add);
        // With self loops every node has degree 3, so each entry is 1/3.
        for (_, _, v) in norm.iter() {
            assert!((v - 1.0 / 3.0).abs() < 1e-6);
        }
        assert_eq!(norm.nnz(), adj.nnz() + 3);
    }

    #[test]
    fn symmetric_normalization_without_self_loops() {
        let adj = triangle();
        let norm = normalize_symmetric(&adj, SelfLoops::Keep);
        assert_eq!(norm.nnz(), adj.nnz());
        for (_, _, v) in norm.iter() {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn row_normalization_rows_sum_to_one() {
        let adj = triangle();
        let norm = normalize_row(&adj, SelfLoops::Add);
        for r in 0..norm.rows() {
            let (_, vals) = norm.row(r);
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn isolated_nodes_do_not_produce_nan() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let adj = coo.to_csr();
        let norm = normalize_symmetric(&adj, SelfLoops::Keep);
        for (_, _, v) in norm.iter() {
            assert!(v.is_finite());
        }
        // Node 2 is isolated and keeps an empty row.
        assert_eq!(norm.row_nnz(2), 0);
    }

    #[test]
    fn self_loops_not_duplicated() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        let adj = coo.to_csr();
        let norm = normalize_symmetric(&adj, SelfLoops::Add);
        // Node 0 already had a self loop; only node 1 gains one.
        assert_eq!(norm.nnz(), adj.nnz() + 1);
    }
}
