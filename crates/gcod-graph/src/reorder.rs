//! Node reordering heuristics.
//!
//! The paper's related-work section contrasts GCoD with post-hoc graph
//! reordering (Rabbit order, reverse Cuthill–McKee). These orderings are
//! provided both as baselines for the locality statistics and as utilities
//! used inside the GCoD pipeline (nodes within a degree class are laid out
//! contiguously).

use crate::{CsrMatrix, Permutation, Result};
use serde::{Deserialize, Serialize};

/// Which reordering heuristic to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reordering {
    /// Keep the input order.
    Identity,
    /// Sort nodes by descending degree (hubs first).
    DegreeDescending,
    /// Reverse Cuthill–McKee: breadth-first layering from a low-degree seed,
    /// reversed, which reduces the adjacency bandwidth.
    ReverseCuthillMcKee,
}

impl Reordering {
    /// Computes the permutation realising this ordering for `adj`.
    ///
    /// # Errors
    ///
    /// Never fails for the provided variants; the `Result` mirrors the
    /// signature of permutation construction.
    pub fn permutation(self, adj: &CsrMatrix) -> Result<Permutation> {
        match self {
            Reordering::Identity => Ok(Permutation::identity(adj.rows())),
            Reordering::DegreeDescending => Permutation::from_order(&degree_descending_order(adj)),
            Reordering::ReverseCuthillMcKee => Permutation::from_order(&rcm_order(adj)),
        }
    }
}

/// Node order sorted by descending degree, ties broken by node id.
pub fn degree_descending_order(adj: &CsrMatrix) -> Vec<usize> {
    let mut order: Vec<usize> = (0..adj.rows()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(adj.row_nnz(i)), i));
    order
}

/// Reverse Cuthill–McKee ordering.
///
/// Starts a BFS from the lowest-degree node of every connected component,
/// visits neighbours in ascending degree order and reverses the final
/// sequence.
pub fn rcm_order(adj: &CsrMatrix) -> Vec<usize> {
    let n = adj.rows();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);

    // Process components from their minimum-degree node.
    let mut by_degree: Vec<usize> = (0..n).collect();
    by_degree.sort_by_key(|&i| (adj.row_nnz(i), i));

    for &seed in &by_degree {
        if visited[seed] {
            continue;
        }
        let mut queue = std::collections::VecDeque::new();
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let (cols, _) = adj.row(u);
            let mut neighbours: Vec<usize> = cols
                .iter()
                .map(|&c| c as usize)
                .filter(|&v| !visited[v])
                .collect();
            neighbours.sort_by_key(|&v| (adj.row_nnz(v), v));
            for v in neighbours {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Adjacency matrix bandwidth: the maximum `|i - j|` over stored entries.
/// Used to quantify the locality improvement from a reordering.
pub fn bandwidth(adj: &CsrMatrix) -> usize {
    adj.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn path(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0).unwrap();
            coo.push(i + 1, i, 1.0).unwrap();
        }
        coo.to_csr()
    }

    fn scrambled_path(n: usize) -> (CsrMatrix, Permutation) {
        // Permute a path graph so its natural banded structure is destroyed.
        let forward: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 3) % n as u32).collect();
        let perm = Permutation::from_forward(forward).unwrap();
        (path(n).permute_symmetric(&perm), perm)
    }

    #[test]
    fn degree_descending_puts_hubs_first() {
        let mut coo = CooMatrix::new(5, 5);
        // Node 2 is a hub connected to everyone.
        for i in [0usize, 1, 3, 4] {
            coo.push(2, i, 1.0).unwrap();
            coo.push(i, 2, 1.0).unwrap();
        }
        let adj = coo.to_csr();
        let order = degree_descending_order(&adj);
        assert_eq!(order[0], 2);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_path() {
        let n = 101;
        let (scrambled, _) = scrambled_path(n);
        let before = bandwidth(&scrambled);
        let perm = Reordering::ReverseCuthillMcKee
            .permutation(&scrambled)
            .unwrap();
        let after = bandwidth(&scrambled.permute_symmetric(&perm));
        assert!(after < before, "bandwidth {after} !< {before}");
        // A path admits bandwidth 1; RCM should get very close.
        assert!(after <= 2, "path RCM bandwidth should be tiny, got {after}");
    }

    #[test]
    fn identity_reordering_is_noop() {
        let adj = path(10);
        let perm = Reordering::Identity.permutation(&adj).unwrap();
        assert!(perm.is_identity());
    }

    #[test]
    fn rcm_covers_all_nodes_once() {
        let (scrambled, _) = scrambled_path(37);
        let order = rcm_order(&scrambled);
        let mut seen = vec![false; 37];
        for &i in &order {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        let mut coo = CooMatrix::new(6, 6);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(4, 5, 1.0).unwrap();
        coo.push(5, 4, 1.0).unwrap();
        let adj = coo.to_csr();
        let order = rcm_order(&adj);
        assert_eq!(order.len(), 6);
    }

    #[test]
    fn bandwidth_of_empty_matrix_is_zero() {
        assert_eq!(bandwidth(&CsrMatrix::zeros(4, 4)), 0);
    }
}
