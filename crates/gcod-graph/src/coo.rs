//! Coordinate (COO) sparse matrix format.
//!
//! COO is the construction-friendly format: a flat list of `(row, col, value)`
//! triplets. The GCoD accelerator's denser branch consumes COO inputs
//! (Sec. V-B of the paper), and every other format in this crate can be built
//! from it.

use crate::{CscMatrix, CsrMatrix, GraphError, Result};
use serde::{Deserialize, Serialize};

/// A sparse matrix stored as coordinate triplets.
///
/// Triplets are kept in insertion order until [`CooMatrix::sort_and_dedup`]
/// or a conversion is requested. Duplicate coordinates are summed on
/// deduplication, matching the usual sparse-assembly semantics.
///
/// # Example
///
/// ```
/// use gcod_graph::CooMatrix;
///
/// # fn main() -> Result<(), gcod_graph::GraphError> {
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(0, 1, 1.0)?;
/// coo.push(1, 0, 1.0)?;
/// coo.push(2, 2, 2.0)?;
/// assert_eq!(coo.nnz(), 3);
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(2, 2), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_indices: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CooMatrix {
    /// Creates an empty matrix with the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_indices: Vec::new(),
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty matrix with the given shape and entry capacity.
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        Self {
            rows,
            cols,
            row_indices: Vec::with_capacity(capacity),
            col_indices: Vec::with_capacity(capacity),
            values: Vec::with_capacity(capacity),
        }
    }

    /// Builds a COO matrix from parallel triplet vectors.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DimensionMismatch`] if the vectors have different
    /// lengths and [`GraphError::IndexOutOfBounds`] if any coordinate exceeds
    /// the shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        row_indices: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_indices.len() != col_indices.len() || row_indices.len() != values.len() {
            return Err(GraphError::DimensionMismatch {
                context: format!(
                    "triplet vectors disagree: rows {}, cols {}, values {}",
                    row_indices.len(),
                    col_indices.len(),
                    values.len()
                ),
            });
        }
        for &r in &row_indices {
            if r as usize >= rows {
                return Err(GraphError::IndexOutOfBounds {
                    index: r as usize,
                    bound: rows,
                    axis: "row",
                });
            }
        }
        for &c in &col_indices {
            if c as usize >= cols {
                return Err(GraphError::IndexOutOfBounds {
                    index: c as usize,
                    bound: cols,
                    axis: "column",
                });
            }
        }
        Ok(Self {
            rows,
            cols,
            row_indices,
            col_indices,
            values,
        })
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let idx: Vec<u32> = (0..n as u32).collect();
        Self {
            rows: n,
            cols: n,
            row_indices: idx.clone(),
            col_indices: idx,
            values: vec![1.0; n],
        }
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::IndexOutOfBounds`] if the coordinate is outside
    /// the matrix shape.
    pub fn push(&mut self, row: usize, col: usize, value: f32) -> Result<()> {
        if row >= self.rows {
            return Err(GraphError::IndexOutOfBounds {
                index: row,
                bound: self.rows,
                axis: "row",
            });
        }
        if col >= self.cols {
            return Err(GraphError::IndexOutOfBounds {
                index: col,
                bound: self.cols,
                axis: "column",
            });
        }
        self.row_indices.push(row as u32);
        self.col_indices.push(col as u32);
        self.values.push(value);
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (before deduplication this counts duplicates).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Density of the matrix: `nnz / (rows * cols)`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// Row index slice.
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// Column index slice.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Value slice.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterates over `(row, col, value)` triplets in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f32)> + '_ {
        self.row_indices
            .iter()
            .zip(&self.col_indices)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Sorts entries by `(row, col)` and sums duplicate coordinates.
    pub fn sort_and_dedup(&mut self) {
        let mut order: Vec<usize> = (0..self.values.len()).collect();
        order.sort_unstable_by_key(|&i| (self.row_indices[i], self.col_indices[i]));
        let mut rows = Vec::with_capacity(order.len());
        let mut cols = Vec::with_capacity(order.len());
        let mut vals: Vec<f32> = Vec::with_capacity(order.len());
        for &i in &order {
            let (r, c, v) = (self.row_indices[i], self.col_indices[i], self.values[i]);
            if let (Some(&lr), Some(&lc)) = (rows.last(), cols.last()) {
                if lr == r && lc == c {
                    *vals.last_mut().expect("values nonempty when rows nonempty") += v;
                    continue;
                }
            }
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        self.row_indices = rows;
        self.col_indices = cols;
        self.values = vals;
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Self {
        Self {
            rows: self.cols,
            cols: self.rows,
            row_indices: self.col_indices.clone(),
            col_indices: self.row_indices.clone(),
            values: self.values.clone(),
        }
    }

    /// Converts to CSR (sorting and summing duplicates).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.clone();
        sorted.sort_and_dedup();
        let mut indptr = vec![0u64; self.rows + 1];
        for &r in &sorted.row_indices {
            indptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            indptr[i + 1] += indptr[i];
        }
        CsrMatrix::from_parts_unchecked(
            self.rows,
            self.cols,
            indptr,
            sorted.col_indices,
            sorted.values,
        )
    }

    /// Converts to CSC (sorting and summing duplicates).
    pub fn to_csc(&self) -> CscMatrix {
        self.transpose().to_csr().into_csc_of_transpose()
    }

    /// Keeps only the entries for which `predicate(row, col, value)` is true.
    pub fn retain<F>(&mut self, mut predicate: F)
    where
        F: FnMut(usize, usize, f32) -> bool,
    {
        let mut keep_rows = Vec::with_capacity(self.values.len());
        let mut keep_cols = Vec::with_capacity(self.values.len());
        let mut keep_vals = Vec::with_capacity(self.values.len());
        for i in 0..self.values.len() {
            let (r, c, v) = (
                self.row_indices[i] as usize,
                self.col_indices[i] as usize,
                self.values[i],
            );
            if predicate(r, c, v) {
                keep_rows.push(r as u32);
                keep_cols.push(c as u32);
                keep_vals.push(v);
            }
        }
        self.row_indices = keep_rows;
        self.col_indices = keep_cols;
        self.values = keep_vals;
    }

    /// Storage footprint in bytes of the triplet representation.
    pub fn storage_bytes(&self) -> usize {
        self.nnz() * (2 * std::mem::size_of::<u32>() + std::mem::size_of::<f32>())
    }
}

impl FromIterator<(usize, usize, f32)> for CooMatrix {
    /// Collects triplets into a matrix whose shape is the tightest bound of
    /// the seen coordinates.
    fn from_iter<I: IntoIterator<Item = (usize, usize, f32)>>(iter: I) -> Self {
        let mut rows = 0usize;
        let mut cols = 0usize;
        let mut ri = Vec::new();
        let mut ci = Vec::new();
        let mut vals = Vec::new();
        for (r, c, v) in iter {
            rows = rows.max(r + 1);
            cols = cols.max(c + 1);
            ri.push(r as u32);
            ci.push(c as u32);
            vals.push(v);
        }
        Self {
            rows,
            cols,
            row_indices: ri,
            col_indices: ci,
            values: vals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooMatrix {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 1.0).unwrap();
        coo.push(1, 2, 1.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        coo.push(2, 3, 1.0).unwrap();
        coo.push(3, 1, 1.0).unwrap();
        coo
    }

    #[test]
    fn push_and_nnz() {
        let coo = sample();
        assert_eq!(coo.nnz(), 6);
        assert_eq!(coo.rows(), 4);
        assert_eq!(coo.cols(), 4);
    }

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(GraphError::IndexOutOfBounds { axis: "row", .. })
        ));
        assert!(matches!(
            coo.push(0, 5, 1.0),
            Err(GraphError::IndexOutOfBounds { axis: "column", .. })
        ));
    }

    #[test]
    fn from_triplets_validates_lengths() {
        let err = CooMatrix::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]);
        assert!(matches!(err, Err(GraphError::DimensionMismatch { .. })));
    }

    #[test]
    fn sort_and_dedup_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.5).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.sort_and_dedup();
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.values()[0], 3.5);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let eye = CooMatrix::identity(5);
        assert_eq!(eye.nnz(), 5);
        for (r, c, v) in eye.iter() {
            assert_eq!(r, c);
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn transpose_swaps_indices() {
        let coo = sample();
        let t = coo.transpose();
        assert_eq!(t.rows(), coo.cols());
        let orig: Vec<_> = coo.iter().collect();
        let trans: Vec<_> = t.iter().collect();
        for ((r, c, _), (tr, tc, _)) in orig.iter().zip(&trans) {
            assert_eq!(*r, *tc);
            assert_eq!(*c, *tr);
        }
    }

    #[test]
    fn density_of_empty_is_zero() {
        let coo = CooMatrix::new(0, 0);
        assert_eq!(coo.density(), 0.0);
    }

    #[test]
    fn retain_filters_entries() {
        let mut coo = sample();
        coo.retain(|r, _, _| r < 2);
        assert_eq!(coo.nnz(), 3);
        assert!(coo.iter().all(|(r, _, _)| r < 2));
    }

    #[test]
    fn from_iterator_infers_shape() {
        let coo: CooMatrix = vec![(0, 0, 1.0), (3, 2, 2.0)].into_iter().collect();
        assert_eq!(coo.rows(), 4);
        assert_eq!(coo.cols(), 3);
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn to_csr_roundtrip_values() {
        let coo = sample();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), coo.nnz());
        for (r, c, v) in coo.iter() {
            assert_eq!(csr.get(r, c), v);
        }
    }
}
