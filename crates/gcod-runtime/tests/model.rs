//! Deterministic-interleaving model tests for the concurrency substrate.
//!
//! Each test hands a small multi-threaded scenario to
//! [`gcod_runtime::sync::model::check`], which explores every schedule within
//! the preemption bound and fails on the first deadlock (how a lost wakeup
//! manifests) or assertion panic. Build with `--features model` or
//! `RUSTFLAGS='--cfg gcod_model'`; on a plain build this file compiles to
//! nothing.
//!
//! Run with `-- --nocapture` to see the per-test interleaving counts CI
//! tracks.

#![cfg(any(feature = "model", gcod_model))]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use gcod_runtime::sync::model::{self, Model};
use gcod_runtime::sync::{thread, Condvar, Mutex};
use gcod_runtime::{Latch, Pool, PopTimeout, Reactor, SyncQueue};

/// Every schedule of two producers racing one consumer must hand both items
/// over — a lost wakeup would strand the consumer in `pop` and show up as a
/// deadlock.
#[test]
fn queue_push_pop_loses_no_wakeup() {
    let model = Model {
        max_preemptions: 4,
        ..Model::default()
    };
    let report = model.check("queue-push-pop", || {
        let q = Arc::new(SyncQueue::unbounded());
        let producers: Vec<_> = (1..=2u32)
            .map(|v| {
                let q = Arc::clone(&q);
                thread::spawn_named(&format!("producer-{v}"), move || {
                    q.try_push(v).expect("queue is open");
                })
            })
            .collect();
        let mut got = [q.pop(), q.pop()];
        got.sort();
        assert_eq!(
            got,
            [Some(1), Some(2)],
            "both pushes must reach the consumer"
        );
        for producer in producers {
            producer.join().expect("producer ran to completion");
        }
    });
    assert!(
        report.interleavings >= 1000,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}

/// `pop_timeout` must resolve on every schedule: the item when the producer
/// won the race, `TimedOut` when the scheduler fired the timeout first —
/// never a hang, and never `Closed` on an open queue.
#[test]
fn queue_pop_timeout_always_resolves() {
    let model = Model {
        max_preemptions: 3,
        ..Model::default()
    };
    let report = model.check("queue-pop-timeout", || {
        let q = Arc::new(SyncQueue::unbounded());
        let producers: Vec<_> = (0..2)
            .map(|i| {
                let q = Arc::clone(&q);
                thread::spawn_named(&format!("producer-{i}"), move || {
                    q.try_push(7u8).expect("queue is open");
                })
            })
            .collect();
        for _ in 0..2 {
            match q.pop_timeout(Duration::from_millis(1)) {
                PopTimeout::Item(v) => assert_eq!(v, 7),
                PopTimeout::TimedOut => {}
                PopTimeout::Closed => panic!("open queue must never report Closed"),
            }
        }
        for producer in producers {
            producer.join().expect("producer ran to completion");
        }
        // Whatever the pops saw in time, both items are accounted for after
        // the join: drain whatever remains, then observe the closed state.
        q.close();
        loop {
            match q.pop_timeout(Duration::from_millis(1)) {
                PopTimeout::Item(v) => assert_eq!(v, 7),
                PopTimeout::Closed => break,
                PopTimeout::TimedOut => panic!("a closed queue must never time out"),
            }
        }
    });
    assert!(
        report.interleavings >= 1000,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}

/// `close()` must wake every blocked consumer on every schedule — consumers
/// that entered `pop` before, during and after the close all observe the
/// drain-then-`None` protocol.
#[test]
fn queue_close_wakes_all_blocked_consumers() {
    let model = Model {
        max_preemptions: 3,
        ..Model::default()
    };
    let report = model.check("queue-close-wakes-all", || {
        let q: Arc<SyncQueue<u8>> = Arc::new(SyncQueue::unbounded());
        let consumers: Vec<_> = (0..2)
            .map(|i| {
                let q = Arc::clone(&q);
                thread::spawn_named(&format!("consumer-{i}"), move || q.pop())
            })
            .collect();
        q.try_push(9).expect("queue is open");
        q.close();
        let mut popped: Vec<Option<u8>> = consumers
            .into_iter()
            .map(|c| c.join().expect("consumer ran to completion"))
            .collect();
        popped.sort();
        // Exactly one consumer got the queued item; the other drained to the
        // closed state. Neither may hang.
        assert_eq!(popped, vec![None, Some(9)]);
    });
    assert!(
        report.interleavings >= 1000,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}

/// A `Latch` waiter must wake on every schedule of the completing threads —
/// the count-to-zero notification can never be lost.
#[test]
fn latch_wait_never_hangs() {
    let model = Model {
        max_preemptions: 3,
        ..Model::default()
    };
    let report = model.check("latch-wait", || {
        let latch = Arc::new(Latch::new(3));
        let completers: Vec<_> = (0..3)
            .map(|i| {
                let latch = Arc::clone(&latch);
                thread::spawn_named(&format!("completer-{i}"), move || latch.complete_one())
            })
            .collect();
        latch.wait();
        assert!(latch.is_done());
        for completer in completers {
            completer.join().expect("completer ran to completion");
        }
    });
    assert!(
        report.interleavings >= 1000,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}

/// `Latch::wait_timeout` must resolve on every schedule — completed when the
/// completer won, `false` when the timeout fired first — and never hang even
/// when the count never reaches zero on that schedule.
#[test]
fn latch_wait_timeout_always_resolves() {
    model::check("latch-wait-timeout", || {
        let latch = Arc::new(Latch::new(1));
        let completer = {
            let latch = Arc::clone(&latch);
            thread::spawn_named("completer", move || latch.complete_one())
        };
        // Either outcome is legal; hanging or panicking is not.
        let _completed = latch.wait_timeout(Duration::from_millis(1));
        completer.join().expect("completer ran to completion");
        assert!(latch.is_done(), "after the join the count must be zero");
    });
}

/// A full pool lifecycle — spawn a worker, run a batch, drop (close + join)
/// — must complete on every schedule: the batch join must see every task and
/// shutdown must wake the blocked worker.
#[test]
fn pool_run_and_shutdown_never_hang() {
    use gcod_runtime::sync::atomic::{AtomicUsize, Ordering};
    // The pool scenario has a deeper decision trace than the queue tests;
    // one preemption keeps the space in the thousands while still crossing
    // every pair of adjacent critical sections.
    let model = Model {
        max_preemptions: 1,
        ..Model::default()
    };
    model.check("pool-run-shutdown", || {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        drop(pool); // close the feed, join the worker — must not hang
    });
}

/// A raise racing the consumer's block must be observed on every schedule —
/// the sticky event mask is exactly the mechanism that closes the classic
/// check-then-sleep window, and a lost raise would strand the consumer in
/// `wait` (reported as a deadlock by the scheduler).
#[test]
fn reactor_raise_is_never_lost() {
    let model = Model {
        max_preemptions: 4,
        ..Model::default()
    };
    let report = model.check("reactor-raise-wait", || {
        let reactor = Reactor::new();
        let producers: Vec<_> = [1u64, 2]
            .into_iter()
            .map(|bit| {
                let waker = reactor.waker(1 << bit);
                thread::spawn_named(&format!("raiser-{bit}"), move || waker.wake())
            })
            .collect();
        // Two raises may coalesce into one wake or arrive as two; either
        // way both bits must be seen, and neither wait may hang.
        let mut seen = 0u64;
        while seen != (1 << 1) | (1 << 2) {
            let wake = reactor.wait();
            assert!(!wake.closed, "nobody closed the reactor");
            assert_ne!(wake.events, 0, "an open reactor only wakes for events");
            seen |= wake.events;
        }
        for producer in producers {
            producer.join().expect("producer ran to completion");
        }
    });
    assert!(
        report.interleavings >= 100,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}

/// `close()` racing a raise must wake a blocked consumer on every schedule
/// and never swallow the raised bit: the final wake carries the close flag,
/// and the bit is observed either with it or before it.
#[test]
fn reactor_close_wakes_consumer_without_dropping_events() {
    let model = Model {
        max_preemptions: 4,
        ..Model::default()
    };
    let report = model.check("reactor-close-vs-raise", || {
        let reactor = Reactor::new();
        let raiser = {
            let waker = reactor.waker(1);
            thread::spawn_named("raiser", move || waker.wake())
        };
        let closer = {
            let reactor = reactor.clone();
            thread::spawn_named("closer", move || reactor.close())
        };
        let mut seen = 0u64;
        loop {
            let wake = reactor.wait();
            seen |= wake.events;
            if wake.closed {
                break;
            }
        }
        // The close delivered. Once the raiser has finished, its bit must
        // be accounted for — seen before the close or still sticky after it.
        raiser.join().expect("raiser ran to completion");
        closer.join().expect("closer ran to completion");
        seen |= reactor.try_wait().events;
        assert_eq!(seen, 1, "the raised bit survived the close race");
    });
    assert!(
        report.interleavings >= 100,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}

/// `Reactor::wait_timeout` must resolve on every schedule — with the bit
/// when the raiser won, `timed_out` when the timeout fired first — and never
/// hang.
#[test]
fn reactor_wait_timeout_always_resolves() {
    model::check("reactor-wait-timeout", || {
        let reactor = Reactor::new();
        let raiser = {
            let waker = reactor.waker(1);
            thread::spawn_named("raiser", move || waker.wake())
        };
        let wake = reactor.wait_timeout(Duration::from_millis(1));
        assert!(!wake.closed, "nobody closed the reactor");
        raiser.join().expect("raiser ran to completion");
        // After the join the raise has happened; if the timed wait missed
        // it, the sticky mask still holds it.
        if wake.timed_out {
            assert_eq!(reactor.try_wait().events, 1);
        } else {
            assert_eq!(wake.events, 1);
        }
    });
}

/// A queue with the classic lost-wakeup bug: `pop` checks for an item,
/// **releases the lock**, and only then re-acquires it to wait. A push that
/// lands inside that window notifies nobody — the notification is lost and
/// the consumer sleeps forever. Kept here (test-only) to prove the model
/// checker actually catches the bug class the `SyncQueue` tests above claim
/// to rule out.
struct BrokenQueue {
    items: Mutex<VecDeque<u32>>,
    not_empty: Condvar,
}

impl BrokenQueue {
    fn new() -> Self {
        Self {
            items: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
        }
    }

    fn push(&self, value: u32) {
        self.items.lock_unpoisoned().push_back(value);
        self.not_empty.notify_one();
    }

    /// The broken pop: the empty-check and the wait happen under *separate*
    /// lock acquisitions, leaving a window where a concurrent push's
    /// notification is lost.
    fn pop_lost_wakeup(&self) -> u32 {
        loop {
            {
                let mut items = self.items.lock_unpoisoned();
                if let Some(value) = items.pop_front() {
                    return value;
                }
            } // lock released: a push landing here notifies nobody
            let guard = self.items.lock_unpoisoned();
            drop(self.not_empty.wait(guard));
        }
    }
}

/// Regression test for the detector itself: the model checker must flag the
/// broken queue's lost wakeup as a deadlock. If this starts passing silently,
/// the scheduler stopped exploring the racy window.
#[test]
fn model_catches_lost_wakeup_in_broken_queue() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        model::check("broken-queue-lost-wakeup", || {
            let q = Arc::new(BrokenQueue::new());
            let producer = {
                let q = Arc::clone(&q);
                thread::spawn_named("producer", move || q.push(7))
            };
            assert_eq!(q.pop_lost_wakeup(), 7);
            producer.join().expect("producer ran to completion");
        });
    }));
    let payload = result.expect_err("the model checker must catch the lost wakeup");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic payload>".to_string());
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report naming the stuck consumer, got: {message}"
    );
}
