//! Persistent worker-pool runtime shared by every parallel code path in the
//! GCoD workspace.
//!
//! PR 3's `ParallelCsr` kernel paid a `std::thread::scope` spawn on *every*
//! SpMM call — tens of microseconds that dominate the small and medium
//! matrices a GCN training epoch is made of. This crate replaces per-call
//! spawning with one process-wide pool:
//!
//! * [`Pool::global`] — a lazily-started pool whose worker count comes from
//!   the `GCOD_WORKERS` environment variable (unset, empty, `0` or `auto`
//!   selects [`std::thread::available_parallelism`]); workers are spawned
//!   once and reused by every subsequent parallel call,
//! * [`Pool::run`] — scoped execution of a batch of closures that may borrow
//!   caller data (the pool joins the whole batch before returning),
//! * [`Pool::parallel_for_ranges`] — the deterministic data-parallel
//!   primitive the kernels build on: an index range is split into contiguous
//!   sub-ranges balanced by a caller-supplied cost function
//!   ([`split_by_cost`]), a mutable output slice is split into the matching
//!   disjoint chunks, and the batch is joined in submission order,
//! * graceful single-core fallback — a pool with one worker lane spawns **no
//!   threads at all** and runs every task inline, in submission order.
//!
//! # Determinism
//!
//! The pool never makes results depend on the worker count. The range split
//! is a pure function of the cost function and lane count, ranges are
//! disjoint, and every task writes only its own output chunk — so a kernel
//! that computes each output element in a fixed order inside one task
//! produces bit-for-bit identical results at 1, 2 or N lanes. The
//! differential suites in `gcod-nn` and the golden-report tests in
//! `gcod-bench` pin this end to end.
//!
//! # Example
//!
//! ```
//! use gcod_runtime::Pool;
//!
//! // Double each element in parallel; 7 items, cost-uniform split.
//! let mut out = vec![0u64; 7];
//! Pool::global().parallel_for_ranges(7, &mut out, 0, |_| 1, |range, chunk| {
//!     for (slot, i) in chunk.iter_mut().zip(range) {
//!         *slot = 2 * i as u64;
//!     }
//! });
//! assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod queue;
pub mod reactor;
pub mod sync;

pub use queue::{PopTimeout, PushError, SyncQueue};
pub use reactor::{Event, Reactor, Wake, Waker};

use crate::sync::{thread::JoinHandle, Condvar, Mutex};
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

/// A type-erased, lifetime-erased unit of work queued to the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True on pool worker threads. A nested [`Pool::run`] issued from inside
    /// a pooled task runs inline instead of re-queueing, so a task that
    /// itself uses parallel tensor ops can never deadlock the pool.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A panic payload carried from a pooled task back to the submitting thread.
type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Counts a batch of work items down to zero and wakes every waiter, with a
/// side slot carrying the first panic payload of the batch back to the
/// submitting thread.
///
/// The pool joins every [`Pool::run`] batch behind one of these; `gcod-serve`
/// reuses it to signal ticket completion to blocked clients. The counter only
/// moves down — a `Latch` is a one-shot join, not a reusable barrier.
pub struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
    panic_payload: Mutex<Option<PanicPayload>>,
}

impl std::fmt::Debug for Latch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Latch")
            .field("remaining", &*self.remaining.lock_unpoisoned())
            .finish()
    }
}

impl Latch {
    /// A latch waiting for `count` completions ([`Latch::wait`] on a 0-count
    /// latch returns immediately).
    pub fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
            panic_payload: Mutex::new(None),
        }
    }

    /// Records one completion, waking every waiter when the count reaches
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics (on underflow) when called more than `count` times.
    pub fn complete_one(&self) {
        let mut remaining = self.remaining.lock_unpoisoned();
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    /// Records the first panic payload of the batch (later ones are dropped).
    fn record_panic(&self, payload: PanicPayload) {
        let mut slot = self.panic_payload.lock_unpoisoned();
        slot.get_or_insert(payload);
    }

    fn take_panic(&self) -> Option<PanicPayload> {
        self.panic_payload.lock_unpoisoned().take()
    }

    /// Blocks until the completion count reaches zero.
    pub fn wait(&self) {
        let mut remaining = self.remaining.lock_unpoisoned();
        while *remaining > 0 {
            remaining = self.all_done.wait(remaining);
        }
    }

    /// Blocks until the count reaches zero or `timeout` elapses; `true` when
    /// the latch completed.
    pub fn wait_timeout(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        let mut remaining = self.remaining.lock_unpoisoned();
        while *remaining > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, timed_out) = self.all_done.wait_timeout(remaining, deadline - now);
            remaining = guard;
            // A timed-out wait means the deadline passed (the wait covered
            // the full remaining budget), so give up without re-reading the
            // clock — this is also what lets the model checker treat the
            // timeout as a schedulable event rather than a real clock.
            if timed_out && *remaining > 0 {
                return false;
            }
        }
        true
    }

    /// Whether the completion count has reached zero.
    pub fn is_done(&self) -> bool {
        *self.remaining.lock_unpoisoned() == 0
    }
}

/// Outcome of [`RecoveryGate::await_healthy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateWait {
    /// No recovery is in flight — proceed.
    Healthy,
    /// The gate was closed (shutdown); no more recoveries will complete.
    Closed,
    /// The timeout elapsed while a recovery was still in flight.
    TimedOut,
}

/// Serialises failure recovery: at most one recovery in flight, waiters
/// block until it completes, shutdown drains cleanly.
///
/// The `gcod-serve` shard supervisor uses one gate per sharded model to
/// guarantee **no double respawn** (only the thread holding the token may
/// replace a worker) and **no lost wakeup** (every `finish`/`close`
/// notifies all waiters; waits re-check the predicate in a loop). Built on
/// the [`sync`] facade, so the same code is exhaustively model-checked
/// under bounded preemption (`gcod-serve/tests/model_supervisor.rs`).
#[derive(Debug, Default)]
pub struct RecoveryGate {
    state: Mutex<GateState>,
    changed: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    recovering: bool,
    closed: bool,
    /// Completed recoveries — lets a token detect it outlived its gate
    /// cycle in debug assertions, and gives tests an observable count.
    generation: u64,
}

/// Exclusive permission to run one recovery; returned by
/// [`RecoveryGate::begin_recovery`] and redeemed with
/// [`RecoveryGate::finish`].
///
/// The token is deliberately not `Clone` and carries the generation it was
/// issued for: exactly one liveness-restoring actor exists per cycle.
#[derive(Debug)]
#[must_use = "a recovery token must be finished, or waiters block until the gate closes"]
pub struct RecoveryToken {
    generation: u64,
}

impl RecoveryGate {
    /// A new gate in the healthy (not recovering, not closed) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims the exclusive right to run a recovery.
    ///
    /// Returns `None` when a recovery is already in flight (someone else
    /// owns the token — wait for it with
    /// [`await_healthy`](RecoveryGate::await_healthy)) or when the gate is
    /// closed (use [`is_closed`](RecoveryGate::is_closed) to distinguish).
    /// This is what makes a double respawn impossible by construction.
    pub fn begin_recovery(&self) -> Option<RecoveryToken> {
        let mut state = self.state.lock_unpoisoned();
        if state.closed || state.recovering {
            return None;
        }
        state.recovering = true;
        Some(RecoveryToken {
            generation: state.generation,
        })
    }

    /// Completes the recovery the token was issued for and wakes every
    /// waiter (regardless of whether the recovery actually succeeded —
    /// the caller communicates success out of band, e.g. by degrading).
    pub fn finish(&self, token: RecoveryToken) {
        let mut state = self.state.lock_unpoisoned();
        debug_assert!(
            state.recovering && token.generation == state.generation,
            "finish() must redeem the token of the in-flight recovery"
        );
        state.recovering = false;
        state.generation = state.generation.wrapping_add(1);
        self.changed.notify_all();
    }

    /// Blocks while a recovery is in flight, up to `timeout`.
    pub fn await_healthy(&self, timeout: std::time::Duration) -> GateWait {
        let mut state = self.state.lock_unpoisoned();
        while state.recovering && !state.closed {
            let (guard, timed_out) = self.changed.wait_timeout(state, timeout);
            state = guard;
            // A timed-out wait consumed the whole budget (see
            // Latch::wait_timeout for why this avoids re-reading the
            // clock and keeps the model checker's timeouts schedulable).
            if timed_out && state.recovering && !state.closed {
                return GateWait::TimedOut;
            }
        }
        if state.closed {
            GateWait::Closed
        } else {
            GateWait::Healthy
        }
    }

    /// Closes the gate: future
    /// [`begin_recovery`](RecoveryGate::begin_recovery) calls return
    /// `None` and every current and future waiter resolves with
    /// [`GateWait::Closed`]. An in-flight recovery may still
    /// [`finish`](RecoveryGate::finish); closing only stops *new* cycles,
    /// so shutdown-during-recovery drains instead of deadlocking.
    /// Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock_unpoisoned();
        state.closed = true;
        self.changed.notify_all();
    }

    /// Whether a recovery is currently in flight.
    pub fn is_recovering(&self) -> bool {
        self.state.lock_unpoisoned().recovering
    }

    /// Whether the gate has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock_unpoisoned().closed
    }

    /// Completed recovery cycles so far.
    pub fn generation(&self) -> u64 {
        self.state.lock_unpoisoned().generation
    }
}

/// A persistent pool of worker threads executing scoped task batches.
///
/// A pool with `workers` lanes spawns `workers - 1` background threads; the
/// thread submitting a batch is the final lane and always executes the last
/// task of the batch itself. A single-lane pool therefore spawns nothing and
/// runs every batch inline — the graceful single-core fallback.
///
/// Most code should use the process-wide [`Pool::global`]; explicit pools
/// exist for tests and tools that need an isolated worker count.
pub struct Pool {
    /// The job feed every worker blocks on; `None` for inline 1-lane pools.
    /// Closing the queue (see [`SyncQueue::close`]) is the shutdown signal.
    shared: Option<Arc<SyncQueue<Job>>>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .finish()
    }
}

static GLOBAL_POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The process-wide pool, started lazily on first use.
    ///
    /// The worker count comes from [`worker_count_from_env`] applied to the
    /// `GCOD_WORKERS` environment variable, read once at first access.
    pub fn global() -> &'static Pool {
        GLOBAL_POOL.get_or_init(Pool::from_env)
    }

    /// A pool sized by the `GCOD_WORKERS` environment variable (see
    /// [`worker_count_from_env`]).
    pub fn from_env() -> Pool {
        Pool::new(worker_count_from_env(
            std::env::var("GCOD_WORKERS").ok().as_deref(),
        ))
    }

    /// A pool with exactly `workers` lanes (clamped to at least 1).
    ///
    /// Spawns `workers - 1` background threads; a 1-lane pool spawns none.
    /// Dropping a non-global pool shuts its workers down and joins them.
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        if workers == 1 {
            return Pool {
                shared: None,
                workers: 1,
                handles: Vec::new(),
            };
        }
        let shared = Arc::new(SyncQueue::unbounded());
        let handles = (0..workers - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::spawn_named(&format!("gcod-worker-{i}"), move || {
                    worker_loop(&shared)
                })
            })
            .collect();
        Pool {
            shared: Some(shared),
            workers,
            handles,
        }
    }

    /// Number of parallel lanes (background threads + the submitting
    /// thread). Always at least 1.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Resolves a caller-requested lane count: 0 selects the pool's own lane
    /// count, anything else is honoured as-is.
    pub fn effective_workers(&self, requested: usize) -> usize {
        if requested == 0 {
            self.workers
        } else {
            requested
        }
    }

    /// Executes a batch of tasks and returns once **all** of them have
    /// completed (an in-order join: the call observes every task finished,
    /// exactly as if they had been joined in submission order).
    ///
    /// Tasks may borrow caller data: the batch is fully joined before `run`
    /// returns **or unwinds** — a panic in any task (including the one the
    /// submitting thread runs itself) is caught, the join completes, and
    /// only then does the panic propagate. Batches of one task, calls on a
    /// single-lane pool, and calls issued from inside a pool worker all run
    /// inline in submission order. While its batch finishes, the submitting
    /// thread keeps draining queued jobs, so batches larger than the lane
    /// count never leave it idle.
    ///
    /// # Panics
    ///
    /// Re-raises the first panicking task's original payload after the join
    /// (the panic does not kill pool workers — they survive and keep
    /// serving later batches).
    pub fn run<F>(&self, mut tasks: Vec<F>)
    where
        F: FnOnce() + Send,
    {
        if tasks.is_empty() {
            return;
        }
        let run_inline =
            self.shared.is_none() || tasks.len() == 1 || IN_POOL_WORKER.with(Cell::get);
        if run_inline {
            for task in tasks {
                task();
            }
            return;
        }
        let shared = self.shared.as_ref().expect("checked above");
        // The submitting thread is a lane too: it executes the batch's last
        // task itself while the workers drain the rest.
        let last = tasks.pop().expect("batch is non-empty");
        let latch = Arc::new(Latch::new(tasks.len()));
        let jobs: Vec<Job> = tasks
            .into_iter()
            .map(|task| {
                let latch = Arc::clone(&latch);
                // The job itself catches its panic and parks the payload in
                // the latch so the submitting thread can re-raise the real
                // error (message, location) instead of a generic one; the
                // latch is decremented on every path.
                let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        latch.record_panic(payload);
                    }
                    latch.complete_one();
                });
                // SAFETY: `run` always reaches `latch.wait()` below — the
                // submitter-lane task runs under `catch_unwind`, so even its
                // panic cannot unwind past the join — and the job catches
                // its own panic before counting the latch down, so a
                // panicking job still counts down. Every borrow captured by
                // the job therefore strictly outlives its execution. Only
                // the lifetime is erased; the type is otherwise identical.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
            })
            .collect();
        // The queue is only ever closed by `Drop`, which cannot race a live
        // `run` call (it takes `&mut self`), so the batch push cannot fail.
        shared
            .push_many(jobs)
            .unwrap_or_else(|_| unreachable!("pool queue closed while running"));
        // Deferring the submitter task's panic until after the join is what
        // keeps the lifetime erasure above sound: unwinding here while
        // queued jobs still borrow caller data would be a use-after-free.
        let last_result = catch_unwind(AssertUnwindSafe(last));
        // Help drain the queue while the batch finishes: with more ranges
        // than lanes, the submitting thread keeps executing queued jobs
        // (its own batch's or a concurrent caller's) instead of sleeping on
        // the latch while a lane sits idle.
        while !latch.is_done() {
            match shared.try_pop() {
                Some(job) => {
                    let _ = catch_unwind(AssertUnwindSafe(job));
                }
                None => break,
            }
        }
        latch.wait();
        if let Err(payload) = last_result {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = latch.take_panic() {
            std::panic::resume_unwind(payload);
        }
    }

    /// The deterministic data-parallel primitive: splits `items` indices
    /// into contiguous ranges balanced by `cost` (see [`split_by_cost`]),
    /// splits `out` into the matching disjoint chunks (`out.len()` must be a
    /// multiple of `items`), and runs `body(range, chunk)` for each pair,
    /// joining the whole batch before returning.
    ///
    /// `workers` bounds the number of ranges: 0 uses the pool's lane count,
    /// an explicit value is honoured even beyond it (extra ranges queue and
    /// run as lanes free up). Because the split depends only on `cost` and
    /// the resolved lane count never changes *how* an element is computed —
    /// each output element lives in exactly one chunk — any `body` that
    /// fills its chunk in a fixed per-element order is bit-deterministic
    /// across worker counts.
    ///
    /// # Panics
    ///
    /// Panics when `items > 0` and `out.len()` is not a multiple of `items`,
    /// or when a `body` invocation panics.
    pub fn parallel_for_ranges<T, C, F>(
        &self,
        items: usize,
        out: &mut [T],
        workers: usize,
        cost: C,
        body: F,
    ) where
        T: Send,
        C: Fn(usize) -> u64,
        F: Fn(Range<usize>, &mut [T]) + Send + Sync,
    {
        if items == 0 {
            return;
        }
        assert!(
            out.len().is_multiple_of(items),
            "parallel_for_ranges: output length {} is not a multiple of {items} items",
            out.len()
        );
        let unit = out.len() / items;
        let lanes = self.effective_workers(workers).min(items);
        let ranges = split_by_cost(items, lanes, cost);
        let body = &body;
        let mut rest = out;
        let mut tasks = Vec::with_capacity(ranges.len());
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len() * unit);
            rest = tail;
            tasks.push(move || body(range, chunk));
        }
        self.run(tasks);
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.close();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &SyncQueue<Job>) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    // `pop` blocks until a job arrives and returns `None` only once the
    // queue is closed (pool drop) and fully drained.
    while let Some(job) = shared.pop() {
        // A panicking task must not kill the worker: the completion guard
        // inside the job records the panic for the submitter, and the
        // worker moves on to the next batch.
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

/// Resolves a `GCOD_WORKERS`-style setting to a worker-lane count.
///
/// Unset, empty, `0`, `auto` and unparsable values all select
/// [`std::thread::available_parallelism`] (1 when unavailable); an explicit
/// positive integer is honoured as-is.
pub fn worker_count_from_env(value: Option<&str>) -> usize {
    let auto = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match value.map(str::trim) {
        None | Some("") | Some("0") | Some("auto") => auto(),
        Some(raw) => raw
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(auto),
    }
}

/// Splits `[0, len)` into at most `parts` non-empty contiguous ranges with
/// roughly equal total `cost`, covering the whole interval in order.
///
/// The split is a pure function of `len`, `parts` and `cost` — the same
/// inputs always produce the same ranges, which is what makes the pool's
/// data-parallel calls deterministic. `cost(i)` is the relative weight of
/// index `i` (e.g. a CSR row's non-zero count); a uniform `|_| 1` yields
/// (nearly) equal-length ranges.
pub fn split_by_cost<C>(len: usize, parts: usize, cost: C) -> Vec<Range<usize>>
where
    C: Fn(usize) -> u64,
{
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    if parts == 1 {
        return std::iter::once(0..len).collect();
    }
    let total: u64 = (0..len).map(&cost).sum();
    let per_part = total / parts as u64 + 1;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    // Cost of [0, end) maintained incrementally across the walk.
    let mut prefix = 0u64;
    for p in 0..parts {
        if start >= len {
            break;
        }
        // Everything after this range still needs at least one index per
        // remaining part.
        let remaining = parts - p - 1;
        let max_end = len - remaining.min(len - start - 1);
        let target = ((p as u64 + 1) * per_part).min(total);
        let mut end = start + 1;
        prefix += cost(start);
        while end < max_end && prefix < target {
            prefix += cost(end);
            end += 1;
        }
        if remaining == 0 {
            end = len;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread::ThreadId;

    fn assert_ranges_partition(ranges: &[Range<usize>], len: usize, parts: usize) {
        assert!(!ranges.is_empty());
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, len);
        assert!(ranges.len() <= parts);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "ranges must be contiguous");
        }
        for range in ranges {
            assert!(!range.is_empty(), "ranges must be non-empty");
        }
    }

    #[test]
    fn split_covers_and_respects_part_count() {
        for len in [1usize, 2, 7, 97, 256] {
            for parts in [1usize, 2, 3, 8, 300] {
                let ranges = split_by_cost(len, parts, |_| 1);
                assert_ranges_partition(&ranges, len, parts.clamp(1, len));
            }
        }
        assert!(split_by_cost(0, 4, |_| 1).is_empty());
    }

    #[test]
    fn split_balances_skewed_costs() {
        // One huge index at the front: it should get its own range.
        let cost = |i: usize| if i == 0 { 1_000 } else { 1 };
        let ranges = split_by_cost(100, 4, cost);
        assert_ranges_partition(&ranges, 100, 4);
        assert_eq!(ranges[0], 0..1, "the heavy index dominates its range");
    }

    #[test]
    fn split_is_deterministic() {
        let a = split_by_cost(250, 7, |i| (i % 13) as u64);
        let b = split_by_cost(250, 7, |i| (i % 13) as u64);
        assert_eq!(a, b);
    }

    #[test]
    fn run_executes_every_task() {
        for workers in [1usize, 2, 4] {
            let pool = Pool::new(workers);
            let counter = AtomicUsize::new(0);
            let tasks: Vec<_> = (0..64)
                .map(|_| {
                    || {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect();
            pool.run(tasks);
            assert_eq!(counter.load(Ordering::SeqCst), 64, "{workers} workers");
        }
    }

    #[test]
    fn workers_are_reused_across_calls() {
        // ThreadIds are never reused within a process, so per-call spawning
        // would accumulate fresh ids batch after batch. A persistent 3-lane
        // pool can only ever show 3 distinct ids (2 workers + the caller).
        let pool = Pool::new(3);
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        for _ in 0..8 {
            let tasks: Vec<_> = (0..16)
                .map(|_| {
                    || {
                        seen.lock_unpoisoned().insert(std::thread::current().id());
                        // Give the other lanes a chance to pick up work too.
                        std::thread::yield_now();
                    }
                })
                .collect();
            pool.run(tasks);
        }
        let distinct = seen.lock_unpoisoned().len();
        assert!(
            distinct <= 3,
            "a persistent pool must reuse its workers, saw {distinct} distinct threads"
        );
    }

    #[test]
    fn single_lane_pool_runs_inline_in_order() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers(), 1);
        let order = Mutex::new(Vec::new());
        let caller = std::thread::current().id();
        let ids = Mutex::new(HashSet::new());
        let tasks: Vec<_> = (0..10)
            .map(|i| {
                let order = &order;
                let ids = &ids;
                move || {
                    order.lock_unpoisoned().push(i);
                    ids.lock_unpoisoned().insert(std::thread::current().id());
                }
            })
            .collect();
        pool.run(tasks);
        assert_eq!(*order.lock_unpoisoned(), (0..10).collect::<Vec<_>>());
        assert_eq!(
            *ids.lock_unpoisoned(),
            HashSet::from([caller]),
            "a 1-lane pool must never leave the calling thread"
        );
    }

    #[test]
    fn parallel_for_ranges_fills_disjoint_chunks() {
        for workers in [1usize, 2, 5] {
            let pool = Pool::new(workers);
            let mut out = vec![0usize; 30];
            // Two output slots per item, skewed cost.
            pool.parallel_for_ranges(
                15,
                &mut out,
                0,
                |i| 1 + i as u64,
                |range, chunk| {
                    for (pair, i) in chunk.chunks_exact_mut(2).zip(range) {
                        pair[0] = i;
                        pair[1] = i * i;
                    }
                },
            );
            let expected: Vec<usize> = (0..15).flat_map(|i| [i, i * i]).collect();
            assert_eq!(out, expected, "{workers} workers");
        }
    }

    #[test]
    fn parallel_for_ranges_honours_explicit_worker_count() {
        let pool = Pool::new(1);
        let mut out = vec![0u8; 8];
        // An explicit worker count beyond the pool's lanes still covers
        // everything (ranges queue and run inline on the single lane).
        pool.parallel_for_ranges(
            8,
            &mut out,
            4,
            |_| 1,
            |range, chunk| {
                for (slot, i) in chunk.iter_mut().zip(range) {
                    *slot = i as u8 + 1;
                }
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn parallel_for_ranges_rejects_misaligned_output() {
        Pool::new(1).parallel_for_ranges(3, &mut [0u8; 4], 0, |_| 1, |_, _| {});
    }

    #[test]
    fn submitter_lane_panic_still_joins_queued_jobs_first() {
        // The soundness of the lifetime erasure in `run` depends on every
        // queued job finishing before the call unwinds — even when the task
        // the submitting thread executes itself is the one that panics.
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let mut tasks: Vec<Box<dyn FnOnce() + Send>> = (0..7)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        // The last task is the one `run` executes on the submitting lane.
        tasks.push(Box::new(|| panic!("submitter boom")));
        let result = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        assert!(result.is_err(), "the submitter panic must propagate");
        assert_eq!(
            counter.load(Ordering::SeqCst),
            7,
            "every queued job must have completed before `run` unwound"
        );
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let tasks: Vec<Box<dyn FnOnce() + Send>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("boom")),
            Box::new(|| {}),
            Box::new(|| {}),
        ];
        let result = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        let payload = result.expect_err("the panic must reach the submitter");
        assert_eq!(
            payload.downcast_ref::<&str>(),
            Some(&"boom"),
            "the original panic payload must be preserved, not a generic message"
        );
        // The pool keeps serving batches after a task panicked.
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_run_from_a_pooled_task_does_not_deadlock() {
        let pool = Pool::new(2);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                let counter = &counter;
                move || {
                    // A nested batch issued from whatever lane runs this
                    // task (worker or caller) must complete inline.
                    let inner: Vec<_> = (0..4)
                        .map(|_| {
                            || {
                                counter.fetch_add(1, Ordering::SeqCst);
                            }
                        })
                        .collect();
                    Pool::global().run(inner);
                }
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn worker_count_from_env_parses_all_forms() {
        assert!(worker_count_from_env(None) >= 1);
        assert_eq!(worker_count_from_env(Some("3")), 3);
        assert_eq!(worker_count_from_env(Some(" 12 ")), 12);
        // Auto selectors and garbage all fall back to the hardware count.
        let auto = worker_count_from_env(None);
        for raw in ["", "0", "auto", "-4", "lots", "1.5"] {
            assert_eq!(worker_count_from_env(Some(raw)), auto, "{raw:?}");
        }
    }

    #[test]
    fn gcod_workers_env_is_honoured() {
        // `from_env` reads GCOD_WORKERS at construction time; the global
        // pool does the same at first access.
        std::env::set_var("GCOD_WORKERS", "5");
        let pool = Pool::from_env();
        assert_eq!(pool.workers(), 5);
        std::env::remove_var("GCOD_WORKERS");
    }

    #[test]
    fn latch_counts_down_and_times_out() {
        let latch = Latch::new(2);
        assert!(!latch.is_done());
        assert!(!latch.wait_timeout(std::time::Duration::from_millis(5)));
        latch.complete_one();
        latch.complete_one();
        assert!(latch.is_done());
        assert!(latch.wait_timeout(std::time::Duration::from_millis(5)));
        latch.wait(); // returns immediately once done
                      // Cross-thread: a waiter wakes when another thread counts down.
        let shared = Arc::new(Latch::new(1));
        let waiter = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || shared.wait())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        shared.complete_one();
        waiter.join().unwrap();
    }

    #[test]
    fn recovery_gate_admits_exactly_one_recoverer() {
        let gate = RecoveryGate::new();
        assert_eq!(
            gate.await_healthy(std::time::Duration::from_millis(1)),
            GateWait::Healthy
        );
        let token = gate.begin_recovery().expect("first claim");
        assert!(gate.is_recovering());
        assert!(gate.begin_recovery().is_none(), "no double respawn");
        assert_eq!(
            gate.await_healthy(std::time::Duration::from_millis(5)),
            GateWait::TimedOut
        );
        gate.finish(token);
        assert!(!gate.is_recovering());
        assert_eq!(gate.generation(), 1);
        assert_eq!(
            gate.await_healthy(std::time::Duration::from_millis(1)),
            GateWait::Healthy
        );
        // A fresh cycle can begin after the previous one finished.
        let token = gate.begin_recovery().expect("second cycle");
        gate.finish(token);
        assert_eq!(gate.generation(), 2);
    }

    #[test]
    fn recovery_gate_close_wakes_waiters_and_blocks_new_cycles() {
        let gate = Arc::new(RecoveryGate::new());
        let token = gate.begin_recovery().expect("claim");
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.await_healthy(std::time::Duration::from_secs(30)))
        };
        // Shutdown races the in-flight recovery: the waiter must resolve
        // with Closed, not block for the full 30 s.
        gate.close();
        assert_eq!(waiter.join().expect("join"), GateWait::Closed);
        assert!(gate.is_closed());
        assert!(gate.begin_recovery().is_none(), "closed gate admits no one");
        // The in-flight recovery still drains cleanly.
        gate.finish(token);
        assert!(!gate.is_recovering());
        gate.close(); // idempotent
    }

    #[test]
    fn recovery_gate_finish_wakes_blocked_waiter() {
        let gate = Arc::new(RecoveryGate::new());
        let token = gate.begin_recovery().expect("claim");
        let waiter = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || gate.await_healthy(std::time::Duration::from_secs(30)))
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        gate.finish(token);
        assert_eq!(waiter.join().expect("join"), GateWait::Healthy);
    }

    #[test]
    fn effective_workers_resolves_zero_to_pool_lanes() {
        let pool = Pool::new(4);
        assert_eq!(pool.effective_workers(0), 4);
        assert_eq!(pool.effective_workers(2), 2);
        assert_eq!(pool.effective_workers(9), 9);
    }
}
