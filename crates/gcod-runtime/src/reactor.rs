//! Event-driven wakeup core: a single-consumer reactor with sticky event
//! bits, plus the one-shot [`Event`] completion cell built on it.
//!
//! The design mirrors an `eventfd`/epoll pair reduced to its essentials. A
//! [`Reactor`] owns a 64-bit mask of *sticky* pending events: raising a bit
//! that is already set is idempotent, and a raise that happens before the
//! consumer blocks is observed by the very next [`Reactor::wait`] — the
//! classic lost-wakeup window between "check for work" and "go to sleep"
//! cannot exist, because the bit outlives the notification. Producers hold
//! cheap [`Waker`] handles (a reactor reference plus a fixed mask) and call
//! [`Waker::wake`]; the consumer loops on [`Reactor::wait`], which blocks
//! until at least one bit is pending or the reactor is closed, then returns
//! and clears the whole mask in one step.
//!
//! Events are *level-style hints, not queued messages*: consumers must treat
//! a wakeup as "go re-examine the real state" (a queue, a flag) rather than
//! as a one-to-one work token. That is what makes the mask coalescible —
//! a thousand raises between two waits collapse into one wakeup — and it is
//! the invariant the model suite checks: no schedule of raise/wait/close may
//! strand the consumer or drop the *fact* that something happened.
//!
//! Everything here is built on [`crate::sync`], so `--features model` (or
//! `--cfg gcod_model`) explores every bounded interleaving of the wakeup
//! protocol and reports a lost wakeup as a deadlock.

use std::sync::Arc;
use std::time::Duration;

use crate::sync::{Condvar, Mutex};

/// Sticky-bit event multiplexer: many producers raise bits, one (or more)
/// consumers wait for any bit. Cheaply clonable — clones share state.
///
/// See the [module docs](self) for the wakeup protocol and its guarantees.
#[derive(Clone, Debug, Default)]
pub struct Reactor {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    state: Mutex<State>,
    changed: Condvar,
}

#[derive(Debug, Default)]
struct State {
    pending: u64,
    closed: bool,
}

/// What one [`Reactor::wait`] observed: the pending bits taken (cleared) by
/// this wakeup, and whether the reactor has been closed.
///
/// `events` and `closed` are not exclusive — a close racing a raise can
/// deliver both at once, and consumers draining on shutdown rely on seeing
/// the final events alongside the close.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wake {
    /// The event bits this wakeup consumed (zero only on close or timeout).
    pub events: u64,
    /// Whether [`Reactor::close`] has been called.
    pub closed: bool,
    /// Whether a [`Reactor::wait_timeout`] gave up before anything arrived.
    pub timed_out: bool,
}

impl Wake {
    /// Whether any bit of `mask` was part of this wakeup.
    #[must_use]
    pub fn has(&self, mask: u64) -> bool {
        self.events & mask != 0
    }
}

impl Reactor {
    /// A fresh reactor with no pending events.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A producer-side handle that raises `events` on this reactor.
    #[must_use]
    pub fn waker(&self, events: u64) -> Waker {
        Waker {
            inner: Arc::clone(&self.inner),
            events,
        }
    }

    /// ORs `events` into the pending mask and wakes every waiter.
    ///
    /// Raising is sticky: if no consumer is blocked right now, the next
    /// [`Reactor::wait`] still observes the bits. `notify_all` (never
    /// `notify_one`) because heterogeneous waiter classes share the one
    /// condvar — a targeted notify could wake a waiter the bits don't
    /// concern while the one they do concern sleeps on.
    pub fn raise(&self, events: u64) {
        let mut state = self.inner.state.lock_unpoisoned();
        state.pending |= events;
        drop(state);
        self.inner.changed.notify_all();
    }

    /// Closes the reactor: every current and future wait returns with
    /// `closed == true` (after delivering any still-pending bits).
    /// Idempotent.
    pub fn close(&self) {
        let mut state = self.inner.state.lock_unpoisoned();
        state.closed = true;
        drop(state);
        self.inner.changed.notify_all();
    }

    /// Whether [`Reactor::close`] has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock_unpoisoned().closed
    }

    /// Blocks until at least one event is pending or the reactor is closed,
    /// then takes (clears) the whole pending mask.
    ///
    /// The wait is untimed by design: the sticky mask makes polling
    /// unnecessary, and under the model scheduler an untimed wait turns any
    /// lost wakeup into a reported deadlock instead of a silent spin.
    #[must_use]
    pub fn wait(&self) -> Wake {
        let mut state = self.inner.state.lock_unpoisoned();
        while state.pending == 0 && !state.closed {
            state = self.inner.changed.wait(state);
        }
        Wake {
            events: std::mem::take(&mut state.pending),
            closed: state.closed,
            timed_out: false,
        }
    }

    /// Like [`Reactor::wait`], but gives up after roughly `timeout`, in
    /// which case `timed_out` is set and no bits are consumed.
    ///
    /// Spurious wakeups restart the budget (the wait loops on the full
    /// `timeout` again), so the bound is best-effort — the same contract as
    /// [`crate::RecoveryGate`]'s timed waits, chosen because it needs no
    /// wall-clock read and therefore stays explorable by the model
    /// scheduler, where timeouts resolve nondeterministically.
    #[must_use]
    pub fn wait_timeout(&self, timeout: Duration) -> Wake {
        let mut state = self.inner.state.lock_unpoisoned();
        while state.pending == 0 && !state.closed {
            let (guard, timed_out) = self.inner.changed.wait_timeout(state, timeout);
            state = guard;
            if timed_out && state.pending == 0 && !state.closed {
                return Wake {
                    events: 0,
                    closed: false,
                    timed_out: true,
                };
            }
        }
        Wake {
            events: std::mem::take(&mut state.pending),
            closed: state.closed,
            timed_out: false,
        }
    }

    /// Takes whatever is pending right now without blocking.
    #[must_use]
    pub fn try_wait(&self) -> Wake {
        let mut state = self.inner.state.lock_unpoisoned();
        Wake {
            events: std::mem::take(&mut state.pending),
            closed: state.closed,
            timed_out: false,
        }
    }
}

/// A producer-side handle bound to one reactor and one event mask.
///
/// Cheap to clone and `Send`/`Sync`; producers keep one per event source
/// (submission arrived, control changed, worker recovered, …).
#[derive(Clone, Debug)]
pub struct Waker {
    inner: Arc<Inner>,
    events: u64,
}

impl Waker {
    /// Raises this waker's event bits on its reactor (sticky; see
    /// [`Reactor::raise`]).
    pub fn wake(&self) {
        let mut state = self.inner.state.lock_unpoisoned();
        state.pending |= self.events;
        drop(state);
        self.inner.changed.notify_all();
    }

    /// The event mask this waker raises.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }
}

/// A one-shot, sticky completion cell: `set` once, observable forever.
///
/// This is the reactor-native replacement for counting down a
/// [`crate::Latch`] when the count is always one: producers call
/// [`Event::set`] exactly once (further calls are no-ops), consumers may
/// poll [`Event::is_set`] or block in [`Event::wait`]/[`Event::wait_timeout`]
/// — all through `&self`, any number of times, from any thread. A `set`
/// that precedes the wait is observed immediately; the set-then-notify
/// sequence runs under one lock, so there is no window for a lost wakeup.
#[derive(Debug, Default)]
pub struct Event {
    set: Mutex<bool>,
    changed: Condvar,
}

impl Event {
    /// A fresh, unset event.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the event complete and wakes every waiter. Idempotent.
    pub fn set(&self) {
        let mut set = self.set.lock_unpoisoned();
        *set = true;
        drop(set);
        self.changed.notify_all();
    }

    /// Whether [`Event::set`] has happened.
    #[must_use]
    pub fn is_set(&self) -> bool {
        *self.set.lock_unpoisoned()
    }

    /// Blocks until the event is set (returns immediately if it already is).
    pub fn wait(&self) {
        let mut set = self.set.lock_unpoisoned();
        while !*set {
            set = self.changed.wait(set);
        }
    }

    /// Blocks until the event is set or roughly `timeout` elapsed; `true`
    /// when set. Spurious wakeups restart the budget, like
    /// [`Reactor::wait_timeout`].
    #[must_use]
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut set = self.set.lock_unpoisoned();
        while !*set {
            let (guard, timed_out) = self.changed.wait_timeout(set, timeout);
            set = guard;
            if timed_out && !*set {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::thread;

    const EV_A: u64 = 1 << 0;
    const EV_B: u64 = 1 << 1;

    #[test]
    fn raise_before_wait_is_never_lost() {
        let reactor = Reactor::new();
        reactor.raise(EV_A);
        let wake = reactor.wait();
        assert!(wake.has(EV_A));
        assert!(!wake.closed);
        assert!(!wake.timed_out);
        // The mask was cleared by the wait.
        let again = reactor.try_wait();
        assert_eq!(again.events, 0);
    }

    #[test]
    fn raises_coalesce_into_one_wake() {
        let reactor = Reactor::new();
        reactor.raise(EV_A);
        reactor.raise(EV_A);
        reactor.raise(EV_B);
        let wake = reactor.wait();
        assert_eq!(wake.events, EV_A | EV_B);
    }

    #[test]
    fn wakers_raise_their_mask_across_threads() {
        let reactor = Reactor::new();
        let waker = reactor.waker(EV_B);
        assert_eq!(waker.events(), EV_B);
        let producer = thread::spawn_named("waker", move || waker.wake());
        let wake = reactor.wait();
        assert!(wake.has(EV_B));
        producer.join().expect("producer ran");
    }

    #[test]
    fn close_wakes_and_reports_closed() {
        let reactor = Reactor::new();
        let consumer = {
            let reactor = reactor.clone();
            thread::spawn_named("consumer", move || reactor.wait())
        };
        reactor.close();
        let wake = consumer.join().expect("consumer ran");
        assert!(wake.closed);
        assert!(reactor.is_closed());
        // Closed reactors still deliver bits raised afterwards.
        reactor.raise(EV_A);
        let wake = reactor.wait();
        assert!(wake.closed && wake.has(EV_A));
    }

    #[test]
    fn wait_timeout_gives_up_without_consuming() {
        let reactor = Reactor::new();
        let wake = reactor.wait_timeout(Duration::from_millis(1));
        assert!(wake.timed_out);
        assert_eq!(wake.events, 0);
        reactor.raise(EV_A);
        let wake = reactor.wait_timeout(Duration::from_secs(60));
        assert!(!wake.timed_out);
        assert!(wake.has(EV_A));
    }

    #[test]
    fn event_is_sticky_and_idempotent() {
        let event = Event::new();
        assert!(!event.is_set());
        assert!(!event.wait_timeout(Duration::from_millis(1)));
        event.set();
        event.set();
        assert!(event.is_set());
        event.wait(); // returns immediately once set
        assert!(event.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn event_set_wakes_a_blocked_waiter() {
        let event = Arc::new(Event::new());
        let waiter = {
            let event = Arc::clone(&event);
            thread::spawn_named("waiter", move || event.wait())
        };
        event.set();
        waiter.join().expect("waiter ran");
        assert!(event.is_set());
    }
}
