//! A closeable multi-producer/multi-consumer queue with optional capacity.
//!
//! [`SyncQueue`] is the one queue primitive of the workspace: the worker
//! [`Pool`](crate::Pool) drains an unbounded instance for its job feed
//! (`close` is the pool's shutdown signal), and the `gcod-serve` front-end
//! uses a bounded instance as its request submission queue — `try_push`
//! returning [`PushError::Full`] is precisely the queue-full backpressure a
//! loaded server reports to its clients.
//!
//! The queue is deliberately condvar-based (no lock-free cleverness): every
//! consumer blocks on `not_empty`, every bounded producer on `not_full`, and
//! [`SyncQueue::close`] wakes both sides so nothing sleeps through shutdown.
//! Items already queued at close time remain poppable — consumers drain the
//! backlog and only then observe the closed state, which is what lets a
//! server shut down gracefully without dropping accepted work.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// Why a push was rejected; the item (or batch) is handed back untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError<P> {
    /// The queue is at capacity (bounded queues only). Retry later or treat
    /// as backpressure.
    Full(P),
    /// The queue was closed; no further items are accepted.
    Closed(P),
}

impl<P> PushError<P> {
    /// The rejected item (or batch), regardless of the reason.
    pub fn into_inner(self) -> P {
        match self {
            PushError::Full(p) | PushError::Closed(p) => p,
        }
    }

    /// Whether the rejection was capacity backpressure (as opposed to
    /// shutdown).
    pub fn is_full(&self) -> bool {
        matches!(self, PushError::Full(_))
    }
}

/// Outcome of a [`SyncQueue::pop_timeout`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PopTimeout<T> {
    /// An item was popped.
    Item(T),
    /// The timeout elapsed with the queue open but empty.
    TimedOut,
    /// The queue is closed and fully drained; no item will ever arrive.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A blocking MPMC queue with optional capacity and close-to-shut-down
/// semantics (see the [module docs](self)).
pub struct SyncQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
}

impl<T> std::fmt::Debug for SyncQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock_unpoisoned();
        f.debug_struct("SyncQueue")
            .field("len", &inner.items.len())
            .field("capacity", &self.capacity)
            .field("closed", &inner.closed)
            .finish()
    }
}

impl<T> Default for SyncQueue<T> {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl<T> SyncQueue<T> {
    /// A queue without a capacity limit: pushes only fail after
    /// [`close`](SyncQueue::close).
    pub fn unbounded() -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: None,
        }
    }

    /// A queue holding at most `capacity` items (clamped to at least 1);
    /// pushes beyond it report [`PushError::Full`].
    pub fn bounded(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity.max(1)),
            ..Self::unbounded()
        }
    }

    /// The capacity limit, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock_unpoisoned().items.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`close`](SyncQueue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock_unpoisoned().closed
    }

    /// Closes the queue: every later push is rejected with
    /// [`PushError::Closed`], already-queued items stay poppable, and all
    /// blocked producers and consumers are woken. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock_unpoisoned();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn has_space(&self, inner: &Inner<T>, incoming: usize) -> bool {
        self.capacity
            .map(|cap| inner.items.len() + incoming <= cap)
            .unwrap_or(true)
    }

    /// Pushes without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`close`](SyncQueue::close),
    /// [`PushError::Full`] when a bounded queue is at capacity; the item is
    /// returned inside the error either way.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock_unpoisoned();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if !self.has_space(&inner, 1) {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pushes, blocking while a bounded queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] when the queue is (or becomes, while waiting)
    /// closed; the item is returned inside the error.
    pub fn push_blocking(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock_unpoisoned();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if self.has_space(&inner, 1) {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner);
        }
    }

    /// Pushes a whole batch atomically (all items become visible to
    /// consumers together) and wakes every blocked consumer.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after close, [`PushError::Full`] when a bounded
    /// queue cannot absorb the entire batch; the untouched batch is returned
    /// inside the error — partial pushes never happen.
    pub fn push_many(&self, items: Vec<T>) -> Result<(), PushError<Vec<T>>> {
        if items.is_empty() {
            return Ok(());
        }
        let mut inner = self.inner.lock_unpoisoned();
        if inner.closed {
            return Err(PushError::Closed(items));
        }
        if !self.has_space(&inner, items.len()) {
            return Err(PushError::Full(items));
        }
        inner.items.extend(items);
        drop(inner);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Pops without blocking; `None` when the queue is currently empty
    /// (whether or not it is closed).
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock_unpoisoned();
        let item = inner.items.pop_front();
        if item.is_some() {
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Pops, blocking until an item arrives; `None` once the queue is closed
    /// **and** fully drained (the consumer's signal to exit).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock_unpoisoned();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner);
        }
    }

    /// Pops, blocking at most `timeout`; distinguishes an elapsed timeout
    /// from the closed-and-drained terminal state so polling consumers can
    /// interleave queue draining with control-flag checks.
    pub fn pop_timeout(&self, timeout: Duration) -> PopTimeout<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock_unpoisoned();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return PopTimeout::Item(item);
            }
            if inner.closed {
                return PopTimeout::Closed;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return PopTimeout::TimedOut;
            }
            let (guard, timed_out) = self.not_empty.wait_timeout(inner, deadline - now);
            inner = guard;
            if timed_out && inner.items.is_empty() && !inner.closed {
                return PopTimeout::TimedOut;
            }
        }
    }

    /// Removes and returns everything currently queued, waking blocked
    /// producers.
    pub fn drain(&self) -> Vec<T> {
        let mut inner = self.inner.lock_unpoisoned();
        let items: Vec<T> = inner.items.drain(..).collect();
        drop(inner);
        self.not_full.notify_all();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_len() {
        let q = SyncQueue::unbounded();
        assert!(q.is_empty());
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        let popped: Vec<i32> = std::iter::from_fn(|| q.try_pop()).collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bounded_queue_reports_full_and_returns_the_item() {
        let q = SyncQueue::bounded(2);
        assert_eq!(q.capacity(), Some(2));
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        let err = q.try_push("c").unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), "c");
        // Popping frees a slot.
        assert_eq!(q.try_pop(), Some("a"));
        q.try_push("c").unwrap();
    }

    #[test]
    fn close_rejects_pushes_but_drains_backlog() {
        let q = SyncQueue::unbounded();
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        // Closed and drained: pop returns None instead of blocking.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_many_is_all_or_nothing() {
        let q = SyncQueue::bounded(3);
        q.try_push(0).unwrap();
        let err = q.push_many(vec![1, 2, 3]).unwrap_err();
        assert_eq!(err, PushError::Full(vec![1, 2, 3]));
        assert_eq!(q.len(), 1, "a failed batch must push nothing");
        q.push_many(vec![1, 2]).unwrap();
        assert_eq!(q.len(), 3);
        q.close();
        assert_eq!(q.push_many(vec![9]), Err(PushError::Closed(vec![9])));
    }

    #[test]
    fn pop_blocks_until_an_item_arrives() {
        let q = Arc::new(SyncQueue::unbounded());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                q.try_push(42).unwrap();
            })
        };
        assert_eq!(q.pop(), Some(42));
        producer.join().unwrap();
    }

    #[test]
    fn push_blocking_waits_for_space() {
        let q = Arc::new(SyncQueue::bounded(1));
        q.try_push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn push_blocking_unblocks_on_close() {
        let q = Arc::new(SyncQueue::bounded(1));
        q.try_push(1).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push_blocking(2))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(PushError::Closed(2)));
    }

    #[test]
    fn pop_timeout_distinguishes_timeout_from_closed() {
        let q: SyncQueue<u8> = SyncQueue::unbounded();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            PopTimeout::TimedOut
        );
        q.try_push(7).unwrap();
        assert_eq!(
            q.pop_timeout(Duration::from_millis(10)),
            PopTimeout::Item(7)
        );
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), PopTimeout::Closed);
    }

    #[test]
    fn drain_empties_the_queue() {
        let q = SyncQueue::unbounded();
        q.push_many(vec![1, 2, 3]).unwrap();
        assert_eq!(q.drain(), vec![1, 2, 3]);
        assert!(q.is_empty());
        assert_eq!(q.drain(), Vec::<i32>::new());
    }

    #[test]
    fn many_producers_one_consumer() {
        let q = Arc::new(SyncQueue::bounded(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        q.push_blocking(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        let mut seen = Vec::new();
        while seen.len() < 100 {
            if let Some(v) = q.pop() {
                seen.push(v);
            }
        }
        for producer in producers {
            producer.join().unwrap();
        }
        seen.sort_unstable();
        let expected: Vec<i32> = (0..4)
            .flat_map(|p| (0..25).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(seen, expected);
    }
}
