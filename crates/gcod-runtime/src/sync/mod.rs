//! The synchronisation facade every concurrency primitive in the workspace
//! is built on: [`Mutex`], [`Condvar`], [`atomic`] integers and
//! [`thread::spawn_named`].
//!
//! # Why a facade
//!
//! `SyncQueue`, `Latch`, the `Pool` job feed and the `gcod-serve` dispatcher
//! all rest on hand-rolled blocking primitives, and every correctness claim
//! they make (no lost wakeups, drain-on-shutdown, panic safety) is an
//! *interleaving* property that example-based tests cannot explore. This
//! module gives those primitives a single seam:
//!
//! * **Normally** (no `model` feature, no `--cfg gcod_model`) every type
//!   here compiles to a thin zero-cost wrapper over its [`std::sync`]
//!   counterpart — same types, same waits, same wakeups, bit-identical
//!   behaviour.
//! * **Under `cfg(gcod_model)` or the `model` cargo feature** the same API
//!   compiles to instrumented versions driven by the deterministic DFS
//!   scheduler in `model`: every lock acquisition, condvar wait/notify,
//!   atomic access and spawn becomes a scheduling decision the
//!   `model::check` explorer enumerates exhaustively (with a bounded
//!   number of preemptions), so small multi-threaded tests can *prove*
//!   properties like "`close()` wakes every blocked consumer" instead of
//!   hoping the OS scheduler stumbles onto the bad interleaving.
//!
//! Even in an instrumented build, code that runs outside a `model::check`
//! execution falls back to plain `std` behaviour — the scheduler only
//! controls threads it spawned itself, so a `--features model` build still
//! passes the ordinary test suite.
//!
//! # Lock poisoning policy
//!
//! The facade exposes [`Mutex::lock_unpoisoned`] instead of `lock`: lock
//! poisoning is *recovered from*, not propagated. Every critical section in
//! the workspace's primitives restores its invariants before returning (the
//! worker pool additionally catches task panics before they can unwind
//! through a held lock), so a poisoned lock carries no extra information —
//! propagating it only converts one thread's failure into a process-wide
//! panic cascade. The name makes the policy greppable, and the `gcod-check`
//! lint pass enforces that raw `.unwrap()` never reappears on a lock.
//!
//! # Example
//!
//! ```
//! use gcod_runtime::sync::{Condvar, Mutex};
//!
//! let slot = Mutex::new(None);
//! let ready = Condvar::new();
//! *slot.lock_unpoisoned() = Some(7);
//! ready.notify_all();
//! let mut guard = slot.lock_unpoisoned();
//! while guard.is_none() {
//!     guard = ready.wait(guard); // condvar waits always sit in a loop
//! }
//! assert_eq!(*guard, Some(7));
//! ```

#[cfg(any(feature = "model", gcod_model))]
pub mod model;

#[cfg(not(any(feature = "model", gcod_model)))]
mod imp {
    //! The production path: zero-cost delegation to [`std::sync`].

    use std::sync::PoisonError;
    use std::time::Duration;

    /// The facade's guard type; on the production path this is exactly
    /// [`std::sync::MutexGuard`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    /// A mutual-exclusion lock; see the [module docs](super) for the
    /// poisoning policy behind [`lock_unpoisoned`](Mutex::lock_unpoisoned).
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// A new unlocked mutex holding `value`.
        pub const fn new(value: T) -> Self {
            Self(std::sync::Mutex::new(value))
        }

        /// Acquires the lock, recovering from poisoning (see the
        /// [module docs](super)). Blocks while another thread holds it.
        pub fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// A condition variable; waits must sit in a `while` loop re-checking
    /// the guarded predicate (the `gcod-check` lint pass enforces this).
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// A new condition variable.
        pub const fn new() -> Self {
            Self(std::sync::Condvar::new())
        }

        /// Atomically releases `guard` and blocks until notified, then
        /// reacquires the lock (recovering from poisoning).
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            // gcod-check: allow(condvar-wait-while) — facade delegation; the caller owns the predicate loop.
            self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
        }

        /// As [`wait`](Condvar::wait) but gives up after `timeout`; the
        /// boolean is `true` when the wait timed out (as opposed to being
        /// notified).
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (guard, result) = self
                .0
                // gcod-check: allow(condvar-wait-while) — facade delegation; the caller owns the predicate loop.
                .wait_timeout(guard, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            (guard, result.timed_out())
        }

        /// Wakes one blocked waiter.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wakes every blocked waiter.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    /// Facade atomics: on the production path, re-exports of [`std::sync::atomic`].
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawning through the facade.
    pub mod thread {
        /// The facade's join handle; on the production path this is exactly
        /// [`std::thread::JoinHandle`].
        pub type JoinHandle<T> = std::thread::JoinHandle<T>;

        /// Spawns a named thread.
        ///
        /// # Panics
        ///
        /// Panics when the OS refuses to spawn a thread (out of resources).
        pub fn spawn_named<T, F>(name: &str, f: F) -> JoinHandle<T>
        where
            T: Send + 'static,
            F: FnOnce() -> T + Send + 'static,
        {
            std::thread::Builder::new()
                .name(name.to_string())
                .spawn(f)
                .expect("gcod-runtime: failed to spawn thread")
        }
    }
}

#[cfg(any(feature = "model", gcod_model))]
mod imp {
    //! The instrumented path: delegate to the model checker's facade types,
    //! which fall back to `std` behaviour outside a [`super::model::check`]
    //! execution.

    pub use super::model::facade::{atomic, thread, Condvar, Mutex, MutexGuard};
}

pub use imp::{atomic, thread, Condvar, Mutex, MutexGuard};
