//! A deterministic-interleaving model checker (a miniature loom) for the
//! workspace's concurrency primitives.
//!
//! # How it works
//!
//! [`check`] runs a closure over and over, each time under a different
//! thread interleaving, until the bounded-preemption schedule space is
//! exhausted. Inside a checked execution, every thread spawned through the
//! [`sync`](super) facade is a real OS thread — but only **one** runs at a
//! time. Each facade operation (lock acquisition, condvar wait/notify,
//! atomic access, spawn, join, thread exit) is a *scheduling point*: the
//! running thread hands control to the scheduler, which picks the next
//! thread to run from the currently enabled set. The sequence of picks is
//! the schedule; the explorer enumerates schedules depth-first, replaying a
//! recorded prefix and then extending it, so every run is deterministic and
//! reproducible.
//!
//! Exhaustive exploration is exponential, so the space is cut with the
//! classic *preemption bound* ([`Model::max_preemptions`]): a schedule may
//! switch away from a still-runnable thread at most N times (forced
//! switches — the running thread blocking or exiting — are free). Bounded
//! preemption finds practically all real concurrency bugs at N = 2..3
//! (CHESS's empirical result) while keeping small tests in the thousands of
//! interleavings.
//!
//! What the checker detects:
//!
//! * **Deadlocks** — an execution where some thread is blocked (on a lock,
//!   an untimed condvar wait, or a join) and no thread can run. This is how
//!   a *lost wakeup* manifests: a consumer that misses its notification
//!   blocks forever on an interleaving the explorer is guaranteed to reach.
//! * **Panics** — assertion failures inside the closure (invariant
//!   violations, `unwrap` on impossible states) abort the exploration and
//!   re-raise with the failing schedule's decision count for context.
//!
//! Timed waits (`Condvar::wait_timeout`) are modelled as *nondeterministic
//! timeouts*: at any scheduling point the scheduler may wake a timed waiter
//! with `timed_out = true`, so both the "notified in time" and the "timed
//! out" paths are explored without any real clock. Untimed waits never wake
//! spuriously — which is exactly what makes a missing re-check loop or a
//! lost notification observable as a deadlock.
//!
//! # What it is not
//!
//! Weak memory orderings are not modelled: executions are sequentially
//! consistent (one thread runs at a time), so bugs that only exist under
//! relaxed-ordering reorderings are out of scope. All workspace primitives
//! use `SeqCst` atomics and lock-based critical sections, so this matches
//! what the code relies on.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};
use std::time::Duration;

/// Panic message used internally to unwind threads of an aborted execution;
/// never surfaces to callers.
const ABORT_MSG: &str = "gcod-model: execution aborted";

thread_local! {
    /// The scheduler controlling the current thread, when it is a model
    /// thread inside a [`check`] execution.
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler/thread-id pair of the calling thread, when model-controlled.
fn current() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|slot| slot.borrow().clone())
}

fn lock_state(scheduler: &Scheduler) -> std::sync::MutexGuard<'_, SchedState> {
    scheduler
        .state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// How one model thread may currently proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    /// May be scheduled.
    Runnable,
    /// Waiting for a mutex to be released.
    BlockedLock(usize),
    /// Waiting on a condvar; `timed` waits may be woken by a scheduled
    /// timeout as well as by a notification.
    BlockedCond { cv: usize, timed: bool },
    /// Waiting for another model thread to finish.
    BlockedJoin(usize),
    /// Exited (normally or by panic).
    Finished,
}

#[derive(Debug)]
struct ThreadState {
    name: String,
    run: Run,
    /// Set when a timed condvar wait was woken by a scheduled timeout (as
    /// opposed to a notification); read back by the waking thread.
    timed_out: bool,
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<usize>,
}

#[derive(Debug, Default)]
struct CondvarState {
    waiters: VecDeque<usize>,
}

/// One recorded scheduling decision.
#[derive(Debug, Clone)]
struct Decision {
    /// Thread ids that could be scheduled, free choice first.
    enabled: Vec<usize>,
    /// Per-`enabled` entry: whether choosing it costs a preemption. Staying
    /// on a still-runnable running thread is free, as is any forced switch
    /// (the running thread blocked or exited); switching away from a
    /// runnable running thread costs one, and so does firing a timed wait's
    /// timeout while some thread could run without it — otherwise a polling
    /// loop's wait/timeout/retry cycle would be a free infinite schedule.
    charged: Vec<bool>,
    /// Index into `enabled` that was chosen.
    chosen: usize,
    /// Preemptions spent before this decision.
    preemptions_before: u32,
}

/// Why an execution was cut short.
#[derive(Debug, Clone)]
enum Abort {
    /// No thread can run but some are still blocked.
    Deadlock(String),
    /// A model thread panicked; the payload is re-raised by the explorer.
    Panic,
}

#[derive(Debug)]
struct SchedState {
    threads: Vec<ThreadState>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    /// The one thread currently allowed to run.
    active: Option<usize>,
    /// Threads not yet finished.
    live: usize,
    /// Replay prefix: choice indices for the first `prefix.len()` decisions.
    prefix: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: u32,
    abort: Option<Abort>,
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

/// The per-execution scheduler; all model threads of one execution share it.
#[derive(Debug)]
pub(super) struct Scheduler {
    state: StdMutex<SchedState>,
    changed: StdCondvar,
    /// Distinguishes executions so facade objects reused across executions
    /// re-register instead of reusing a stale id.
    serial: u64,
    /// Real join handles of every model OS thread, joined at execution end.
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

static NEXT_SERIAL: AtomicU64 = AtomicU64::new(1);

impl Scheduler {
    fn new(prefix: Vec<usize>) -> Self {
        Self {
            state: StdMutex::new(SchedState {
                threads: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                active: None,
                live: 0,
                prefix,
                decisions: Vec::new(),
                preemptions: 0,
                abort: None,
                panic_payload: None,
            }),
            changed: StdCondvar::new(),
            serial: NEXT_SERIAL.fetch_add(1, AtomicOrdering::SeqCst),
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    /// Picks the next thread to run: replays the prefix, then defaults to
    /// letting the running thread continue (no preemption) or the first
    /// enabled thread. Records the decision. Detects deadlock and execution
    /// end. Must be called with the state lock held.
    fn pick_next(&self, st: &mut SchedState) {
        let mut runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Runnable)
            .map(|(id, _)| id)
            .collect();
        let timed: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.run, Run::BlockedCond { timed: true, .. }))
            .map(|(id, _)| id)
            .collect();
        let was_running = st.active;
        // Keep the free continuation at index 0 — the DFS explores
        // alternatives upward from the chosen index, so the default choice
        // must sit first for every other thread to be reachable. The free
        // continuation is the running thread while it stays runnable, any
        // runnable thread on a forced switch, and a timeout wake only when
        // nothing else can run.
        let running_still_runnable = match was_running {
            Some(running) => {
                if let Some(pos) = runnable.iter().position(|&id| id == running) {
                    runnable.remove(pos);
                    runnable.insert(0, running);
                    true
                } else {
                    false
                }
            }
            None => false,
        };
        let mut enabled = runnable;
        let runnable_count = enabled.len();
        enabled.extend(timed);
        let charged: Vec<bool> = enabled
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                if i >= runnable_count {
                    // A timeout wake perturbs the schedule unless it is the
                    // only way forward.
                    runnable_count > 0
                } else {
                    running_still_runnable && Some(id) != was_running
                }
            })
            .collect();
        if enabled.is_empty() {
            st.active = None;
            if st.live > 0 && st.abort.is_none() {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .filter(|t| t.run != Run::Finished)
                    .map(|t| format!("`{}` {:?}", t.name, t.run))
                    .collect();
                st.abort = Some(Abort::Deadlock(format!(
                    "deadlock: no runnable thread, {} still blocked: {}",
                    blocked.len(),
                    blocked.join(", ")
                )));
            }
            self.changed.notify_all();
            return;
        }
        let step = st.decisions.len();
        let chosen = if step < st.prefix.len() {
            st.prefix[step].min(enabled.len() - 1)
        } else {
            // Default policy: index 0 — the running thread when it is still
            // enabled (zero preemptions, the canonical first schedule of the
            // DFS), the lowest-id enabled thread otherwise.
            0
        };
        let preemptions_before = st.preemptions;
        if charged[chosen] {
            st.preemptions += 1;
        }
        st.decisions.push(Decision {
            enabled: enabled.clone(),
            charged,
            chosen,
            preemptions_before,
        });
        assert!(
            st.decisions.len() < 100_000,
            "gcod-model: execution exceeded 100000 scheduling decisions — \
             the scenario likely contains an unbounded polling loop"
        );
        let next = enabled[chosen];
        // A timed condvar waiter picked directly (not via notify) wakes as a
        // timeout.
        if let Run::BlockedCond { cv, timed: true } = st.threads[next].run {
            st.condvars[cv].waiters.retain(|&id| id != next);
            st.threads[next].run = Run::Runnable;
            st.threads[next].timed_out = true;
        }
        st.active = Some(next);
        self.changed.notify_all();
    }

    /// Blocks the calling model thread until it is the active one. Unwinds
    /// with [`ABORT_MSG`] when the execution was aborted meanwhile.
    fn wait_for_turn<'a>(
        &'a self,
        mut st: std::sync::MutexGuard<'a, SchedState>,
        me: usize,
    ) -> std::sync::MutexGuard<'a, SchedState> {
        loop {
            if st.abort.is_some() {
                drop(st);
                // gcod-check: allow(no-unwrap) — deliberate: aborting an execution unwinds every model thread.
                panic!("{ABORT_MSG}");
            }
            if st.active == Some(me) {
                return st;
            }
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A plain scheduling point: the calling thread stays runnable, the
    /// scheduler may hand control to another thread before it proceeds.
    fn yield_op(&self, me: usize) {
        let mut st = lock_state(self);
        self.pick_next(&mut st);
        let _st = self.wait_for_turn(st, me);
    }

    /// Registers a new mutex, returning its id.
    fn register_mutex(&self) -> usize {
        let mut st = lock_state(self);
        st.mutexes.push(MutexState::default());
        st.mutexes.len() - 1
    }

    /// Registers a new condvar, returning its id.
    fn register_condvar(&self) -> usize {
        let mut st = lock_state(self);
        st.condvars.push(CondvarState::default());
        st.condvars.len() - 1
    }

    /// Acquires model mutex `mid` for thread `me`, scheduling around the
    /// acquisition and blocking while another thread owns it.
    fn mutex_lock(&self, mid: usize, me: usize) {
        self.yield_op(me);
        let mut st = lock_state(self);
        loop {
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(me);
                return;
            }
            st.threads[me].run = Run::BlockedLock(mid);
            self.pick_next(&mut st);
            st = self.wait_for_turn(st, me);
        }
    }

    /// Releases model mutex `mid`, marking lock waiters runnable (they
    /// re-contend when next scheduled).
    fn mutex_unlock(&self, mid: usize, me: usize) {
        let mut st = lock_state(self);
        debug_assert_eq!(st.mutexes[mid].owner, Some(me), "unlock by non-owner");
        st.mutexes[mid].owner = None;
        for thread in st.threads.iter_mut() {
            if thread.run == Run::BlockedLock(mid) {
                thread.run = Run::Runnable;
            }
        }
    }

    /// The condvar wait protocol: atomically release `mid`, enqueue on
    /// `cvid` and block; once woken (and scheduled), re-acquire `mid`.
    /// Returns `true` when a timed wait woke by timeout.
    fn cond_wait(&self, cvid: usize, mid: usize, me: usize, timed: bool) -> bool {
        let mut st = lock_state(self);
        debug_assert_eq!(st.mutexes[mid].owner, Some(me), "wait without the lock");
        st.mutexes[mid].owner = None;
        for thread in st.threads.iter_mut() {
            if thread.run == Run::BlockedLock(mid) {
                thread.run = Run::Runnable;
            }
        }
        st.condvars[cvid].waiters.push_back(me);
        st.threads[me].run = Run::BlockedCond { cv: cvid, timed };
        st.threads[me].timed_out = false;
        self.pick_next(&mut st);
        st = self.wait_for_turn(st, me);
        let timed_out = st.threads[me].timed_out;
        // Re-acquire the mutex (we are scheduled; contend like a fresh lock
        // but without an extra scheduling point — the wake was the decision).
        loop {
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(me);
                return timed_out;
            }
            st.threads[me].run = Run::BlockedLock(mid);
            self.pick_next(&mut st);
            st = self.wait_for_turn(st, me);
        }
    }

    /// Wakes the longest-waiting waiter of `cvid`, if any.
    fn notify_one(&self, cvid: usize, me: usize) {
        self.yield_op(me);
        let mut st = lock_state(self);
        if let Some(waiter) = st.condvars[cvid].waiters.pop_front() {
            st.threads[waiter].run = Run::Runnable;
            st.threads[waiter].timed_out = false;
        }
    }

    /// Wakes every waiter of `cvid`.
    fn notify_all(&self, cvid: usize, me: usize) {
        self.yield_op(me);
        let mut st = lock_state(self);
        while let Some(waiter) = st.condvars[cvid].waiters.pop_front() {
            st.threads[waiter].run = Run::Runnable;
            st.threads[waiter].timed_out = false;
        }
    }

    /// Registers a model thread (runnable, not yet scheduled).
    fn register_thread(&self, name: &str) -> usize {
        let mut st = lock_state(self);
        st.threads.push(ThreadState {
            name: name.to_string(),
            run: Run::Runnable,
            timed_out: false,
        });
        st.live += 1;
        st.threads.len() - 1
    }

    /// Thread exit protocol: mark finished, wake joiners, pick the next
    /// thread (or record the panic and abort the execution).
    fn finish(&self, me: usize, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = lock_state(self);
        st.threads[me].run = Run::Finished;
        st.live -= 1;
        for thread in st.threads.iter_mut() {
            if thread.run == Run::BlockedJoin(me) {
                thread.run = Run::Runnable;
            }
        }
        if let Some(payload) = panic_payload {
            // The internal abort unwind is bookkeeping, not a finding.
            let internal = payload
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains(ABORT_MSG))
                || payload
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains(ABORT_MSG));
            if !internal && st.abort.is_none() {
                st.abort = Some(Abort::Panic);
                st.panic_payload = Some(payload);
            }
            st.active = None;
            self.changed.notify_all();
            return;
        }
        if st.abort.is_some() {
            st.active = None;
            self.changed.notify_all();
            return;
        }
        self.pick_next(&mut st);
    }

    /// Blocks thread `me` until thread `child` finishes.
    fn join_thread(&self, child: usize, me: usize) {
        self.yield_op(me);
        let mut st = lock_state(self);
        while st.threads[child].run != Run::Finished {
            st.threads[me].run = Run::BlockedJoin(child);
            self.pick_next(&mut st);
            st = self.wait_for_turn(st, me);
        }
    }

    /// Spawns a model OS thread running `body` as thread id `id`.
    fn spawn_os_thread(
        self: &Arc<Self>,
        id: usize,
        name: &str,
        body: impl FnOnce() + Send + 'static,
    ) {
        let scheduler = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("gcod-model-{name}"))
            .spawn(move || {
                CURRENT.with(|slot| *slot.borrow_mut() = Some((Arc::clone(&scheduler), id)));
                {
                    let st = lock_state(&scheduler);
                    // Block until first scheduled; unwinds on abort.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        drop(scheduler.wait_for_turn(st, id));
                        body()
                    }));
                    scheduler.finish(id, result.err());
                }
                CURRENT.with(|slot| *slot.borrow_mut() = None);
            })
            .expect("gcod-model: failed to spawn model thread");
        self.os_handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(handle);
    }

    /// Blocks the (non-model) explorer thread until the execution finishes.
    fn wait_execution_done(&self) {
        let mut st = lock_state(self);
        while st.live > 0 && st.abort.is_none() {
            st = self
                .changed
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort.is_some() {
            // Unblock every surviving thread so it can unwind and exit.
            self.changed.notify_all();
            while st.live > 0 {
                st = self
                    .changed
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }
}

/// Exploration knobs; [`Model::default`] matches the workspace CI setup.
#[derive(Debug, Clone)]
pub struct Model {
    /// Most times a schedule may switch away from a still-runnable thread.
    /// 2–3 finds practically all real interleaving bugs (the CHESS result);
    /// raising it grows the space combinatorially.
    pub max_preemptions: u32,
    /// Hard cap on explored executions; exceeding it fails the check (the
    /// test should shrink its scenario instead of silently under-exploring).
    pub max_executions: usize,
}

impl Default for Model {
    fn default() -> Self {
        Self {
            max_preemptions: 2,
            max_executions: 500_000,
        }
    }
}

/// What [`check`] explored; the counts CI prints to keep runtime honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Complete executions explored (each is one distinct interleaving).
    pub interleavings: usize,
    /// Scheduling decisions in the longest execution.
    pub max_decisions: usize,
}

/// Explores `f` under [`Model::default`]; see [`Model::check`].
pub fn check(name: &str, f: impl Fn() + Send + Sync + 'static) -> Report {
    Model::default().check(name, f)
}

impl Model {
    /// Runs `f` under every schedule within the preemption bound (see the
    /// [module docs](self)), panicking on the first deadlock or thread
    /// panic with the failing schedule's context. Prints and returns the
    /// exploration counts.
    ///
    /// `f` must be deterministic apart from scheduling, and must create the
    /// state it checks (queues, latches, threads) *inside* the closure so
    /// every execution starts fresh.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic of any model thread; panics on deadlock;
    /// panics when the schedule space exceeds [`Model::max_executions`].
    pub fn check(&self, name: &str, f: impl Fn() + Send + Sync + 'static) -> Report {
        assert!(
            current().is_none(),
            "gcod-model: nested check() inside a model execution"
        );
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut interleavings = 0usize;
        let mut max_decisions = 0usize;
        loop {
            let scheduler = Arc::new(Scheduler::new(prefix.clone()));
            let root_id = scheduler.register_thread("root");
            let body = {
                let f = Arc::clone(&f);
                move || f()
            };
            scheduler.spawn_os_thread(root_id, "root", body);
            {
                // Initial pick: start the root thread.
                let mut st = lock_state(&scheduler);
                scheduler.pick_next(&mut st);
            }
            scheduler.wait_execution_done();
            for handle in scheduler
                .os_handles
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .drain(..)
            {
                let _ = handle.join();
            }
            interleavings += 1;
            let mut st = lock_state(&scheduler);
            max_decisions = max_decisions.max(st.decisions.len());
            match st.abort.take() {
                Some(Abort::Deadlock(message)) => {
                    // gcod-check: allow(no-unwrap) — deliberate: a deadlock is the checker's failure report.
                    panic!(
                        "model `{name}`: {message} (interleaving #{interleavings}, \
                         {} decisions: {:?})",
                        st.decisions.len(),
                        st.decisions
                            .iter()
                            .map(|d| d.enabled[d.chosen])
                            .collect::<Vec<_>>()
                    );
                }
                Some(Abort::Panic) => {
                    let payload = st
                        .panic_payload
                        .take()
                        .unwrap_or_else(|| Box::new("model thread panicked"));
                    eprintln!(
                        "model `{name}`: thread panic on interleaving #{interleavings} \
                         ({} decisions)",
                        st.decisions.len()
                    );
                    drop(st);
                    resume_unwind(payload);
                }
                None => {}
            }
            let next = next_prefix(&st.decisions, self.max_preemptions);
            drop(st);
            match next {
                Some(p) => prefix = p,
                None => break,
            }
            assert!(
                interleavings < self.max_executions,
                "model `{name}`: exceeded {} executions — shrink the scenario \
                 or lower max_preemptions",
                self.max_executions
            );
        }
        println!(
            "model `{name}`: {interleavings} interleavings explored \
             (max {max_decisions} decisions/run, preemption bound {})",
            self.max_preemptions
        );
        Report {
            interleavings,
            max_decisions,
        }
    }
}

/// The DFS backtrack: the deepest decision with an untried alternative
/// within the preemption bound, as a new replay prefix.
fn next_prefix(decisions: &[Decision], max_preemptions: u32) -> Option<Vec<usize>> {
    for (i, decision) in decisions.iter().enumerate().rev() {
        for alt in decision.chosen + 1..decision.enabled.len() {
            let extra = u32::from(decision.charged[alt]);
            if decision.preemptions_before + extra <= max_preemptions {
                let mut prefix: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
                prefix.push(alt);
                return Some(prefix);
            }
        }
    }
    None
}

/// The instrumented facade types (model-mode [`Mutex`](facade::Mutex),
/// [`Condvar`](facade::Condvar), [`atomic`](facade::atomic),
/// [`thread`](facade::thread)); outside a [`check`] execution they behave
/// exactly like their `std` counterparts.
pub mod facade {
    use super::*;

    /// Packs `(execution serial, id + 1)` so facade objects reused across
    /// executions re-register instead of aliasing a stale id.
    #[derive(Debug, Default)]
    struct ModelId(AtomicU64);

    impl ModelId {
        const fn new() -> Self {
            Self(AtomicU64::new(0))
        }

        /// The object's id within `scheduler`'s execution, registering it
        /// on first use.
        fn get_or_register(
            &self,
            scheduler: &Arc<Scheduler>,
            register: impl FnOnce() -> usize,
        ) -> usize {
            let tag = self.0.load(AtomicOrdering::SeqCst);
            let serial = tag >> 32;
            if serial == (scheduler.serial & 0xffff_ffff) && tag & 0xffff_ffff != 0 {
                return ((tag & 0xffff_ffff) - 1) as usize;
            }
            let id = register();
            self.0.store(
                ((scheduler.serial & 0xffff_ffff) << 32) | (id as u64 + 1),
                AtomicOrdering::SeqCst,
            );
            id
        }
    }

    /// Model-mode mutex: a real [`std::sync::Mutex`] plus scheduler
    /// bookkeeping when a model execution is active.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: StdMutex<T>,
        id: ModelId,
    }

    /// Model-mode guard; releases the scheduler-side ownership on drop.
    #[derive(Debug)]
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        /// `(scheduler, mutex id)` when acquired inside a model execution.
        model: Option<(Arc<Scheduler>, usize)>,
    }

    impl<T> Mutex<T> {
        /// A new unlocked mutex holding `value`.
        pub const fn new(value: T) -> Self {
            Self {
                inner: StdMutex::new(value),
                id: ModelId::new(),
            }
        }

        fn std_guard(&self) -> std::sync::MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }

        /// Acquires the lock, recovering from poisoning; a scheduling point
        /// under an active model execution.
        pub fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
            match current() {
                Some((scheduler, me)) => {
                    let mid = self
                        .id
                        .get_or_register(&scheduler, || scheduler.register_mutex());
                    scheduler.mutex_lock(mid, me);
                    MutexGuard {
                        lock: self,
                        inner: Some(self.std_guard()),
                        model: Some((scheduler, mid)),
                    }
                }
                None => MutexGuard {
                    lock: self,
                    inner: Some(self.std_guard()),
                    model: None,
                },
            }
        }
    }

    impl<'a, T> MutexGuard<'a, T> {
        /// Drops the real guard and detaches the scheduler bookkeeping
        /// without releasing scheduler-side ownership (the condvar wait
        /// protocol releases it itself).
        fn dismantle(mut self) -> (&'a Mutex<T>, Option<(Arc<Scheduler>, usize)>) {
            let lock = self.lock;
            let model = self.model.take();
            self.inner = None;
            std::mem::forget(self);
            (lock, model)
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard dismantled")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard dismantled")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock before the scheduler-side ownership so
            // the next scheduled thread can actually acquire it.
            self.inner = None;
            if let Some((scheduler, mid)) = self.model.take() {
                if let Some((_, me)) = current() {
                    scheduler.mutex_unlock(mid, me);
                }
            }
        }
    }

    /// Model-mode condition variable.
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: StdCondvar,
        id: ModelId,
    }

    impl Condvar {
        /// A new condition variable.
        pub const fn new() -> Self {
            Self {
                inner: StdCondvar::new(),
                id: ModelId::new(),
            }
        }

        fn wait_inner<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timed: bool,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            match (current(), &guard.model) {
                (Some((scheduler, me)), Some(_)) => {
                    let cvid = self
                        .id
                        .get_or_register(&scheduler, || scheduler.register_condvar());
                    let (lock, model) = guard.dismantle();
                    let (_, mid) = model.expect("checked above");
                    let timed_out = scheduler.cond_wait(cvid, mid, me, timed);
                    (
                        MutexGuard {
                            lock,
                            inner: Some(lock.std_guard()),
                            model: Some((scheduler, mid)),
                        },
                        timed_out,
                    )
                }
                _ => {
                    // Outside a model execution: plain std wait on the real
                    // mutex through the real condvar.
                    let (lock, model) = guard.dismantle();
                    let std_guard = lock.std_guard();
                    if timed {
                        let (g, result) = self
                            .inner
                            // gcod-check: allow(condvar-wait-while) — facade delegation; the caller owns the predicate loop.
                            .wait_timeout(std_guard, timeout)
                            .unwrap_or_else(PoisonError::into_inner);
                        (
                            MutexGuard {
                                lock,
                                inner: Some(g),
                                model,
                            },
                            result.timed_out(),
                        )
                    } else {
                        let g = self
                            .inner
                            // gcod-check: allow(condvar-wait-while) — facade delegation; the caller owns the predicate loop.
                            .wait(std_guard)
                            .unwrap_or_else(PoisonError::into_inner);
                        (
                            MutexGuard {
                                lock,
                                inner: Some(g),
                                model,
                            },
                            false,
                        )
                    }
                }
            }
        }

        /// Atomically releases `guard` and blocks until notified.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.wait_inner(guard, false, Duration::ZERO).0
        }

        /// As [`wait`](Condvar::wait) with a timeout; under a model
        /// execution the timeout may fire at any scheduling point (the
        /// clock is not modelled), so both outcomes are explored.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            self.wait_inner(guard, true, timeout)
        }

        /// Wakes one blocked waiter.
        pub fn notify_one(&self) {
            match current() {
                Some((scheduler, me)) => {
                    let cvid = self
                        .id
                        .get_or_register(&scheduler, || scheduler.register_condvar());
                    scheduler.notify_one(cvid, me);
                }
                None => self.inner.notify_one(),
            }
        }

        /// Wakes every blocked waiter.
        pub fn notify_all(&self) {
            match current() {
                Some((scheduler, me)) => {
                    let cvid = self
                        .id
                        .get_or_register(&scheduler, || scheduler.register_condvar());
                    scheduler.notify_all(cvid, me);
                }
                None => self.inner.notify_all(),
            }
        }
    }

    /// Model-mode atomics: every access is a scheduling point under an
    /// active execution (sequentially consistent — see the
    /// [module docs](super::super::model)).
    pub mod atomic {
        use super::{current, AtomicOrdering};

        pub use std::sync::atomic::Ordering;

        fn yield_point() {
            if let Some((scheduler, me)) = current() {
                scheduler.yield_op(me);
            }
        }

        macro_rules! model_atomic {
            ($name:ident, $std:ty, $value:ty) => {
                /// A facade atomic; every access is a scheduling point
                /// inside a model execution.
                #[derive(Debug, Default)]
                pub struct $name($std);

                impl $name {
                    /// A new atomic holding `value`.
                    pub const fn new(value: $value) -> Self {
                        Self(<$std>::new(value))
                    }

                    /// Atomic load.
                    pub fn load(&self, order: Ordering) -> $value {
                        yield_point();
                        self.0.load(order)
                    }

                    /// Atomic store.
                    pub fn store(&self, value: $value, order: Ordering) {
                        yield_point();
                        self.0.store(value, order)
                    }

                    /// Atomic swap.
                    pub fn swap(&self, value: $value, order: Ordering) -> $value {
                        yield_point();
                        self.0.swap(value, order)
                    }
                }
            };
        }

        model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
        model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);

        impl AtomicUsize {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, value: usize, order: Ordering) -> usize {
                yield_point();
                self.0.fetch_add(value, order)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, value: usize, order: Ordering) -> usize {
                yield_point();
                self.0.fetch_max(value, order)
            }
        }

        impl AtomicU64 {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, value: u64, order: Ordering) -> u64 {
                yield_point();
                self.0.fetch_add(value, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, value: u64, order: Ordering) -> u64 {
                yield_point();
                self.0.fetch_sub(value, order)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, value: u64, order: Ordering) -> u64 {
                yield_point();
                self.0.fetch_max(value, order)
            }
        }

        const _: () = {
            // AtomicOrdering is re-imported for the scheduler itself; keep
            // the use alive without exposing it.
            let _ = AtomicOrdering::SeqCst;
        };
    }

    /// Model-mode thread spawning.
    pub mod thread {
        use super::*;

        /// Model-mode join handle: either a plain std handle (spawned
        /// outside a model execution) or a scheduler-managed model thread.
        #[derive(Debug)]
        pub struct JoinHandle<T>(Inner<T>);

        #[derive(Debug)]
        enum Inner<T> {
            /// Spawned outside any model execution.
            Std(std::thread::JoinHandle<T>),
            /// Spawned inside a model execution.
            Model {
                /// The scheduler controlling the thread.
                scheduler: Arc<Scheduler>,
                /// The thread's model id.
                id: usize,
                /// Filled by the thread before it reports finished.
                result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
            },
        }

        impl<T> JoinHandle<T> {
            /// Waits for the thread to finish and returns its result
            /// (`Err` carries the panic payload, as with std).
            pub fn join(self) -> std::thread::Result<T> {
                match self.0 {
                    Inner::Std(handle) => handle.join(),
                    Inner::Model {
                        scheduler,
                        id,
                        result,
                    } => {
                        let (_, me) = current().expect(
                            "gcod-model: joining a model thread from outside its execution",
                        );
                        scheduler.join_thread(id, me);
                        result
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .take()
                            .expect("finished model thread must have stored its result")
                    }
                }
            }
        }

        /// Spawns a named thread; a model thread (scheduler-controlled)
        /// when called from inside a model execution.
        ///
        /// # Panics
        ///
        /// Panics when the OS refuses to spawn a thread.
        pub fn spawn_named<T, F>(name: &str, f: F) -> JoinHandle<T>
        where
            T: Send + 'static,
            F: FnOnce() -> T + Send + 'static,
        {
            match current() {
                Some((scheduler, me)) => {
                    let id = scheduler.register_thread(name);
                    let result: Arc<StdMutex<Option<std::thread::Result<T>>>> =
                        Arc::new(StdMutex::new(None));
                    let slot = Arc::clone(&result);
                    scheduler.spawn_os_thread(id, name, move || {
                        // Panics unwind into the exit protocol, which aborts
                        // the execution and re-raises the payload from the
                        // explorer — a model thread panic is always a
                        // finding, never a value `join` hands back.
                        let value = f();
                        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(value));
                    });
                    scheduler.yield_op(me);
                    JoinHandle(Inner::Model {
                        scheduler,
                        id,
                        result,
                    })
                }
                None => JoinHandle(Inner::Std(
                    std::thread::Builder::new()
                        .name(name.to_string())
                        .spawn(f)
                        .expect("gcod-runtime: failed to spawn thread"),
                )),
            }
        }
    }
}
