//! Shared simulation contract of the GCoD workspace.
//!
//! GCoD is a co-design: one algorithm pipeline whose output is consumed
//! uniformly by the dedicated accelerator model (`gcod-accel`) and a field of
//! baseline platforms (`gcod-baselines`). This crate defines the surface that
//! makes that uniformity expressible:
//!
//! * [`Platform`] — the object-safe trait every simulated platform
//!   implements: one [`Platform::simulate`] signature for the GCoD
//!   accelerator, the CPUs/GPUs, HyGCN, AWB-GCN and the FPGAs, so callers
//!   can iterate a `Vec<Box<dyn Platform>>`,
//! * [`SimRequest`] — the input of a simulation: an
//!   [`InferenceWorkload`](gcod_nn::workload::InferenceWorkload) plus an
//!   optional GCoD [`SplitWorkload`](gcod_core::SplitWorkload) for platforms
//!   that exploit the denser/sparser split,
//! * [`report::PerfReport`] — the common output currency (latency, cycles,
//!   traffic, bandwidth, utilization, energy),
//! * [`memory`] — phase-level off-chip traffic and bandwidth accounting,
//! * [`energy`] — the Fig. 12 energy breakdown.
//!
//! # Example
//!
//! ```
//! use gcod_platform::{Platform, SimRequest};
//! # use gcod_platform::report::PerfReport;
//! # use gcod_platform::{PlatformError, Result};
//!
//! fn fastest(platforms: &[Box<dyn Platform>], request: &SimRequest) -> Result<Option<String>> {
//!     let mut best: Option<(String, f64)> = None;
//!     for platform in platforms {
//!         let report = platform.simulate(request)?;
//!         if best.as_ref().is_none_or(|(_, l)| report.latency_ms < *l) {
//!             best = Some((platform.name().to_string(), report.latency_ms));
//!         }
//!     }
//!     Ok(best.map(|(name, _)| name))
//! }
//! # let platforms: Vec<Box<dyn Platform>> = Vec::new();
//! # let graph = gcod_graph::GraphGenerator::new(0)
//! #     .generate(&gcod_graph::DatasetProfile::custom("t", 50, 150, 8, 2)).unwrap();
//! # let workload = gcod_nn::workload::InferenceWorkload::build(
//! #     &graph, &gcod_nn::models::ModelConfig::gcn(&graph), gcod_nn::quant::Precision::Fp32);
//! # assert!(fastest(&platforms, &SimRequest::new(workload)).unwrap().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod energy;
pub mod memory;
mod platform;
pub mod report;

pub use platform::{cheapest_platform, Platform, PlatformError, SimRequest};

/// Result alias for platform simulations.
pub type Result<T> = std::result::Result<T, PlatformError>;
