//! Off-chip traffic and bandwidth accounting.
//!
//! The paper's Fig. 11 reports two memory-side metrics: the peak off-chip
//! bandwidth an accelerator needs to sustain its compute, and the total
//! number of off-chip accesses. [`TrafficCounter`] accumulates byte counts
//! per phase and converts them into both metrics.

use serde::{Deserialize, Serialize};

/// Which GCN execution phase a transfer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Feature combination (`X · W`).
    Combination,
    /// Neighbourhood aggregation (`Â · (XW)`).
    Aggregation,
}

/// Byte counters for one simulation run, split by phase and direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficCounter {
    /// Off-chip bytes read during combination.
    pub off_chip_read_combination: u64,
    /// Off-chip bytes written during combination.
    pub off_chip_write_combination: u64,
    /// Off-chip bytes read during aggregation.
    pub off_chip_read_aggregation: u64,
    /// Off-chip bytes written during aggregation.
    pub off_chip_write_aggregation: u64,
    /// On-chip bytes moved during combination.
    pub on_chip_combination: u64,
    /// On-chip bytes moved during aggregation.
    pub on_chip_aggregation: u64,
}

impl TrafficCounter {
    /// Creates an all-zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an off-chip read.
    pub fn read_off_chip(&mut self, phase: Phase, bytes: u64) {
        match phase {
            Phase::Combination => self.off_chip_read_combination += bytes,
            Phase::Aggregation => self.off_chip_read_aggregation += bytes,
        }
    }

    /// Records an off-chip write.
    pub fn write_off_chip(&mut self, phase: Phase, bytes: u64) {
        match phase {
            Phase::Combination => self.off_chip_write_combination += bytes,
            Phase::Aggregation => self.off_chip_write_aggregation += bytes,
        }
    }

    /// Records on-chip movement (buffer reads/writes).
    pub fn move_on_chip(&mut self, phase: Phase, bytes: u64) {
        match phase {
            Phase::Combination => self.on_chip_combination += bytes,
            Phase::Aggregation => self.on_chip_aggregation += bytes,
        }
    }

    /// Total off-chip bytes (both directions, both phases).
    pub fn total_off_chip(&self) -> u64 {
        self.off_chip_read_combination
            + self.off_chip_write_combination
            + self.off_chip_read_aggregation
            + self.off_chip_write_aggregation
    }

    /// Total on-chip bytes.
    pub fn total_on_chip(&self) -> u64 {
        self.on_chip_combination + self.on_chip_aggregation
    }

    /// Off-chip bytes attributable to one phase.
    pub fn off_chip_for(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Combination => self.off_chip_read_combination + self.off_chip_write_combination,
            Phase::Aggregation => self.off_chip_read_aggregation + self.off_chip_write_aggregation,
        }
    }

    /// Number of off-chip accesses assuming `access_bytes` per transaction
    /// (e.g. a 64-byte HBM burst).
    pub fn off_chip_accesses(&self, access_bytes: u64) -> u64 {
        self.total_off_chip().div_ceil(access_bytes.max(1))
    }

    /// Average bandwidth (GB/s) needed to move the off-chip traffic within
    /// `latency_seconds`.
    pub fn required_bandwidth_gbps(&self, latency_seconds: f64) -> f64 {
        if latency_seconds <= 0.0 {
            return 0.0;
        }
        self.total_off_chip() as f64 / latency_seconds / 1.0e9
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &TrafficCounter) {
        self.off_chip_read_combination += other.off_chip_read_combination;
        self.off_chip_write_combination += other.off_chip_write_combination;
        self.off_chip_read_aggregation += other.off_chip_read_aggregation;
        self.off_chip_write_aggregation += other.off_chip_write_aggregation;
        self.on_chip_combination += other.on_chip_combination;
        self.on_chip_aggregation += other.on_chip_aggregation;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_by_phase() {
        let mut t = TrafficCounter::new();
        t.read_off_chip(Phase::Combination, 100);
        t.write_off_chip(Phase::Combination, 50);
        t.read_off_chip(Phase::Aggregation, 200);
        t.move_on_chip(Phase::Aggregation, 1000);
        assert_eq!(t.total_off_chip(), 350);
        assert_eq!(t.off_chip_for(Phase::Combination), 150);
        assert_eq!(t.off_chip_for(Phase::Aggregation), 200);
        assert_eq!(t.total_on_chip(), 1000);
    }

    #[test]
    fn access_count_rounds_up_bursts() {
        let mut t = TrafficCounter::new();
        t.read_off_chip(Phase::Aggregation, 130);
        assert_eq!(t.off_chip_accesses(64), 3);
        assert_eq!(t.off_chip_accesses(0), 130);
    }

    #[test]
    fn bandwidth_requirement() {
        let mut t = TrafficCounter::new();
        t.read_off_chip(Phase::Combination, 2_000_000_000);
        assert!((t.required_bandwidth_gbps(1.0) - 2.0).abs() < 1e-9);
        assert!((t.required_bandwidth_gbps(0.5) - 4.0).abs() < 1e-9);
        assert_eq!(t.required_bandwidth_gbps(0.0), 0.0);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = TrafficCounter::new();
        a.read_off_chip(Phase::Combination, 10);
        let mut b = TrafficCounter::new();
        b.write_off_chip(Phase::Aggregation, 20);
        b.move_on_chip(Phase::Combination, 5);
        a.merge(&b);
        assert_eq!(a.total_off_chip(), 30);
        assert_eq!(a.total_on_chip(), 5);
    }
}
