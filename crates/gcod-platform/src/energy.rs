//! Energy model (Fig. 12).
//!
//! The breakdown distinguishes compute energy (MAC operations), on-chip
//! buffer accesses and off-chip HBM accesses, separately for the combination
//! and aggregation phases. The per-operation constants are the commonly used
//! 28 nm estimates (Horowitz-style): they set the relative magnitudes —
//! off-chip ≫ on-chip ≫ MAC — which is what the figure's shape depends on.

use crate::memory::{Phase, TrafficCounter};
use serde::{Deserialize, Serialize};

/// Per-operation energy constants in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per 32-bit MAC (pJ).
    pub pj_per_mac: f64,
    /// Energy per byte moved within on-chip SRAM (pJ).
    pub pj_per_on_chip_byte: f64,
    /// Energy per byte moved to/from HBM (pJ).
    pub pj_per_off_chip_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            pj_per_mac: 1.0,
            pj_per_on_chip_byte: 1.5,
            pj_per_off_chip_byte: 40.0,
        }
    }
}

impl EnergyModel {
    /// Scales the MAC energy for reduced precision (INT8 MACs cost roughly a
    /// quarter of 32-bit ones).
    pub fn with_precision_scale(mut self, scale: f64) -> Self {
        self.pj_per_mac *= scale;
        self
    }
}

/// Energy totals in joules, broken down the way Fig. 12 plots them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Compute energy of the combination phase.
    pub compute_combination: f64,
    /// On-chip access energy of the combination phase.
    pub on_chip_combination: f64,
    /// Off-chip access energy of the combination phase.
    pub off_chip_combination: f64,
    /// Compute energy of the aggregation phase.
    pub compute_aggregation: f64,
    /// On-chip access energy of the aggregation phase.
    pub on_chip_aggregation: f64,
    /// Off-chip access energy of the aggregation phase.
    pub off_chip_aggregation: f64,
}

impl EnergyBreakdown {
    /// Computes the breakdown from MAC counts and a traffic counter.
    pub fn from_counts(
        model: &EnergyModel,
        combination_macs: u64,
        aggregation_macs: u64,
        traffic: &TrafficCounter,
    ) -> Self {
        let pj_to_j = 1.0e-12;
        Self {
            compute_combination: combination_macs as f64 * model.pj_per_mac * pj_to_j,
            on_chip_combination: traffic.on_chip_combination as f64
                * model.pj_per_on_chip_byte
                * pj_to_j,
            off_chip_combination: traffic.off_chip_for(Phase::Combination) as f64
                * model.pj_per_off_chip_byte
                * pj_to_j,
            compute_aggregation: aggregation_macs as f64 * model.pj_per_mac * pj_to_j,
            on_chip_aggregation: traffic.on_chip_aggregation as f64
                * model.pj_per_on_chip_byte
                * pj_to_j,
            off_chip_aggregation: traffic.off_chip_for(Phase::Aggregation) as f64
                * model.pj_per_off_chip_byte
                * pj_to_j,
        }
    }

    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.compute_combination
            + self.on_chip_combination
            + self.off_chip_combination
            + self.compute_aggregation
            + self.on_chip_aggregation
            + self.off_chip_aggregation
    }

    /// Energy attributable to the combination phase.
    pub fn combination_total(&self) -> f64 {
        self.compute_combination + self.on_chip_combination + self.off_chip_combination
    }

    /// Energy attributable to the aggregation phase.
    pub fn aggregation_total(&self) -> f64 {
        self.compute_aggregation + self.on_chip_aggregation + self.off_chip_aggregation
    }

    /// Fractional breakdown in the order Fig. 12 stacks its bars:
    /// `[comb compute, comb on-chip, comb off-chip,
    ///   aggr compute, aggr on-chip, aggr off-chip]`.
    pub fn fractions(&self) -> [f64; 6] {
        let total = self.total();
        if total <= 0.0 {
            return [0.0; 6];
        }
        [
            self.compute_combination / total,
            self.on_chip_combination / total,
            self.off_chip_combination / total,
            self.compute_aggregation / total,
            self.on_chip_aggregation / total,
            self.off_chip_aggregation / total,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_chip_dominates_per_byte() {
        let m = EnergyModel::default();
        assert!(m.pj_per_off_chip_byte > 10.0 * m.pj_per_on_chip_byte / 1.5);
        assert!(m.pj_per_on_chip_byte > m.pj_per_mac);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let mut traffic = TrafficCounter::new();
        traffic.read_off_chip(Phase::Combination, 1_000_000);
        traffic.read_off_chip(Phase::Aggregation, 2_000_000);
        traffic.move_on_chip(Phase::Combination, 5_000_000);
        let b =
            EnergyBreakdown::from_counts(&EnergyModel::default(), 10_000_000, 5_000_000, &traffic);
        let parts = b.combination_total() + b.aggregation_total();
        assert!((parts - b.total()).abs() < 1e-15);
        let fracs = b.fractions();
        let sum: f64 = fracs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_zero_energy() {
        let b = EnergyBreakdown::from_counts(&EnergyModel::default(), 0, 0, &TrafficCounter::new());
        assert_eq!(b.total(), 0.0);
        assert_eq!(b.fractions(), [0.0; 6]);
    }

    #[test]
    fn precision_scale_reduces_mac_energy() {
        let base = EnergyModel::default();
        let int8 = EnergyModel::default().with_precision_scale(0.25);
        assert!(int8.pj_per_mac < base.pj_per_mac);
        assert_eq!(int8.pj_per_off_chip_byte, base.pj_per_off_chip_byte);
    }

    #[test]
    fn more_off_chip_traffic_means_more_energy() {
        let model = EnergyModel::default();
        let mut little = TrafficCounter::new();
        little.read_off_chip(Phase::Aggregation, 1_000);
        let mut much = TrafficCounter::new();
        much.read_off_chip(Phase::Aggregation, 1_000_000);
        let small = EnergyBreakdown::from_counts(&model, 100, 100, &little);
        let large = EnergyBreakdown::from_counts(&model, 100, 100, &much);
        assert!(large.total() > small.total());
    }
}
