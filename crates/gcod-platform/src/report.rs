//! Simulation result types.

use crate::energy::EnergyBreakdown;
use crate::memory::TrafficCounter;
use serde::{Deserialize, Serialize};

/// Performance report of one inference simulation on one platform.
///
/// This is the common currency of the benchmark harness: the GCoD
/// accelerator, the baseline accelerators and the CPU/GPU models all produce
/// one of these, and the figure/table generators compare them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Platform name (e.g. "gcod", "hygcn", "pyg-cpu").
    pub platform: String,
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// End-to-end inference latency in milliseconds.
    pub latency_ms: f64,
    /// Total clock cycles (0 for platforms modelled without a cycle notion).
    pub cycles: u64,
    /// Total off-chip traffic in bytes.
    pub off_chip_bytes: u64,
    /// Number of off-chip accesses (64-byte bursts).
    pub off_chip_accesses: u64,
    /// Peak off-chip bandwidth demanded, in GB/s.
    pub peak_bandwidth_gbps: f64,
    /// Average PE / compute utilization in [0, 1].
    pub utilization: f64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Raw traffic counters.
    pub traffic: TrafficCounter,
}

impl PerfReport {
    /// Speedup of this report relative to a reference latency.
    pub fn speedup_over(&self, reference_latency_ms: f64) -> f64 {
        if self.latency_ms <= 0.0 {
            0.0
        } else {
            reference_latency_ms / self.latency_ms
        }
    }

    /// Total energy in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(latency: f64) -> PerfReport {
        PerfReport {
            platform: "x".to_string(),
            dataset: "cora".to_string(),
            model: "gcn".to_string(),
            latency_ms: latency,
            cycles: 100,
            off_chip_bytes: 1000,
            off_chip_accesses: 16,
            peak_bandwidth_gbps: 1.0,
            utilization: 0.9,
            energy: EnergyBreakdown::default(),
            traffic: TrafficCounter::new(),
        }
    }

    #[test]
    fn speedup_is_ratio_of_latencies() {
        let fast = dummy(2.0);
        assert_eq!(fast.speedup_over(20.0), 10.0);
        assert_eq!(dummy(0.0).speedup_over(20.0), 0.0);
    }

    #[test]
    fn energy_total_passthrough() {
        let r = dummy(1.0);
        assert_eq!(r.energy_joules(), 0.0);
    }
}
