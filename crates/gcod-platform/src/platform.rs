//! The [`Platform`] trait and its [`SimRequest`] input.
//!
//! Before this contract existed, the GCoD accelerator exposed
//! `simulate(&InferenceWorkload, &SplitWorkload)` while the baselines exposed
//! `simulate(&InferenceWorkload)` — two incompatible signatures that forced
//! every comparison harness to special-case the accelerator. [`SimRequest`]
//! merges the two inputs (the split becomes optional) so a single object-safe
//! [`Platform::simulate`] covers all platforms.

use crate::report::PerfReport;
use gcod_core::SplitWorkload;
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;
use std::fmt;

/// Input of one platform simulation: the inference workload, plus the GCoD
/// denser/sparser split for platforms that exploit it.
///
/// Baseline platforms only read [`SimRequest::workload`]; the GCoD
/// accelerator additionally requires [`SimRequest::split`] and fails with
/// [`PlatformError::MissingSplit`] when it is absent. When a split is
/// attached, the workload is expected to describe the *pruned* adjacency the
/// split was extracted from (`workload.layers[..].adjacency_nnz` consistent
/// with `split.total_nnz()`).
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// The per-layer inference workload to simulate.
    pub workload: InferenceWorkload,
    /// The GCoD denser/sparser adjacency split, when the workload went
    /// through the GCoD algorithm.
    pub split: Option<SplitWorkload>,
}

impl SimRequest {
    /// A request carrying only a workload (what baseline platforms consume).
    pub fn new(workload: InferenceWorkload) -> Self {
        Self {
            workload,
            split: None,
        }
    }

    /// A request carrying a workload plus the GCoD split it was derived from
    /// (what split-aware platforms such as the GCoD accelerator consume).
    pub fn with_split(workload: InferenceWorkload, split: SplitWorkload) -> Self {
        Self {
            workload,
            split: Some(split),
        }
    }

    /// Numeric precision of the request's workload.
    pub fn precision(&self) -> Precision {
        self.workload.precision
    }
}

/// Errors a platform simulation can report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A split-aware platform received a request without a GCoD split.
    MissingSplit {
        /// Name of the platform that required the split.
        platform: String,
    },
    /// The request is internally inconsistent for this platform.
    InvalidRequest {
        /// Name of the platform that rejected the request.
        platform: String,
        /// Why the request was rejected.
        context: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::MissingSplit { platform } => write!(
                f,
                "platform `{platform}` requires a GCoD split; build the request with \
                 SimRequest::with_split"
            ),
            PlatformError::InvalidRequest { platform, context } => {
                write!(f, "platform `{platform}` rejected the request: {context}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// A platform that can simulate an inference request.
///
/// The trait is object-safe: heterogeneous suites are iterated as
/// `Vec<Box<dyn Platform>>` (see `gcod_baselines::suite::all_platforms`).
/// Platform models are immutable data, so the contract demands
/// `Send + Sync` — a suite can move into a serving dispatcher thread and be
/// scored concurrently.
pub trait Platform: fmt::Debug + Send + Sync {
    /// Platform name as it appears in reports (e.g. "gcod", "pyg-cpu").
    fn name(&self) -> &str;

    /// Whether this platform consumes the GCoD split of a request.
    ///
    /// Suites use this to route the split-carrying request (with its pruned
    /// workload) to the accelerator and the plain full-graph request to the
    /// baselines.
    fn requires_split(&self) -> bool {
        false
    }

    /// The numeric precision this platform is built for, when it is fixed by
    /// the hardware (e.g. the INT8 GCoD variant). `None` means the platform
    /// simulates whatever precision the request's workload carries.
    fn native_precision(&self) -> Option<Precision> {
        None
    }

    /// Simulates one inference of `request` and reports latency, traffic and
    /// energy.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::MissingSplit`] when the platform
    /// [requires a split](Platform::requires_split) and the request carries
    /// none.
    fn simulate(&self, request: &SimRequest) -> crate::Result<PerfReport>;

    /// The scalar cost this platform predicts for `request`: its simulated
    /// end-to-end latency in milliseconds.
    ///
    /// This is the scoring surface multi-backend routers rank platforms by
    /// (see [`cheapest_platform`]); the default implementation simply runs
    /// [`simulate`](Platform::simulate) and reads the latency, and platform
    /// models with a cheaper closed-form estimate may override it.
    ///
    /// # Errors
    ///
    /// Propagates [`simulate`](Platform::simulate) failures.
    fn predicted_cost_ms(&self, request: &SimRequest) -> crate::Result<f64> {
        Ok(self.simulate(request)?.latency_ms)
    }
}

/// Routes a request across a heterogeneous platform suite: scores every
/// platform via [`Platform::predicted_cost_ms`] on the request `request_for`
/// assigns it (returning `None` skips the platform — e.g. a split-aware
/// accelerator when no split exists), then simulates only the winner and
/// returns its index and report, or `None` when no platform was eligible.
///
/// Scoring goes through the `predicted_cost_ms` hook — not `simulate`
/// directly — so a platform overriding it with a cheaper closed-form
/// estimate is both honoured and cheap to score; only the dispatched winner
/// pays for a full simulation. Ties break toward the earlier suite index,
/// so routing is deterministic for a fixed suite order.
///
/// # Errors
///
/// Propagates the first scoring failure of an eligible platform, or the
/// winner's simulation failure.
pub fn cheapest_platform<'r>(
    platforms: &[Box<dyn Platform>],
    request_for: impl Fn(&dyn Platform) -> Option<&'r SimRequest>,
) -> crate::Result<Option<(usize, PerfReport)>> {
    let mut best: Option<(usize, f64)> = None;
    for (index, platform) in platforms.iter().enumerate() {
        let Some(request) = request_for(platform.as_ref()) else {
            continue;
        };
        let cost = platform.predicted_cost_ms(request)?;
        let better = best
            .as_ref()
            .map(|&(_, incumbent)| cost < incumbent)
            .unwrap_or(true);
        if better {
            best = Some((index, cost));
        }
    }
    match best {
        Some((index, _)) => {
            let platform = &platforms[index];
            let request = request_for(platform.as_ref())
                .expect("winner was scored on a request request_for assigned it");
            Ok(Some((index, platform.simulate(request)?)))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;

    fn workload() -> InferenceWorkload {
        let g = GraphGenerator::new(3)
            .generate(&DatasetProfile::custom("req", 60, 200, 8, 2))
            .unwrap();
        InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32)
    }

    #[test]
    fn request_constructors_set_the_split() {
        let plain = SimRequest::new(workload());
        assert!(plain.split.is_none());
        assert_eq!(plain.precision(), Precision::Fp32);
    }

    #[test]
    fn missing_split_error_mentions_the_fix() {
        let err = PlatformError::MissingSplit {
            platform: "gcod".to_string(),
        };
        let text = err.to_string();
        assert!(text.contains("gcod"));
        assert!(text.contains("with_split"));
    }

    /// A platform reporting a fixed latency, optionally requiring a split.
    #[derive(Debug)]
    struct Fixed {
        name: &'static str,
        latency_ms: f64,
        needs_split: bool,
    }

    impl Fixed {
        fn new(name: &'static str, latency_ms: f64) -> Self {
            Self {
                name,
                latency_ms,
                needs_split: false,
            }
        }
    }

    impl Platform for Fixed {
        fn name(&self) -> &str {
            self.name
        }
        fn requires_split(&self) -> bool {
            self.needs_split
        }
        fn simulate(&self, request: &SimRequest) -> crate::Result<PerfReport> {
            Ok(PerfReport {
                platform: self.name().to_string(),
                dataset: request.workload.dataset.clone(),
                model: request.workload.model.clone(),
                latency_ms: self.latency_ms,
                cycles: 0,
                off_chip_bytes: 0,
                off_chip_accesses: 0,
                peak_bandwidth_gbps: 0.0,
                utilization: 1.0,
                energy: crate::energy::EnergyBreakdown::default(),
                traffic: crate::memory::TrafficCounter::new(),
            })
        }
    }

    #[test]
    fn platform_trait_is_object_safe() {
        let boxed: Box<dyn Platform> = Box::new(Fixed::new("fixed", 1.0));
        assert!(!boxed.requires_split());
        assert!(boxed.native_precision().is_none());
        let report = boxed.simulate(&SimRequest::new(workload())).unwrap();
        assert_eq!(report.platform, "fixed");
    }

    #[test]
    fn predicted_cost_defaults_to_simulated_latency() {
        let platform = Fixed::new("fixed", 2.5);
        let request = SimRequest::new(workload());
        let cost = platform.predicted_cost_ms(&request).unwrap();
        assert_eq!(cost, platform.simulate(&request).unwrap().latency_ms);
    }

    #[test]
    fn cheapest_platform_picks_the_lowest_cost() {
        let suite: Vec<Box<dyn Platform>> = vec![
            Box::new(Fixed::new("slow", 9.0)),
            Box::new(Fixed::new("fast", 0.5)),
            Box::new(Fixed::new("mid", 2.0)),
        ];
        let request = SimRequest::new(workload());
        let (index, report) = cheapest_platform(&suite, |_| Some(&request))
            .unwrap()
            .expect("at least one candidate");
        assert_eq!(index, 1);
        assert_eq!(report.platform, "fast");
    }

    #[test]
    fn cheapest_platform_honours_predicted_cost_overrides() {
        /// Reports a high simulated latency but advertises a low predicted
        /// cost — the router must trust the override, not raw simulation.
        #[derive(Debug)]
        struct Estimated;
        impl Platform for Estimated {
            fn name(&self) -> &str {
                "estimated"
            }
            fn predicted_cost_ms(&self, _request: &SimRequest) -> crate::Result<f64> {
                Ok(0.1)
            }
            fn simulate(&self, request: &SimRequest) -> crate::Result<PerfReport> {
                Fixed::new("estimated", 100.0).simulate(request)
            }
        }
        let suite: Vec<Box<dyn Platform>> =
            vec![Box::new(Fixed::new("plain", 1.0)), Box::new(Estimated)];
        let request = SimRequest::new(workload());
        let (index, report) = cheapest_platform(&suite, |_| Some(&request))
            .unwrap()
            .expect("candidates exist");
        assert_eq!(index, 1, "the predicted-cost override must win routing");
        // The dispatched winner still reports its full simulation.
        assert_eq!(report.latency_ms, 100.0);
    }

    #[test]
    fn cheapest_platform_skips_ineligible_and_breaks_ties_by_index() {
        let suite: Vec<Box<dyn Platform>> = vec![
            Box::new(Fixed::new("fastest-but-skipped", 0.1)),
            Box::new(Fixed::new("a", 1.0)),
            Box::new(Fixed::new("b", 1.0)),
        ];
        let request = SimRequest::new(workload());
        let (index, report) = cheapest_platform(&suite, |p| {
            (p.name() != "fastest-but-skipped").then_some(&request)
        })
        .unwrap()
        .expect("candidates remain");
        assert_eq!((index, report.platform.as_str()), (1, "a"));
        // No eligible platform at all: None, not an error.
        let routed = cheapest_platform(&suite, |_| None).unwrap();
        assert!(routed.is_none());
    }
}
