//! The [`Platform`] trait and its [`SimRequest`] input.
//!
//! Before this contract existed, the GCoD accelerator exposed
//! `simulate(&InferenceWorkload, &SplitWorkload)` while the baselines exposed
//! `simulate(&InferenceWorkload)` — two incompatible signatures that forced
//! every comparison harness to special-case the accelerator. [`SimRequest`]
//! merges the two inputs (the split becomes optional) so a single object-safe
//! [`Platform::simulate`] covers all platforms.

use crate::report::PerfReport;
use gcod_core::SplitWorkload;
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;
use std::fmt;

/// Input of one platform simulation: the inference workload, plus the GCoD
/// denser/sparser split for platforms that exploit it.
///
/// Baseline platforms only read [`SimRequest::workload`]; the GCoD
/// accelerator additionally requires [`SimRequest::split`] and fails with
/// [`PlatformError::MissingSplit`] when it is absent. When a split is
/// attached, the workload is expected to describe the *pruned* adjacency the
/// split was extracted from (`workload.layers[..].adjacency_nnz` consistent
/// with `split.total_nnz()`).
#[derive(Debug, Clone)]
pub struct SimRequest {
    /// The per-layer inference workload to simulate.
    pub workload: InferenceWorkload,
    /// The GCoD denser/sparser adjacency split, when the workload went
    /// through the GCoD algorithm.
    pub split: Option<SplitWorkload>,
}

impl SimRequest {
    /// A request carrying only a workload (what baseline platforms consume).
    pub fn new(workload: InferenceWorkload) -> Self {
        Self {
            workload,
            split: None,
        }
    }

    /// A request carrying a workload plus the GCoD split it was derived from
    /// (what split-aware platforms such as the GCoD accelerator consume).
    pub fn with_split(workload: InferenceWorkload, split: SplitWorkload) -> Self {
        Self {
            workload,
            split: Some(split),
        }
    }

    /// Numeric precision of the request's workload.
    pub fn precision(&self) -> Precision {
        self.workload.precision
    }
}

/// Errors a platform simulation can report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlatformError {
    /// A split-aware platform received a request without a GCoD split.
    MissingSplit {
        /// Name of the platform that required the split.
        platform: String,
    },
    /// The request is internally inconsistent for this platform.
    InvalidRequest {
        /// Name of the platform that rejected the request.
        platform: String,
        /// Why the request was rejected.
        context: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::MissingSplit { platform } => write!(
                f,
                "platform `{platform}` requires a GCoD split; build the request with \
                 SimRequest::with_split"
            ),
            PlatformError::InvalidRequest { platform, context } => {
                write!(f, "platform `{platform}` rejected the request: {context}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// A platform that can simulate an inference request.
///
/// The trait is object-safe: heterogeneous suites are iterated as
/// `Vec<Box<dyn Platform>>` (see `gcod_baselines::suite::all_platforms`).
pub trait Platform: fmt::Debug {
    /// Platform name as it appears in reports (e.g. "gcod", "pyg-cpu").
    fn name(&self) -> &str;

    /// Whether this platform consumes the GCoD split of a request.
    ///
    /// Suites use this to route the split-carrying request (with its pruned
    /// workload) to the accelerator and the plain full-graph request to the
    /// baselines.
    fn requires_split(&self) -> bool {
        false
    }

    /// The numeric precision this platform is built for, when it is fixed by
    /// the hardware (e.g. the INT8 GCoD variant). `None` means the platform
    /// simulates whatever precision the request's workload carries.
    fn native_precision(&self) -> Option<Precision> {
        None
    }

    /// Simulates one inference of `request` and reports latency, traffic and
    /// energy.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::MissingSplit`] when the platform
    /// [requires a split](Platform::requires_split) and the request carries
    /// none.
    fn simulate(&self, request: &SimRequest) -> crate::Result<PerfReport>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::ModelConfig;

    fn workload() -> InferenceWorkload {
        let g = GraphGenerator::new(3)
            .generate(&DatasetProfile::custom("req", 60, 200, 8, 2))
            .unwrap();
        InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32)
    }

    #[test]
    fn request_constructors_set_the_split() {
        let plain = SimRequest::new(workload());
        assert!(plain.split.is_none());
        assert_eq!(plain.precision(), Precision::Fp32);
    }

    #[test]
    fn missing_split_error_mentions_the_fix() {
        let err = PlatformError::MissingSplit {
            platform: "gcod".to_string(),
        };
        let text = err.to_string();
        assert!(text.contains("gcod"));
        assert!(text.contains("with_split"));
    }

    #[test]
    fn platform_trait_is_object_safe() {
        #[derive(Debug)]
        struct Fixed;
        impl Platform for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn simulate(&self, request: &SimRequest) -> crate::Result<PerfReport> {
                Ok(PerfReport {
                    platform: self.name().to_string(),
                    dataset: request.workload.dataset.clone(),
                    model: request.workload.model.clone(),
                    latency_ms: 1.0,
                    cycles: 0,
                    off_chip_bytes: 0,
                    off_chip_accesses: 0,
                    peak_bandwidth_gbps: 0.0,
                    utilization: 1.0,
                    energy: crate::energy::EnergyBreakdown::default(),
                    traffic: crate::memory::TrafficCounter::new(),
                })
            }
        }
        let boxed: Box<dyn Platform> = Box::new(Fixed);
        assert!(!boxed.requires_split());
        assert!(boxed.native_precision().is_none());
        let report = boxed.simulate(&SimRequest::new(workload())).unwrap();
        assert_eq!(report.platform, "fixed");
    }
}
