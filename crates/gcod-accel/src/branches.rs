//! The denser and sparser aggregation branches (Fig. 6).
//!
//! During aggregation the two branches run in parallel:
//!
//! * the **denser branch** processes the block-diagonal subgraphs with one
//!   chunk per degree class; its inputs are COO blocks and the combined
//!   features already resident in each chunk's buffers,
//! * the **sparser branch** processes the off-diagonal remainder from a CSC
//!   copy held on chip; the combined-feature rows it needs are fetched
//!   through query-based weight forwarding from the denser chunks when
//!   possible (≈63% of the time in the paper) and from HBM otherwise.
//!
//! Each function returns the branch's cycle count and accumulates its memory
//! traffic into the shared [`TrafficCounter`].

use crate::chunk::{allocate_chunks, denser_branch_cycles, ChunkAllocation};
use crate::config::AcceleratorConfig;
use crate::memory::{Phase, TrafficCounter};
use gcod_core::SplitWorkload;
use serde::{Deserialize, Serialize};

/// Cycle count and utilization of one branch for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchOutcome {
    /// Compute cycles on the branch's critical path.
    pub cycles: u64,
    /// PE utilization of the branch (work / capacity at the critical path).
    pub utilization: f64,
    /// MACs executed by the branch.
    pub macs: u64,
}

/// Simulates the denser branch for one layer.
///
/// `out_dim` is the output feature width of the layer (each adjacency
/// non-zero contributes `out_dim` MACs), `element_bytes` the per-scalar size.
/// Returns the branch outcome plus the chunk allocations used (needed for
/// reporting).
pub fn denser_branch(
    config: &AcceleratorConfig,
    split: &SplitWorkload,
    out_dim: usize,
    element_bytes: u64,
    traffic: &mut TrafficCounter,
) -> (BranchOutcome, Vec<ChunkAllocation>) {
    let nnz_per_class = split.nnz_per_class();
    let macs_per_class: Vec<u64> = nnz_per_class
        .iter()
        .map(|&nnz| nnz as u64 * out_dim as u64)
        .collect();
    // Bytes a chunk touches: its adjacency entries (8 bytes of indices +
    // value) plus the combined-feature rows of its blocks.
    let bytes_per_class: Vec<u64> =
        split
            .blocks
            .iter()
            .fold(vec![0u64; split.num_classes], |mut acc, block| {
                acc[block.class] += block.nnz as u64 * (8 + element_bytes)
                    + block.len as u64 * out_dim as u64 * element_bytes;
                acc
            });
    let allocations = allocate_chunks(config, &macs_per_class, &bytes_per_class);
    let (cycles, utilization) = denser_branch_cycles(&allocations);

    // Adjacency blocks are streamed from HBM once (COO), the combined
    // features they multiply are already on chip (written there by the
    // combination phase), and the partial outputs stay in the chunk output
    // buffers.
    let adjacency_bytes: u64 = split.denser_nnz as u64 * (8 + element_bytes);
    traffic.read_off_chip(Phase::Aggregation, adjacency_bytes);
    let feature_bytes_on_chip: u64 = bytes_per_class.iter().sum();
    traffic.move_on_chip(Phase::Aggregation, feature_bytes_on_chip);

    let total_macs: u64 = macs_per_class.iter().sum();
    (
        BranchOutcome {
            cycles,
            utilization,
            macs: total_macs,
        },
        allocations,
    )
}

/// Simulates the sparser branch for one layer.
pub fn sparser_branch(
    config: &AcceleratorConfig,
    split: &SplitWorkload,
    out_dim: usize,
    element_bytes: u64,
    traffic: &mut TrafficCounter,
) -> BranchOutcome {
    let macs = split.sparser_nnz as u64 * out_dim as u64;
    let pes = config.sparser_pes().max(1);
    let cycles = macs.div_ceil(pes as u64);

    // The CSC structure is compact enough to live on chip; it is read from
    // HBM once per layer.
    let csc_bytes =
        split.sparser_nnz as u64 * (4 + element_bytes) + (split.sparser.cols() as u64 + 1) * 8;
    traffic.read_off_chip(Phase::Aggregation, csc_bytes);

    // Combined-feature rows: under distributed aggregation each *column* of
    // the sparser adjacency consumes one row of `X·W`, reused by every
    // non-zero in that column, so the demand is bounded by the number of
    // (non-empty) columns rather than the non-zero count. The rows are served
    // either by weight forwarding (on-chip) or by HBM.
    let active_columns = (split.sparser_nnz as u64).min(split.sparser.cols() as u64);
    let weight_bytes = active_columns * out_dim as u64 * element_bytes;
    let forwarded = (weight_bytes as f64 * config.weight_forwarding_rate) as u64;
    traffic.move_on_chip(Phase::Aggregation, forwarded);
    traffic.read_off_chip(Phase::Aggregation, weight_bytes - forwarded);

    let utilization = if cycles == 0 {
        1.0
    } else {
        macs as f64 / (cycles as f64 * pes as f64)
    };
    BranchOutcome {
        cycles,
        utilization,
        macs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_core::{GcodConfig, SubgraphLayout};
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn split() -> SplitWorkload {
        let g = GraphGenerator::new(91)
            .generate(&DatasetProfile::custom("br", 300, 1200, 8, 4))
            .unwrap();
        let cfg = GcodConfig {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        let permuted = layout.apply(&g);
        SplitWorkload::extract(permuted.adjacency(), &layout)
    }

    #[test]
    fn denser_branch_macs_match_split() {
        let s = split();
        let cfg = AcceleratorConfig::small_test();
        let mut traffic = TrafficCounter::new();
        let (outcome, allocations) = denser_branch(&cfg, &s, 16, 4, &mut traffic);
        assert_eq!(outcome.macs, s.denser_nnz as u64 * 16);
        assert_eq!(allocations.len(), s.num_classes);
        assert!(outcome.cycles > 0);
        assert!(outcome.utilization > 0.3);
        assert!(traffic.off_chip_read_aggregation > 0);
    }

    #[test]
    fn sparser_branch_macs_match_split() {
        let s = split();
        let cfg = AcceleratorConfig::small_test();
        let mut traffic = TrafficCounter::new();
        let outcome = sparser_branch(&cfg, &s, 16, 4, &mut traffic);
        assert_eq!(outcome.macs, s.sparser_nnz as u64 * 16);
        assert!(outcome.utilization > 0.5);
    }

    #[test]
    fn weight_forwarding_reduces_off_chip_traffic() {
        let s = split();
        let mut with_fw = AcceleratorConfig::small_test();
        with_fw.weight_forwarding_rate = 0.63;
        let mut without_fw = AcceleratorConfig::small_test();
        without_fw.weight_forwarding_rate = 0.0;
        let mut t1 = TrafficCounter::new();
        let mut t2 = TrafficCounter::new();
        sparser_branch(&with_fw, &s, 16, 4, &mut t1);
        sparser_branch(&without_fw, &s, 16, 4, &mut t2);
        assert!(
            t1.off_chip_read_aggregation < t2.off_chip_read_aggregation,
            "forwarding must cut HBM reads"
        );
        assert!(t1.on_chip_aggregation > t2.on_chip_aggregation);
    }

    #[test]
    fn branches_scale_with_output_width() {
        let s = split();
        let cfg = AcceleratorConfig::small_test();
        let mut t = TrafficCounter::new();
        let narrow = sparser_branch(&cfg, &s, 8, 4, &mut t).cycles;
        let wide = sparser_branch(&cfg, &s, 64, 4, &mut t).cycles;
        assert!(wide > narrow);
    }

    #[test]
    fn more_pes_fewer_cycles() {
        let s = split();
        let small = AcceleratorConfig::small_test();
        let big = AcceleratorConfig::vcu128();
        let mut t = TrafficCounter::new();
        let (slow, _) = denser_branch(&small, &s, 16, 4, &mut t);
        let (fast, _) = denser_branch(&big, &s, 16, 4, &mut t);
        assert!(fast.cycles <= slow.cycles);
    }
}
