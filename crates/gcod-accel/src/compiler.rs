//! The software/hardware interface of Fig. 8: reconfigurability.
//!
//! GCoD supports new tasks after deployment through a one-time hardware
//! compilation step: a network parser extracts the layer dimensions of the
//! GCN, the compiler fills the parameterised C/Verilog templates (number of
//! chunks, PEs per chunk, buffer sizes), and the resulting configuration is
//! handed to the platform tools for bitstream generation. This module
//! reproduces that flow as a [`HardwareCompiler`] that maps a model + GCoD
//! split onto a [`crate::config::AcceleratorConfig`]-compatible resource plan
//! and checks it against the FPGA budget.

use crate::chunk::{allocate_chunks, ChunkAllocation};
use crate::config::AcceleratorConfig;
use gcod_core::SplitWorkload;
use gcod_nn::models::ModelConfig;
use serde::{Deserialize, Serialize};

/// The layer dimensions the network parser extracts from a GCN description
/// (Fig. 8's "Aggregation, Combination, Partition, FC, N, M, F, H, O").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedNetwork {
    /// Model name.
    pub model: String,
    /// Number of nodes `N`.
    pub nodes: usize,
    /// Number of directed edges `M`.
    pub edges: usize,
    /// Input feature dimension `F`.
    pub input_dim: usize,
    /// Hidden dimension `H`.
    pub hidden_dim: usize,
    /// Output dimension `O`.
    pub output_dim: usize,
    /// Per-layer `(in, out)` dimensions.
    pub layer_dims: Vec<(usize, usize)>,
}

/// Parses a model configuration plus graph statistics into the quantities the
/// hardware compiler consumes.
pub fn parse_network(config: &ModelConfig, nodes: usize, edges: usize) -> ParsedNetwork {
    ParsedNetwork {
        model: config.kind.name().to_string(),
        nodes,
        edges,
        input_dim: config.input_dim,
        hidden_dim: config.effective_hidden_dim(),
        output_dim: config.output_dim,
        layer_dims: config.layer_dims(),
    }
}

/// FPGA resource budget the compiled design must fit (VCU128 by default).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Available DSP slices.
    pub dsps: usize,
    /// Available on-chip memory in bytes (BRAM + URAM).
    pub on_chip_bytes: u64,
    /// DSPs consumed per PE at the configured precision.
    pub dsps_per_pe: f64,
}

impl ResourceBudget {
    /// The Xilinx VCU128 board used by the paper: 9024 DSPs, 42 MB on-chip.
    pub fn vcu128() -> Self {
        Self {
            dsps: 9_024,
            on_chip_bytes: 42 * 1024 * 1024,
            dsps_per_pe: 2.0,
        }
    }

    /// The same board with INT8 PEs (the paper notes 10240 PEs ≈ 5200 DSPs,
    /// i.e. roughly half a DSP per PE).
    pub fn vcu128_int8() -> Self {
        Self {
            dsps_per_pe: 0.5,
            ..Self::vcu128()
        }
    }
}

/// One filled-in hardware template parameter, as it would appear in the
/// generated configuration header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemplateParameter {
    /// Parameter name (e.g. `NUM_CHUNKS`).
    pub name: String,
    /// Value.
    pub value: u64,
}

/// The compiled hardware plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompiledDesign {
    /// Number of denser-branch chunks (= degree classes).
    pub num_chunks: usize,
    /// PEs per chunk, plus the sparser-branch engine as the last entry.
    pub pes_per_engine: Vec<usize>,
    /// Buffer bytes per engine (same ordering).
    pub buffer_bytes_per_engine: Vec<u64>,
    /// Estimated DSP usage.
    pub dsps_used: usize,
    /// Estimated on-chip memory usage in bytes.
    pub on_chip_bytes_used: u64,
    /// Whether the design fits the budget.
    pub fits: bool,
    /// The filled template parameters, ready to be emitted into the code
    /// templates of Fig. 8.
    pub parameters: Vec<TemplateParameter>,
}

impl CompiledDesign {
    /// DSP utilization fraction of the budget.
    pub fn dsp_utilization(&self, budget: &ResourceBudget) -> f64 {
        self.dsps_used as f64 / budget.dsps.max(1) as f64
    }

    /// Renders the parameters as a `name = value` listing (the text that
    /// would be substituted into the C/Verilog templates).
    pub fn render_parameters(&self) -> String {
        self.parameters
            .iter()
            .map(|p| format!("{} = {}", p.name, p.value))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The hardware compiler of Fig. 8.
#[derive(Debug, Clone)]
pub struct HardwareCompiler {
    accelerator: AcceleratorConfig,
    budget: ResourceBudget,
}

impl HardwareCompiler {
    /// Creates a compiler targeting `accelerator` within `budget`.
    pub fn new(accelerator: AcceleratorConfig, budget: ResourceBudget) -> Self {
        Self {
            accelerator,
            budget,
        }
    }

    /// Compiler for the paper's default VCU128 configuration.
    pub fn vcu128() -> Self {
        Self::new(AcceleratorConfig::vcu128(), ResourceBudget::vcu128())
    }

    /// Compiles a parsed network plus its GCoD workload split into a concrete
    /// resource plan. This is the per-task, one-time reconfiguration step.
    pub fn compile(&self, network: &ParsedNetwork, split: &SplitWorkload) -> CompiledDesign {
        // The widest layer drives the per-non-zero aggregation work.
        let max_out_dim = network
            .layer_dims
            .iter()
            .map(|&(_, out)| out)
            .max()
            .unwrap_or(network.output_dim)
            .max(1);
        let element_bytes = self.accelerator.precision.bytes() as u64;

        let nnz_per_class = split.nnz_per_class();
        let macs_per_class: Vec<u64> = nnz_per_class
            .iter()
            .map(|&n| n as u64 * max_out_dim as u64)
            .collect();
        let bytes_per_class: Vec<u64> =
            split
                .blocks
                .iter()
                .fold(vec![0u64; split.num_classes], |mut acc, b| {
                    acc[b.class] += b.nnz as u64 * (8 + element_bytes)
                        + b.len as u64 * max_out_dim as u64 * element_bytes;
                    acc
                });
        let chunks: Vec<ChunkAllocation> =
            allocate_chunks(&self.accelerator, &macs_per_class, &bytes_per_class);

        let mut pes_per_engine: Vec<usize> = chunks.iter().map(|c| c.pes).collect();
        let mut buffer_bytes: Vec<u64> = chunks.iter().map(|c| c.buffer_bytes).collect();
        // The sparser branch is one more engine with the remaining PEs and a
        // quarter of the on-chip memory (it keeps its CSC workload resident).
        pes_per_engine.push(self.accelerator.sparser_pes());
        buffer_bytes.push(self.accelerator.on_chip_bytes / 4);

        let total_pes: usize = pes_per_engine.iter().sum();
        let dsps_used = (total_pes as f64 * self.budget.dsps_per_pe).ceil() as usize;
        let on_chip_used: u64 = buffer_bytes.iter().sum();
        let fits = dsps_used <= self.budget.dsps && on_chip_used <= self.budget.on_chip_bytes;

        let mut parameters = vec![
            TemplateParameter {
                name: "NUM_CHUNKS".to_string(),
                value: chunks.len() as u64,
            },
            TemplateParameter {
                name: "NUM_NODES".to_string(),
                value: network.nodes as u64,
            },
            TemplateParameter {
                name: "NUM_EDGES".to_string(),
                value: network.edges as u64,
            },
            TemplateParameter {
                name: "FEATURE_DIM".to_string(),
                value: network.input_dim as u64,
            },
            TemplateParameter {
                name: "HIDDEN_DIM".to_string(),
                value: network.hidden_dim as u64,
            },
            TemplateParameter {
                name: "OUTPUT_DIM".to_string(),
                value: network.output_dim as u64,
            },
            TemplateParameter {
                name: "PRECISION_BITS".to_string(),
                value: element_bytes * 8,
            },
        ];
        for (i, (&pes, &buf)) in pes_per_engine.iter().zip(&buffer_bytes).enumerate() {
            let engine = if i < chunks.len() {
                format!("CHUNK{i}")
            } else {
                "SPARSER".to_string()
            };
            parameters.push(TemplateParameter {
                name: format!("{engine}_PES"),
                value: pes as u64,
            });
            parameters.push(TemplateParameter {
                name: format!("{engine}_BUFFER_BYTES"),
                value: buf,
            });
        }

        CompiledDesign {
            num_chunks: chunks.len(),
            pes_per_engine,
            buffer_bytes_per_engine: buffer_bytes,
            dsps_used,
            on_chip_bytes_used: on_chip_used,
            fits,
            parameters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_core::{GcodConfig, SplitWorkload, SubgraphLayout};
    use gcod_graph::{DatasetProfile, GraphGenerator};
    use gcod_nn::models::{ModelConfig, ModelKind};

    fn setup() -> (ParsedNetwork, SplitWorkload) {
        let g = GraphGenerator::new(111)
            .generate(&DatasetProfile::custom("compile", 400, 1600, 32, 4))
            .unwrap();
        let cfg = GcodConfig {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        let permuted = layout.apply(&g);
        let split = SplitWorkload::extract(permuted.adjacency(), &layout);
        let model_cfg = ModelConfig::for_kind(ModelKind::Gcn, &permuted);
        let network = parse_network(&model_cfg, permuted.num_nodes(), permuted.num_edges());
        (network, split)
    }

    #[test]
    fn parser_extracts_dimensions() {
        let (network, _) = setup();
        assert_eq!(network.model, "gcn");
        assert_eq!(network.nodes, 400);
        assert_eq!(network.input_dim, 32);
        assert_eq!(network.layer_dims.len(), 2);
        assert_eq!(network.layer_dims[0].0, 32);
        assert_eq!(network.layer_dims[1].1, 4);
    }

    #[test]
    fn compiled_design_fits_the_vcu128() {
        let (network, split) = setup();
        let design = HardwareCompiler::vcu128().compile(&network, &split);
        assert!(design.fits, "paper configuration must fit its own board");
        assert_eq!(design.num_chunks, split.num_classes);
        // One engine per chunk plus the sparser branch.
        assert_eq!(design.pes_per_engine.len(), design.num_chunks + 1);
        assert!(design.dsps_used > 0);
        assert!(design.dsp_utilization(&ResourceBudget::vcu128()) <= 1.0);
    }

    #[test]
    fn int8_budget_affords_more_pes_per_dsp() {
        let (network, split) = setup();
        let fp32 = HardwareCompiler::new(AcceleratorConfig::vcu128(), ResourceBudget::vcu128())
            .compile(&network, &split);
        let int8 = HardwareCompiler::new(
            AcceleratorConfig::vcu128_int8(),
            ResourceBudget::vcu128_int8(),
        )
        .compile(&network, &split);
        let fp32_total: usize = fp32.pes_per_engine.iter().sum();
        let int8_total: usize = int8.pes_per_engine.iter().sum();
        assert!(int8_total > fp32_total);
        assert!(int8.fits, "the 8-bit design must also fit (≈5200 DSPs)");
        assert!(int8.dsps_used < 6_000);
    }

    #[test]
    fn tiny_budget_is_rejected() {
        let (network, split) = setup();
        let compiler = HardwareCompiler::new(
            AcceleratorConfig::vcu128(),
            ResourceBudget {
                dsps: 10,
                on_chip_bytes: 1024,
                dsps_per_pe: 2.0,
            },
        );
        let design = compiler.compile(&network, &split);
        assert!(!design.fits);
    }

    #[test]
    fn template_parameters_are_rendered() {
        let (network, split) = setup();
        let design = HardwareCompiler::vcu128().compile(&network, &split);
        let rendered = design.render_parameters();
        assert!(rendered.contains("NUM_CHUNKS = 2"));
        assert!(rendered.contains("HIDDEN_DIM = 16"));
        assert!(rendered.contains("SPARSER_PES ="));
        assert!(rendered.contains("CHUNK0_BUFFER_BYTES ="));
        assert!(rendered.contains("PRECISION_BITS = 32"));
    }

    #[test]
    fn recompiling_for_a_wider_task_changes_the_parameters() {
        // Reconfigurability: a different task (different hidden width) yields
        // a different filled template, without touching the hardware model.
        let (network, split) = setup();
        let compiler = HardwareCompiler::vcu128();
        let base = compiler.compile(&network, &split);
        let mut wider = network.clone();
        wider.hidden_dim = 256;
        wider.layer_dims = vec![(wider.input_dim, 256), (256, wider.output_dim)];
        let recompiled = compiler.compile(&wider, &split);
        assert_ne!(base.parameters, recompiled.parameters);
        assert_eq!(base.num_chunks, recompiled.num_chunks);
    }
}
