//! Top-level GCoD accelerator simulator.
//!
//! The simulator walks the per-layer [`InferenceWorkload`], models the
//! combination phase on the full PE array and the aggregation phase on the
//! two parallel branches, applies the roofline constraint against the HBM
//! bandwidth, and accumulates traffic and energy into a [`PerfReport`].

use crate::branches::{denser_branch, sparser_branch};
use crate::config::AcceleratorConfig;
use crate::pipeline::plan_layer;
use gcod_core::SplitWorkload;
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;
use gcod_platform::energy::{EnergyBreakdown, EnergyModel};
use gcod_platform::memory::{Phase, TrafficCounter};
use gcod_platform::report::PerfReport;
use gcod_platform::{Platform, PlatformError, SimRequest};

/// The GCoD two-pronged accelerator.
#[derive(Debug, Clone)]
pub struct GcodAccelerator {
    config: AcceleratorConfig,
    energy_model: EnergyModel,
}

impl GcodAccelerator {
    /// Creates an accelerator instance from a hardware configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        let energy_model = match config.precision {
            Precision::Fp32 => EnergyModel::default(),
            Precision::Int16 => EnergyModel::default().with_precision_scale(0.5),
            Precision::Int8 => EnergyModel::default().with_precision_scale(0.25),
        };
        Self {
            config,
            energy_model,
        }
    }

    /// The hardware configuration.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Simulates one full inference of `workload` whose adjacency has been
    /// split into `split` by the GCoD algorithm.
    ///
    /// This is the split-mandatory entry point backing the [`Platform`]
    /// implementation; prefer [`Platform::simulate`] with a
    /// [`SimRequest`] when treating the accelerator uniformly with the
    /// baseline platforms.
    pub fn simulate_split(
        &self,
        workload: &InferenceWorkload,
        split: &SplitWorkload,
    ) -> PerfReport {
        let mut traffic = TrafficCounter::new();
        let mut total_cycles = 0u64;
        let mut utilization_acc = 0.0f64;
        let mut utilization_samples = 0usize;
        let mut peak_bandwidth: f64 = 0.0;
        let element_bytes = self.config.precision.bytes() as u64;
        let cycle_seconds = self.config.cycle_ns() * 1e-9;

        // Predefined resource allocation (Sec. V-B): the sparser branch gets a
        // PE share proportional to its share of the aggregation non-zeros, so
        // both branches finish at a similar pace.
        let total_nnz = split.total_nnz().max(1);
        let sparser_share = (split.sparser_nnz as f64 / total_nnz as f64).clamp(0.05, 0.5);
        let branch_config = AcceleratorConfig {
            sparser_pe_fraction: sparser_share,
            ..self.config.clone()
        };

        for layer in &workload.layers {
            let plan = plan_layer(&self.config, layer);

            // ---- Combination phase: dense/sparse X · W on the whole array.
            let comb_macs = layer.combination_macs;
            let comb_compute_cycles = comb_macs.div_ceil(self.config.num_pes as u64);
            // Input features: first layer streams them from HBM (scaled by
            // their density since zero rows are skipped), later layers reuse
            // the previous layer's output which the pipeline kept on chip
            // unless it spilled.
            let input_bytes = if layer.index == 0 {
                (layer.input_feature_bytes as f64 * workload.feature_density.max(0.001)) as u64
            } else if plan.output_spills {
                layer.input_feature_bytes
            } else {
                0
            };
            traffic.read_off_chip(Phase::Combination, input_bytes);
            // Weights are small and fetched once per layer.
            traffic.read_off_chip(Phase::Combination, layer.weight_bytes);
            // The combined features land in the chunk buffers (on-chip) or
            // spill when the efficiency-aware buffer cannot hold them.
            if plan.output_spills {
                traffic.write_off_chip(Phase::Combination, layer.intermediate_bytes);
            } else {
                traffic.move_on_chip(Phase::Combination, layer.intermediate_bytes);
            }
            let comb_offchip = input_bytes
                + layer.weight_bytes
                + if plan.output_spills {
                    layer.intermediate_bytes
                } else {
                    0
                };
            let comb_memory_cycles = bytes_to_cycles(
                comb_offchip,
                self.config.off_chip_bytes_per_second(),
                cycle_seconds,
            );
            let comb_cycles = comb_compute_cycles.max(comb_memory_cycles);

            // ---- Aggregation phase: both branches in parallel.
            let (denser, _allocs) = denser_branch(
                &branch_config,
                split,
                layer.out_dim,
                element_bytes,
                &mut traffic,
            );
            let sparser = sparser_branch(
                &branch_config,
                split,
                layer.out_dim,
                element_bytes,
                &mut traffic,
            );
            // Resource-aware pipelines re-stream the combined features.
            if plan.extra_feature_reads > 0 {
                traffic.read_off_chip(Phase::Aggregation, plan.extra_feature_reads);
            }
            // Aggregation outputs: kept on chip when the plan allows it,
            // written back otherwise (and always written back for the final
            // layer's logits, which are tiny).
            if plan.output_spills {
                traffic.write_off_chip(Phase::Aggregation, layer.output_feature_bytes);
            } else {
                traffic.move_on_chip(Phase::Aggregation, layer.output_feature_bytes);
            }
            let agg_compute_cycles = denser.cycles.max(sparser.cycles);
            let forwarding_miss_bytes = ((split.sparser_nnz as u64)
                .min(split.sparser.cols() as u64)
                * layer.out_dim as u64
                * element_bytes) as f64
                * (1.0 - self.config.weight_forwarding_rate);
            let agg_offchip_this_layer = split.denser_nnz as u64 * (8 + element_bytes)
                + split.sparser_nnz as u64 * (4 + element_bytes)
                + forwarding_miss_bytes as u64
                + plan.extra_feature_reads
                + if plan.output_spills {
                    layer.output_feature_bytes
                } else {
                    0
                };
            let agg_memory_cycles = bytes_to_cycles(
                agg_offchip_this_layer,
                self.config.off_chip_bytes_per_second(),
                cycle_seconds,
            );
            let agg_cycles = agg_compute_cycles.max(agg_memory_cycles);

            // Per-layer peak bandwidth *requirement*: the bandwidth needed to
            // keep the PEs busy, i.e. phase traffic over the phase's
            // compute-only time (Fig. 11 (a) plots this demand, which can
            // exceed what the board provides).
            for (bytes, cycles) in [
                (comb_offchip, comb_compute_cycles),
                (agg_offchip_this_layer, agg_compute_cycles),
            ] {
                if cycles > 0 {
                    let seconds = cycles as f64 * cycle_seconds;
                    peak_bandwidth = peak_bandwidth.max(bytes as f64 / seconds / 1.0e9);
                }
            }

            total_cycles += comb_cycles + agg_cycles;
            let layer_util = {
                let compute = comb_compute_cycles + agg_compute_cycles;
                let wall = comb_cycles + agg_cycles;
                if wall == 0 {
                    1.0
                } else {
                    (compute as f64 / wall as f64)
                        * (denser.utilization + sparser.utilization + 1.0)
                        / 3.0
                }
            };
            utilization_acc += layer_util;
            utilization_samples += 1;
        }

        let latency_ms = total_cycles as f64 * cycle_seconds * 1.0e3;
        let energy = EnergyBreakdown::from_counts(
            &self.energy_model,
            workload.combination_macs(),
            workload.aggregation_macs(),
            &traffic,
        );
        PerfReport {
            platform: self.config.name.clone(),
            dataset: workload.dataset.clone(),
            model: workload.model.clone(),
            latency_ms,
            cycles: total_cycles,
            off_chip_bytes: traffic.total_off_chip(),
            off_chip_accesses: traffic.off_chip_accesses(64),
            peak_bandwidth_gbps: peak_bandwidth,
            utilization: if utilization_samples == 0 {
                0.0
            } else {
                (utilization_acc / utilization_samples as f64).min(1.0)
            },
            energy,
            traffic,
        }
    }
}

impl Platform for GcodAccelerator {
    fn name(&self) -> &str {
        &self.config.name
    }

    fn requires_split(&self) -> bool {
        true
    }

    fn native_precision(&self) -> Option<Precision> {
        Some(self.config.precision)
    }

    fn simulate(&self, request: &SimRequest) -> gcod_platform::Result<PerfReport> {
        let split = request
            .split
            .as_ref()
            .ok_or_else(|| PlatformError::MissingSplit {
                platform: self.config.name.clone(),
            })?;
        Ok(self.simulate_split(&request.workload, split))
    }
}

fn bytes_to_cycles(bytes: u64, bytes_per_second: f64, cycle_seconds: f64) -> u64 {
    if bytes == 0 || bytes_per_second <= 0.0 {
        return 0;
    }
    let seconds = bytes as f64 / bytes_per_second;
    (seconds / cycle_seconds).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_core::{GcodConfig, Polarizer, SubgraphLayout};
    use gcod_graph::{DatasetProfile, Graph, GraphGenerator};
    use gcod_nn::models::ModelConfig;
    use gcod_nn::workload::InferenceWorkload;

    fn setup() -> (Graph, SplitWorkload, InferenceWorkload) {
        let g = GraphGenerator::new(101)
            .generate(&DatasetProfile::custom("sim", 400, 1600, 32, 4))
            .unwrap();
        let cfg = GcodConfig {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        let permuted = layout.apply(&g);
        let split = SplitWorkload::extract(permuted.adjacency(), &layout);
        let workload =
            InferenceWorkload::build(&permuted, &ModelConfig::gcn(&permuted), Precision::Fp32);
        (permuted, split, workload)
    }

    #[test]
    fn simulation_produces_positive_metrics() {
        let (_, split, workload) = setup();
        let report =
            GcodAccelerator::new(AcceleratorConfig::vcu128()).simulate_split(&workload, &split);
        assert!(report.latency_ms > 0.0);
        assert!(report.cycles > 0);
        assert!(report.off_chip_bytes > 0);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        assert!(report.energy_joules() > 0.0);
        assert_eq!(report.platform, "gcod");
    }

    #[test]
    fn int8_variant_is_faster_and_moves_fewer_bytes() {
        let g = GraphGenerator::new(103)
            .generate(&DatasetProfile::custom("sim8", 400, 1600, 32, 4))
            .unwrap();
        let cfg = GcodConfig::default();
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        let permuted = layout.apply(&g);
        let split = SplitWorkload::extract(permuted.adjacency(), &layout);
        let fp32_w =
            InferenceWorkload::build(&permuted, &ModelConfig::gcn(&permuted), Precision::Fp32);
        let int8_w =
            InferenceWorkload::build(&permuted, &ModelConfig::gcn(&permuted), Precision::Int8);
        let fp32 =
            GcodAccelerator::new(AcceleratorConfig::vcu128()).simulate_split(&fp32_w, &split);
        let int8 =
            GcodAccelerator::new(AcceleratorConfig::vcu128_int8()).simulate_split(&int8_w, &split);
        assert!(int8.latency_ms <= fp32.latency_ms);
        assert!(int8.off_chip_bytes < fp32.off_chip_bytes);
    }

    #[test]
    fn pruned_split_is_faster_than_full_split() {
        let g = GraphGenerator::new(105)
            .generate(&DatasetProfile::custom("simp", 400, 1600, 32, 4))
            .unwrap();
        let cfg = GcodConfig {
            prune_ratio: 0.3,
            polarization_weight: 1.0,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        let permuted = layout.apply(&g);
        let full_split = SplitWorkload::extract(permuted.adjacency(), &layout);
        let (tuned, _) = Polarizer::new(cfg)
            .tune(permuted.adjacency(), &layout)
            .unwrap();
        let pruned_split = SplitWorkload::extract(&tuned, &layout);
        let model_cfg = ModelConfig::gcn(&permuted);
        let accel = GcodAccelerator::new(AcceleratorConfig::small_test());
        let full_w = InferenceWorkload::build(&permuted, &model_cfg, Precision::Fp32);
        let pruned_w = InferenceWorkload::build_with_adjacency_nnz(
            &permuted,
            &model_cfg,
            Precision::Fp32,
            pruned_split.total_nnz(),
        );
        let full = accel.simulate_split(&full_w, &full_split);
        let pruned = accel.simulate_split(&pruned_w, &pruned_split);
        assert!(pruned.cycles <= full.cycles);
        assert!(pruned.off_chip_bytes <= full.off_chip_bytes);
    }

    #[test]
    fn bigger_accelerator_is_not_slower() {
        let (_, split, workload) = setup();
        let small =
            GcodAccelerator::new(AcceleratorConfig::small_test()).simulate_split(&workload, &split);
        let big =
            GcodAccelerator::new(AcceleratorConfig::vcu128()).simulate_split(&workload, &split);
        assert!(big.latency_ms <= small.latency_ms);
    }

    #[test]
    fn peak_bandwidth_requirement_is_positive() {
        let (_, split, workload) = setup();
        let report =
            GcodAccelerator::new(AcceleratorConfig::vcu128()).simulate_split(&workload, &split);
        assert!(report.peak_bandwidth_gbps > 0.0);
    }

    #[test]
    fn energy_has_both_phases() {
        let (_, split, workload) = setup();
        let report =
            GcodAccelerator::new(AcceleratorConfig::vcu128()).simulate_split(&workload, &split);
        assert!(report.energy.combination_total() > 0.0);
        assert!(report.energy.aggregation_total() > 0.0);
    }
}
