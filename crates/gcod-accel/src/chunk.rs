//! Chunk-based sub-accelerators and proportional resource allocation.
//!
//! The denser branch consists of one sub-accelerator ("chunk") per degree
//! class. Resources are allocated proportionally to each chunk's workload
//! (Sec. V-B): PEs in proportion to the MAC count, on-chip memory and
//! off-chip bandwidth in proportion to the data footprint. Because the GCoD
//! algorithm already balanced the subgraphs inside every class, this static
//! allocation achieves workload balance without AWB-GCN-style runtime
//! autotuning.

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Resources granted to one chunk (sub-accelerator).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkAllocation {
    /// Degree class this chunk serves.
    pub class: usize,
    /// Number of PEs.
    pub pes: usize,
    /// On-chip buffer bytes.
    pub buffer_bytes: u64,
    /// Off-chip bandwidth share in GB/s.
    pub bandwidth_gbps: f64,
    /// MACs assigned to this chunk (its share of the denser workload).
    pub assigned_macs: u64,
    /// Bytes of features/weights this chunk touches.
    pub assigned_bytes: u64,
}

impl ChunkAllocation {
    /// Ideal compute time of this chunk in cycles (MACs / PEs).
    pub fn compute_cycles(&self) -> u64 {
        if self.pes == 0 {
            return u64::MAX;
        }
        self.assigned_macs.div_ceil(self.pes as u64)
    }
}

/// Allocates the denser-branch resources across one chunk per class,
/// proportionally to each class's MAC and byte workload.
///
/// `macs_per_class` and `bytes_per_class` must have the same length (the
/// number of classes). Every chunk receives at least one PE and a minimal
/// buffer so that empty classes do not divide by zero.
pub fn allocate_chunks(
    config: &AcceleratorConfig,
    macs_per_class: &[u64],
    bytes_per_class: &[u64],
) -> Vec<ChunkAllocation> {
    assert_eq!(
        macs_per_class.len(),
        bytes_per_class.len(),
        "per-class workload vectors must align"
    );
    let classes = macs_per_class.len();
    if classes == 0 {
        return Vec::new();
    }
    let denser_pes = config.denser_pes();
    // Reserve a slice of the on-chip memory for the sparser branch (it keeps
    // its CSC workload resident); the rest is shared by the chunks.
    let denser_bytes = (config.on_chip_bytes as f64 * 0.75) as u64;
    let denser_bw = config.off_chip_gbps * 0.75;

    let total_macs: u64 = macs_per_class.iter().sum::<u64>().max(1);
    let total_bytes: u64 = bytes_per_class.iter().sum::<u64>().max(1);

    let mut allocations: Vec<ChunkAllocation> = (0..classes)
        .map(|class| {
            let mac_share = macs_per_class[class] as f64 / total_macs as f64;
            let byte_share = bytes_per_class[class] as f64 / total_bytes as f64;
            ChunkAllocation {
                class,
                pes: ((denser_pes as f64 * mac_share) as usize).max(1),
                buffer_bytes: ((denser_bytes as f64 * byte_share) as u64).max(1024),
                bandwidth_gbps: (denser_bw * byte_share).max(0.1),
                assigned_macs: macs_per_class[class],
                assigned_bytes: bytes_per_class[class],
            }
        })
        .collect();

    // Fix up rounding so the PE total never exceeds the budget.
    let mut used: usize = allocations.iter().map(|a| a.pes).sum();
    while used > denser_pes {
        if let Some(max) = allocations.iter_mut().max_by_key(|a| a.pes) {
            if max.pes > 1 {
                max.pes -= 1;
                used -= 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    allocations
}

/// The denser branch finishes when its slowest chunk finishes; this returns
/// that critical-path cycle count together with the utilization it implies
/// (1.0 = perfectly balanced chunks).
pub fn denser_branch_cycles(allocations: &[ChunkAllocation]) -> (u64, f64) {
    if allocations.is_empty() {
        return (0, 1.0);
    }
    let cycles: Vec<u64> = allocations
        .iter()
        .map(ChunkAllocation::compute_cycles)
        .collect();
    let critical = cycles.iter().copied().max().unwrap_or(0);
    if critical == 0 {
        return (0, 1.0);
    }
    let total_work: u64 = allocations.iter().map(|a| a.assigned_macs).sum();
    let total_capacity: u64 = allocations
        .iter()
        .map(|a| a.pes as u64 * critical)
        .sum::<u64>()
        .max(1);
    (critical, total_work as f64 / total_capacity as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AcceleratorConfig {
        AcceleratorConfig::small_test()
    }

    #[test]
    fn allocation_is_proportional_to_macs() {
        let cfg = config();
        let allocs = allocate_chunks(&cfg, &[300, 100], &[3000, 1000]);
        assert_eq!(allocs.len(), 2);
        assert!(allocs[0].pes > allocs[1].pes);
        assert!(allocs[0].buffer_bytes > allocs[1].buffer_bytes);
        assert!(allocs[0].bandwidth_gbps > allocs[1].bandwidth_gbps);
        let total_pes: usize = allocs.iter().map(|a| a.pes).sum();
        assert!(total_pes <= cfg.denser_pes());
    }

    #[test]
    fn every_chunk_gets_minimum_resources() {
        let cfg = config();
        let allocs = allocate_chunks(&cfg, &[1000, 0], &[1000, 0]);
        assert!(allocs[1].pes >= 1);
        assert!(allocs[1].buffer_bytes >= 1024);
    }

    #[test]
    fn balanced_workloads_yield_high_utilization() {
        let cfg = config();
        let allocs = allocate_chunks(&cfg, &[500, 500], &[500, 500]);
        let (_, utilization) = denser_branch_cycles(&allocs);
        assert!(utilization > 0.9, "utilization {utilization}");
    }

    #[test]
    fn imbalanced_workloads_with_proportional_allocation_stay_balanced() {
        // Proportional allocation is the whole point: even a 4:1 imbalance in
        // workload should keep the chunks finishing around the same time.
        let cfg = AcceleratorConfig::vcu128();
        let allocs = allocate_chunks(&cfg, &[4_000_000, 1_000_000], &[4_000_000, 1_000_000]);
        let (_, utilization) = denser_branch_cycles(&allocs);
        assert!(utilization > 0.8, "utilization {utilization}");
    }

    #[test]
    fn critical_path_is_max_of_chunk_cycles() {
        let allocs = vec![
            ChunkAllocation {
                class: 0,
                pes: 10,
                buffer_bytes: 0,
                bandwidth_gbps: 1.0,
                assigned_macs: 1000,
                assigned_bytes: 0,
            },
            ChunkAllocation {
                class: 1,
                pes: 1,
                buffer_bytes: 0,
                bandwidth_gbps: 1.0,
                assigned_macs: 500,
                assigned_bytes: 0,
            },
        ];
        let (cycles, util) = denser_branch_cycles(&allocs);
        assert_eq!(cycles, 500);
        assert!(util < 0.5);
    }

    #[test]
    fn empty_allocation_is_trivial() {
        let (cycles, util) = denser_branch_cycles(&[]);
        assert_eq!(cycles, 0);
        assert_eq!(util, 1.0);
        assert!(allocate_chunks(&config(), &[], &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        allocate_chunks(&config(), &[1], &[]);
    }
}
