//! Hardware configurations of the GCoD accelerator.

use gcod_nn::quant::Precision;
use serde::{Deserialize, Serialize};

/// Which inter-phase pipeline the accelerator uses (Tab. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineKind {
    /// Row-wise combination feeding column-wise aggregation: maximum data
    /// reuse at the cost of buffering a full aggregation output on chip.
    /// Best for small/medium graphs.
    EfficiencyAware,
    /// Column-wise combination and aggregation: only one output column is
    /// buffered, trading some reuse for a tiny on-chip footprint. Used for
    /// billion-edge graphs (e.g. Reddit).
    ResourceAware,
    /// Let the simulator pick per graph: efficiency-aware when the
    /// aggregation output fits on chip, resource-aware otherwise (this is
    /// what the paper describes GCoD doing).
    Auto,
}

/// Resource description of one GCoD accelerator instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Human-readable name used in reports.
    pub name: String,
    /// Total number of processing elements (MAC units).
    pub num_pes: usize,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Total on-chip memory in bytes (BRAM + URAM on the VCU128).
    pub on_chip_bytes: u64,
    /// Off-chip (HBM) bandwidth in GB/s.
    pub off_chip_gbps: f64,
    /// Arithmetic precision of features and weights.
    pub precision: Precision,
    /// Inter-phase pipeline selection.
    pub pipeline: PipelineKind,
    /// Fraction of sparser-branch weight reads served by query-based weight
    /// forwarding from the denser-branch chunks instead of off-chip memory
    /// (the paper measures about 63%).
    pub weight_forwarding_rate: f64,
    /// Fraction of the PE budget reserved for the sparser branch.
    pub sparser_pe_fraction: f64,
}

impl AcceleratorConfig {
    /// The paper's VCU128 configuration: 4096 PEs at 330 MHz, 42 MB on-chip
    /// (9 MB BRAM + 33 MB URAM), 460 GB/s HBM, 32-bit arithmetic.
    pub fn vcu128() -> Self {
        Self {
            name: "gcod".to_string(),
            num_pes: 4096,
            clock_mhz: 330.0,
            on_chip_bytes: 42 * 1024 * 1024,
            off_chip_gbps: 460.0,
            precision: Precision::Fp32,
            pipeline: PipelineKind::Auto,
            weight_forwarding_rate: 0.63,
            sparser_pe_fraction: 0.25,
        }
    }

    /// The GCoD (8-bit) variant: INT8 arithmetic lets the same bandwidth feed
    /// 10240 PEs (Table V footnote).
    pub fn vcu128_int8() -> Self {
        Self {
            name: "gcod-8bit".to_string(),
            num_pes: 10_240,
            precision: Precision::Int8,
            ..Self::vcu128()
        }
    }

    /// A down-scaled configuration for unit tests: same ratios, fewer PEs.
    pub fn small_test() -> Self {
        Self {
            name: "gcod-test".to_string(),
            num_pes: 64,
            clock_mhz: 100.0,
            on_chip_bytes: 256 * 1024,
            off_chip_gbps: 8.0,
            precision: Precision::Fp32,
            pipeline: PipelineKind::Auto,
            weight_forwarding_rate: 0.63,
            sparser_pe_fraction: 0.25,
        }
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1_000.0 / self.clock_mhz
    }

    /// Peak MACs per second.
    pub fn peak_macs_per_second(&self) -> f64 {
        self.num_pes as f64 * self.clock_mhz * 1.0e6
    }

    /// Off-chip bandwidth in bytes per second.
    pub fn off_chip_bytes_per_second(&self) -> f64 {
        self.off_chip_gbps * 1.0e9
    }

    /// PEs assigned to the denser branch.
    pub fn denser_pes(&self) -> usize {
        let sparser = (self.num_pes as f64 * self.sparser_pe_fraction) as usize;
        self.num_pes - sparser.min(self.num_pes)
    }

    /// PEs assigned to the sparser branch.
    pub fn sparser_pes(&self) -> usize {
        self.num_pes - self.denser_pes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcu128_matches_table5() {
        let cfg = AcceleratorConfig::vcu128();
        assert_eq!(cfg.num_pes, 4096);
        assert_eq!(cfg.clock_mhz, 330.0);
        assert_eq!(cfg.off_chip_gbps, 460.0);
        assert_eq!(cfg.on_chip_bytes, 44_040_192);
        assert_eq!(cfg.precision, Precision::Fp32);
    }

    #[test]
    fn int8_variant_has_more_pes() {
        let fp32 = AcceleratorConfig::vcu128();
        let int8 = AcceleratorConfig::vcu128_int8();
        assert!(int8.num_pes > fp32.num_pes);
        assert_eq!(int8.num_pes, 10_240);
        assert_eq!(int8.precision, Precision::Int8);
    }

    #[test]
    fn derived_rates_are_consistent() {
        let cfg = AcceleratorConfig::vcu128();
        assert!((cfg.cycle_ns() - 3.0303).abs() < 0.01);
        let peak = cfg.peak_macs_per_second();
        assert!((peak - 4096.0 * 330.0e6).abs() < 1.0);
        assert_eq!(cfg.denser_pes() + cfg.sparser_pes(), cfg.num_pes);
        assert!(cfg.denser_pes() > cfg.sparser_pes());
    }
}
