//! Efficiency-aware vs resource-aware inter-phase pipelines (Fig. 7, Tab. II).
//!
//! Both pipelines keep the weight matrix on chip and reuse the combined
//! features `X·W` spatially during aggregation. They differ in how much of
//! the aggregation *output* has to stay on chip:
//!
//! * the **efficiency-aware** pipeline produces whole rows of `X·W` and needs
//!   a buffer for the full aggregation output (maximum reuse, high on-chip
//!   storage),
//! * the **resource-aware** pipeline works column-by-column and only ever
//!   holds one output column (minimal storage, slightly more off-chip traffic
//!   because the combined features are re-read per output tile).

use crate::config::{AcceleratorConfig, PipelineKind};
use gcod_nn::workload::LayerWorkload;
use serde::{Deserialize, Serialize};

/// The pipeline actually used for a layer after `Auto` resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResolvedPipeline {
    /// Efficiency-aware (full aggregation output buffered on chip).
    EfficiencyAware,
    /// Resource-aware (one output column buffered on chip).
    ResourceAware,
}

/// Per-layer memory behaviour implied by the chosen pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelinePlan {
    /// The pipeline chosen for this layer.
    pub pipeline: ResolvedPipeline,
    /// On-chip bytes needed for the aggregation output.
    pub output_buffer_bytes: u64,
    /// Whether the aggregation output spills off chip (only possible for the
    /// efficiency-aware pipeline on graphs that exceed the on-chip budget).
    pub output_spills: bool,
    /// Extra off-chip read traffic caused by re-reading combined features
    /// (resource-aware pipeline re-streams `X·W` once more).
    pub extra_feature_reads: u64,
}

/// Chooses the pipeline for one layer and derives its memory plan.
pub fn plan_layer(config: &AcceleratorConfig, layer: &LayerWorkload) -> PipelinePlan {
    let full_output = layer.output_feature_bytes;
    // Reserve half the on-chip memory for adjacency/weights/features; the
    // output buffer competes for the other half.
    let output_budget = config.on_chip_bytes / 2;
    let pipeline = match config.pipeline {
        PipelineKind::EfficiencyAware => ResolvedPipeline::EfficiencyAware,
        PipelineKind::ResourceAware => ResolvedPipeline::ResourceAware,
        PipelineKind::Auto => {
            if full_output <= output_budget {
                ResolvedPipeline::EfficiencyAware
            } else {
                ResolvedPipeline::ResourceAware
            }
        }
    };
    match pipeline {
        ResolvedPipeline::EfficiencyAware => {
            let spills = full_output > output_budget;
            PipelinePlan {
                pipeline,
                output_buffer_bytes: full_output.min(output_budget),
                output_spills: spills,
                extra_feature_reads: 0,
            }
        }
        ResolvedPipeline::ResourceAware => {
            // One column of the output: nodes × element size.
            let column_bytes = (layer.nodes as u64)
                * (layer.output_feature_bytes
                    / (layer.nodes.max(1) as u64 * layer.out_dim.max(1) as u64))
                    .max(1);
            PipelinePlan {
                pipeline,
                output_buffer_bytes: column_bytes,
                output_spills: false,
                // The combined features are streamed once more from off-chip
                // when they do not fit on chip alongside the adjacency.
                extra_feature_reads: if layer.intermediate_bytes > config.on_chip_bytes / 2 {
                    layer.intermediate_bytes
                } else {
                    0
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_nn::workload::LayerWorkload;

    fn layer(nodes: usize, out_dim: usize) -> LayerWorkload {
        LayerWorkload {
            index: 0,
            nodes,
            in_dim: 64,
            out_dim,
            adjacency_nnz: nodes * 5,
            aggregation_macs: (nodes * 5 * out_dim) as u64,
            combination_macs: (nodes * 64 * out_dim) as u64,
            input_feature_bytes: (nodes * 64 * 4) as u64,
            intermediate_bytes: (nodes * out_dim * 4) as u64,
            output_feature_bytes: (nodes * out_dim * 4) as u64,
            weight_bytes: (64 * out_dim * 4) as u64,
            adjacency_bytes: (nodes * 5 * 8) as u64,
        }
    }

    #[test]
    fn auto_picks_efficiency_aware_for_small_graphs() {
        let cfg = AcceleratorConfig::vcu128();
        let plan = plan_layer(&cfg, &layer(3_000, 16));
        assert_eq!(plan.pipeline, ResolvedPipeline::EfficiencyAware);
        assert!(!plan.output_spills);
        assert_eq!(plan.extra_feature_reads, 0);
    }

    #[test]
    fn auto_picks_resource_aware_for_reddit_scale() {
        let cfg = AcceleratorConfig::vcu128();
        // Reddit: 233k nodes × 41 classes output would be fine, but the wide
        // hidden layer (233k × 602 features) exceeds the on-chip budget.
        let plan = plan_layer(&cfg, &layer(233_000, 602));
        assert_eq!(plan.pipeline, ResolvedPipeline::ResourceAware);
        assert!(plan.output_buffer_bytes < cfg.on_chip_bytes / 2);
    }

    #[test]
    fn forced_pipelines_are_respected() {
        let mut cfg = AcceleratorConfig::vcu128();
        cfg.pipeline = PipelineKind::ResourceAware;
        assert_eq!(
            plan_layer(&cfg, &layer(1_000, 16)).pipeline,
            ResolvedPipeline::ResourceAware
        );
        cfg.pipeline = PipelineKind::EfficiencyAware;
        assert_eq!(
            plan_layer(&cfg, &layer(1_000, 16)).pipeline,
            ResolvedPipeline::EfficiencyAware
        );
    }

    #[test]
    fn forced_efficiency_on_huge_graph_spills() {
        let mut cfg = AcceleratorConfig::vcu128();
        cfg.pipeline = PipelineKind::EfficiencyAware;
        let plan = plan_layer(&cfg, &layer(500_000, 602));
        assert!(plan.output_spills);
    }

    #[test]
    fn resource_aware_buffer_is_one_column() {
        let mut cfg = AcceleratorConfig::vcu128();
        cfg.pipeline = PipelineKind::ResourceAware;
        let l = layer(10_000, 64);
        let plan = plan_layer(&cfg, &l);
        assert_eq!(plan.output_buffer_bytes, 10_000 * 4);
    }
}
