//! Performance, memory-traffic and energy model of the GCoD two-pronged
//! accelerator (Sec. V of the paper).
//!
//! The paper implements GCoD on a Xilinx VCU128 FPGA (330 MHz, 4096 PEs,
//! 42 MB of on-chip memory, 460 GB/s HBM). This crate reproduces the
//! accelerator as a calibrated analytical/event-driven model with the same
//! resource parameters:
//!
//! * [`config`] — hardware configurations (the paper's VCU128 instance, the
//!   8-bit variant with 10240 PEs, and custom configurations),
//! * [`chunk`] — chunk-based sub-accelerators with resources allocated
//!   proportionally to their assigned workload,
//! * [`branches`] — the denser branch (block-diagonal subgraphs, one chunk
//!   per degree class) and the sparser branch (off-diagonal CSC workload with
//!   query-based weight forwarding),
//! * [`pipeline`] — the efficiency-aware and resource-aware inter-phase
//!   pipelines (Fig. 7, Tab. II),
//! * [`memory`] — off-chip traffic and bandwidth accounting,
//! * [`energy`] — the energy breakdown of Fig. 12,
//! * [`simulator`] — the top-level [`GcodAccelerator`]
//!   that ties everything together and produces a [`report::PerfReport`].
//!
//! # Example
//!
//! ```
//! use gcod_accel::config::AcceleratorConfig;
//! use gcod_accel::simulator::GcodAccelerator;
//! use gcod_accel::{Platform, SimRequest};
//! use gcod_core::{GcodConfig, SubgraphLayout, SplitWorkload};
//! use gcod_graph::{DatasetProfile, GraphGenerator};
//! use gcod_nn::models::ModelConfig;
//! use gcod_nn::quant::Precision;
//! use gcod_nn::workload::InferenceWorkload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = GraphGenerator::new(0).generate(&DatasetProfile::cora().scaled(0.05))?;
//! let layout = SubgraphLayout::build(&graph, &GcodConfig::default(), 0)?;
//! let reordered = layout.apply(&graph);
//! let split = SplitWorkload::extract(reordered.adjacency(), &layout);
//! let workload = InferenceWorkload::build(&reordered, &ModelConfig::gcn(&reordered), Precision::Fp32);
//! let request = SimRequest::with_split(workload, split);
//! let report = GcodAccelerator::new(AcceleratorConfig::vcu128()).simulate(&request)?;
//! assert!(report.latency_ms > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branches;
pub mod chunk;
pub mod compiler;
pub mod config;
pub mod pipeline;
pub mod simulator;

// The traffic, energy and report types started life in this crate and moved
// to `gcod-platform` when the shared `Platform` contract was introduced; the
// module paths are re-exported so `gcod_accel::report::PerfReport` et al.
// keep working.
pub use gcod_platform::{energy, memory, report};

pub use gcod_platform::{Platform, PlatformError, SimRequest};
pub use simulator::GcodAccelerator;
