//! Shared sweep definitions for the criterion benches **and** the CI perf
//! gate.
//!
//! The `spmm` and `train` benches and the `bench_gate` binary must measure
//! the *same* cases, or the gate would compare apples to oranges against the
//! committed `BENCH_*.json` trajectory. This module is that single source of
//! truth: the case tables, the deterministic fixtures, and smoke-mode
//! re-measurement helpers that produce medians keyed exactly like the bench
//! summary rows (`spmm/<kernel>/<nodes>`, `train/<dataset>/<workers>`).

use gcod_graph::{CscMatrix, CsrMatrix, DatasetProfile, Graph, GraphGenerator, QuantizedCsr};
use gcod_nn::kernels::KernelKind;
use gcod_nn::models::{GnnModel, ModelConfig};
use gcod_nn::quant::{Precision, QuantizedModel};
use gcod_nn::sparse_ops::spmm_csc;
use gcod_nn::train::{TrainConfig, Trainer};
use gcod_nn::Tensor;
use gcod_serve::{
    ServeRequest, ServedModel, Server, ServerConfig, ShardOptions, ShardedModel, SubmitOptions,
    SupervisorPolicy,
};
use gcod_shard::{ShardPlan, ShardPlanConfig};
use std::time::Instant;

/// The SpMM sweep: `(nodes, avg_degree, feature_cols)`. The largest one
/// carries enough work (~15M MACs per SpMM) for the parallel kernel's
/// dispatch cost to amortise.
pub const SPMM_DATASETS: &[(usize, usize, usize)] =
    &[(500, 5, 16), (2_000, 5, 16), (30_000, 8, 64)];

/// Seed of every sweep fixture (bench and gate must agree).
pub const SWEEP_SEED: u64 = 1;

/// The label of the column-wise CSC traversal swept alongside the
/// [`KernelKind`] suite.
pub const CSC_KERNEL_NAME: &str = "csc-column-wise";

/// The training sweep: `(label, nodes, avg_degree, feature_dim, classes)`.
/// The largest carries enough work per epoch (~50M MACs across both layer
/// halves) for the pool's per-call submission cost to vanish.
pub const TRAIN_DATASETS: &[(&str, usize, usize, usize, usize)] = &[
    ("small", 500, 5, 16, 4),
    ("medium", 2_000, 5, 32, 4),
    ("large", 12_000, 8, 64, 8),
];

/// Worker-lane counts swept per training case; 0 = the pool's auto count.
pub const TRAIN_WORKER_COUNTS: &[usize] = &[1, 2, 0];

/// Epochs per timed training sample: enough to amortise model construction,
/// few enough that the full sweep stays in benchmark territory.
pub const TRAIN_EPOCHS: usize = 3;

/// Row label of a worker count (`w1`, `w2`, …, `auto` for 0).
pub fn worker_label(workers: usize) -> String {
    if workers == 0 {
        "auto".to_string()
    } else {
        format!("w{workers}")
    }
}

/// One SpMM sweep case, materialised.
#[derive(Debug)]
pub struct SpmmFixture {
    /// The adjacency in CSR form (what the kernel suite consumes).
    pub csr: CsrMatrix,
    /// The same adjacency in CSC form (for the column-wise traversal).
    pub csc: CscMatrix,
    /// The dense feature operand.
    pub features: Tensor,
}

/// Builds the deterministic fixture of one [`SPMM_DATASETS`] case.
///
/// # Panics
///
/// Panics when generation fails (impossible for the fixed sweep profiles).
pub fn spmm_fixture(nodes: usize, degree: usize, feat: usize) -> SpmmFixture {
    let profile = DatasetProfile::custom("bench", nodes, nodes * degree, feat, 4);
    let graph = GraphGenerator::new(SWEEP_SEED)
        .generate(&profile)
        .expect("generate sweep fixture");
    let csr = graph.adjacency().clone();
    SpmmFixture {
        csc: csr.to_csc(),
        csr,
        features: Tensor::full(nodes, feat, 0.5),
    }
}

/// Every kernel label of the SpMM sweep: the [`KernelKind`] suite plus the
/// column-wise CSC traversal.
pub fn spmm_kernel_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = KernelKind::all().iter().map(|k| k.name()).collect();
    names.push(CSC_KERNEL_NAME);
    names
}

/// Runs one SpMM of the named kernel on `fixture` (the timed unit of the
/// sweep).
///
/// # Panics
///
/// Panics on unknown kernel names or SpMM failures (sweep-setup errors).
pub fn run_spmm(fixture: &SpmmFixture, kernel_name: &str) -> Tensor {
    if kernel_name == CSC_KERNEL_NAME {
        return spmm_csc(&fixture.csc, &fixture.features).expect("spmm_csc");
    }
    let kind = KernelKind::all()
        .into_iter()
        .find(|k| k.name() == kernel_name)
        .unwrap_or_else(|| panic!("unknown spmm kernel {kernel_name}"));
    kind.build()
        .spmm(&fixture.csr, &fixture.features)
        .expect("spmm")
}

/// Builds the deterministic graph of one [`TRAIN_DATASETS`] case.
///
/// # Panics
///
/// Panics when generation fails (impossible for the fixed sweep profiles).
pub fn train_graph(label: &str) -> Graph {
    let &(_, nodes, degree, feat, classes) = TRAIN_DATASETS
        .iter()
        .find(|(l, ..)| *l == label)
        .unwrap_or_else(|| panic!("unknown train sweep dataset {label}"));
    let profile = DatasetProfile::custom(label, nodes, nodes * degree, feat, classes);
    GraphGenerator::new(SWEEP_SEED)
        .generate(&profile)
        .expect("generate sweep fixture")
}

/// The model template of one training case (cloned per timed sample so the
/// samples measure the training loop, not weight initialisation).
///
/// # Panics
///
/// Panics on invalid configurations (impossible for the sweep profiles).
pub fn train_template(graph: &Graph) -> GnnModel {
    GnnModel::new(ModelConfig::gcn(graph), 0)
        .expect("valid config")
        .with_kernel(KernelKind::ParallelCsr)
}

/// The fixed-epoch trainer of the training sweep.
pub fn train_trainer() -> Trainer {
    Trainer::new(TrainConfig {
        epochs: TRAIN_EPOCHS,
        ..TrainConfig::default()
    })
}

/// Median of raw samples (empty input yields 0).
fn median_ns(mut samples: Vec<u128>) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

/// Re-measures the full SpMM sweep in smoke mode: `samples` timed runs per
/// case after one warmup, medians keyed `spmm/<kernel>/<nodes>` in
/// nanoseconds — the exact keys/units of the committed `BENCH_spmm.json`
/// rows.
pub fn smoke_spmm_medians(samples: usize) -> Vec<(String, f64)> {
    let samples = samples.max(1);
    let mut rows = Vec::new();
    for &(nodes, degree, feat) in SPMM_DATASETS {
        let fixture = spmm_fixture(nodes, degree, feat);
        for kernel in spmm_kernel_names() {
            std::hint::black_box(run_spmm(&fixture, kernel)); // warmup
            let timed: Vec<u128> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(run_spmm(&fixture, kernel));
                    start.elapsed().as_nanos()
                })
                .collect();
            rows.push((format!("spmm/{kernel}/{nodes}"), median_ns(timed)));
        }
    }
    rows
}

/// Re-measures the full training sweep in smoke mode: medians keyed
/// `train/<dataset>/<workers>` in **milliseconds per epoch** — the exact
/// keys/units of the committed `BENCH_train.json` rows.
///
/// # Panics
///
/// Panics when training fails (a sweep-setup error).
pub fn smoke_train_medians(samples: usize) -> Vec<(String, f64)> {
    let samples = samples.max(1);
    let mut rows = Vec::new();
    for &(label, ..) in TRAIN_DATASETS {
        let graph = train_graph(label);
        let template = train_template(&graph);
        let trainer = train_trainer();
        for &workers in TRAIN_WORKER_COUNTS {
            let fit = || {
                let mut model = template.clone().with_workers(workers);
                trainer.fit(&mut model, &graph).expect("training succeeds");
            };
            fit(); // warmup
            let timed: Vec<u128> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    fit();
                    start.elapsed().as_nanos()
                })
                .collect();
            let epoch_ms = median_ns(timed) / TRAIN_EPOCHS as f64 / 1e6;
            rows.push((format!("train/{label}/{}", worker_label(workers)), epoch_ms));
        }
    }
    rows
}

/// The served graph of the serving sweep: large enough that one fused pass
/// dominates queue overhead, small enough to keep the sweep in benchmark
/// territory.
pub const SERVE_NODES: usize = 2_000;
const SERVE_DEGREE: usize = 5;
const SERVE_FEATURES: usize = 32;
const SERVE_CLASSES: usize = 4;

/// Fused-batch sizes swept by the serving classify cases.
pub const SERVE_BATCH_SIZES: &[usize] = &[1, 8, 32];

/// Nodes per serving classification request.
pub const SERVE_WINDOW: usize = 8;

/// Name of the served model in the serving sweep.
pub const SERVE_MODEL_NAME: &str = "bench-gcn";

/// Builds the serving-sweep server (one deterministic served model) with the
/// given fused-batch cap.
///
/// # Panics
///
/// Panics when fixture construction fails (impossible for the fixed sweep
/// profile).
pub fn serve_server(max_batch: usize) -> Server {
    let profile = DatasetProfile::custom(
        "serve-bench",
        SERVE_NODES,
        SERVE_NODES * SERVE_DEGREE,
        SERVE_FEATURES,
        SERVE_CLASSES,
    );
    let graph = GraphGenerator::new(SWEEP_SEED)
        .generate(&profile)
        .expect("generate sweep fixture");
    let model = GnnModel::new(ModelConfig::gcn(&graph), 0).expect("valid config");
    Server::with_config(ServerConfig {
        queue_capacity: SERVE_BATCH_SIZES.iter().copied().max().unwrap_or(32) * 2,
        max_batch,
        ..ServerConfig::default()
    })
    .register(ServedModel::new(SERVE_MODEL_NAME, graph, model))
}

/// The `i`-th classification request of the serving sweep (a wrapping
/// [`SERVE_WINDOW`]-node window).
pub fn serve_classify_request(i: usize) -> ServeRequest {
    let nodes: Vec<usize> = (0..SERVE_WINDOW)
        .map(|k| (i * 17 + k * 3) % SERVE_NODES)
        .collect();
    ServeRequest::classify(SERVE_MODEL_NAME, nodes)
}

/// Re-measures the serving sweep in smoke mode: medians keyed
/// `serve/<case>/<batch>` in nanoseconds — the exact keys/units of the
/// committed `BENCH_serve.json` rows.
///
/// # Panics
///
/// Panics when a submission or ticket fails (a sweep-setup error).
pub fn smoke_serve_medians(samples: usize) -> Vec<(String, f64)> {
    let samples = samples.max(1);
    let mut rows = Vec::new();
    for &batch in SERVE_BATCH_SIZES {
        let handle = serve_server(batch).spawn();
        let submit_and_wait = || {
            let tickets: Vec<_> = (0..batch)
                .map(|i| {
                    handle
                        .submit(
                            serve_classify_request(i),
                            SubmitOptions::default().blocking(),
                        )
                        .expect("server is live")
                })
                .collect();
            for ticket in tickets {
                ticket.wait().expect("classification succeeds");
            }
        };
        submit_and_wait(); // warmup
        let timed: Vec<u128> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                submit_and_wait();
                start.elapsed().as_nanos()
            })
            .collect();
        handle.shutdown();
        rows.push((format!("serve/classify/{batch}"), median_ns(timed)));
    }
    let handle = serve_server(1).spawn();
    let route = || {
        handle
            .submit(
                ServeRequest::predict_perf(SERVE_MODEL_NAME),
                SubmitOptions::default().blocking(),
            )
            .expect("server is live")
            .wait()
            .expect("routing succeeds")
    };
    route(); // warmup
    let timed: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            route();
            start.elapsed().as_nanos()
        })
        .collect();
    handle.shutdown();
    rows.push(("serve/route-auto/1".to_string(), median_ns(timed)));
    rows
}

/// Shard count of the serving recover-kill case.
pub const SERVE_RECOVER_SHARDS: usize = 2;

/// Builds the recover-kill fixture: the cora sweep workload sharded over
/// [`SERVE_RECOVER_SHARDS`] thread-mode workers with an effectively
/// unlimited respawn budget (every timed kill must be absorbed by a respawn,
/// never by degrading to the local fallback), warmed through one full
/// forward so the timed iterations exercise the steady-state recovery path.
///
/// # Panics
///
/// Panics when the launch handshake or warmup forward fails (a sweep-setup
/// error).
pub fn serve_recover_model() -> (ShardedModel, Vec<usize>) {
    let (graph, model) = shard_workload("cora", 300);
    let query = shard_query_nodes(graph.num_nodes());
    let options = ShardOptions::new(SERVE_RECOVER_SHARDS).with_policy(SupervisorPolicy {
        respawn_budget: u32::MAX,
        ..SupervisorPolicy::default()
    });
    let sharded =
        ShardedModel::launch("bench-recover", &graph, &model, &options).expect("shard launch");
    sharded.forward_rows(&query).expect("warmup forward");
    (sharded, query)
}

/// One timed recover-kill iteration: sever one worker mid-service, then
/// answer a full request — the supervisor must detect the dead endpoint,
/// respawn the worker, replay its layer state and gather, so the measured
/// latency is the end-to-end recovery cost.
///
/// # Panics
///
/// Panics when the kill hook or the recovered forward fails.
pub fn serve_recover_iteration(sharded: &ShardedModel, query: &[usize]) {
    sharded.kill_worker(1).expect("kill worker");
    sharded.forward_rows(query).expect("recovered forward");
}

/// Re-measures the recover-kill case in smoke mode: the median keyed
/// `serve/recover-kill/2` in nanoseconds — the exact key/units of the
/// committed `BENCH_serve.json` row.
///
/// # Panics
///
/// Panics when the fixture or an iteration fails (a sweep-setup error).
pub fn smoke_serve_recover_medians(samples: usize) -> Vec<(String, f64)> {
    let samples = samples.max(1);
    let (sharded, query) = serve_recover_model();
    serve_recover_iteration(&sharded, &query); // warm the recovery path
    let timed: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            serve_recover_iteration(&sharded, &query);
            start.elapsed().as_nanos()
        })
        .collect();
    sharded.shutdown().expect("shutdown");
    vec![(
        format!("serve/recover-kill/{SERVE_RECOVER_SHARDS}"),
        median_ns(timed),
    )]
}

/// Shard counts swept by the sharded-serving bench; `1` is the no-halo
/// anchor (one worker owns the whole graph).
pub const SHARD_COUNTS: &[usize] = &[1, 2, 4];

/// The sharded-serving sweep datasets: `(profile name, target nodes)`. Two
/// profiles with different degree structure so the halo fraction differs.
pub const SHARD_DATASETS: &[(&str, usize)] = &[("cora", 300), ("reddit-lite", 300)];

/// Builds one sharded-serving sweep workload: the named profile scaled to
/// `nodes`, with a deterministic GCN on top.
///
/// # Panics
///
/// Panics when fixture construction fails (impossible for the fixed sweep
/// profiles).
pub fn shard_workload(dataset: &str, nodes: usize) -> (Graph, GnnModel) {
    let profile = DatasetProfile::by_name(dataset)
        .expect("known sweep profile")
        .scaled_to_nodes(nodes);
    let graph = GraphGenerator::new(SWEEP_SEED)
        .generate(&profile)
        .expect("generate sweep fixture");
    let model = GnnModel::new(ModelConfig::gcn(&graph), SWEEP_SEED).expect("valid config");
    (graph, model)
}

/// Launches the shard router over `shards` in-process (thread-mode) workers
/// — the transport and protocol are identical to process mode, without
/// paying a process spawn per timed case.
///
/// # Panics
///
/// Panics when the launch handshake fails (a sweep-setup error).
pub fn shard_router(graph: &Graph, model: &GnnModel, shards: usize) -> ShardedModel {
    ShardedModel::launch("bench-shard", graph, model, &ShardOptions::new(shards))
        .expect("shard launch")
}

/// The fixed query of the sharded sweep: every third node, so the gather
/// touches all shards without requesting the whole graph.
pub fn shard_query_nodes(num_nodes: usize) -> Vec<usize> {
    (0..num_nodes).step_by(3).collect()
}

/// Bytes of activation payload the halo exchange relays across one full
/// forward pass of `plan`: after every layer but the last, each halo slot
/// receives one `f32` row of that layer's output width. Deterministic for a
/// fixed plan — a machine-independent column the gate holds exactly.
pub fn shard_halo_bytes(plan: &ShardPlan) -> u64 {
    let mut bytes = 0u64;
    for layer in 0..plan.num_layers().saturating_sub(1) {
        let width = plan.spec(0).layers[layer].bias.cols() as u64;
        bytes += plan.total_halo_nodes() as u64 * width * 4;
    }
    bytes
}

/// Re-measures the sharded-serving sweep in smoke mode: steady-state
/// per-request latency (the full forward is cached after warmup; each
/// request is a scatter/gather over the shard sockets) keyed
/// `shard/<dataset>/<shards>` in nanoseconds — the exact keys/units of the
/// committed `BENCH_shard.json` rows.
///
/// # Panics
///
/// Panics when a launch or forward fails (a sweep-setup error).
pub fn smoke_shard_medians(samples: usize) -> Vec<(String, f64)> {
    let samples = samples.max(1);
    let mut rows = Vec::new();
    for &(dataset, nodes) in SHARD_DATASETS {
        let (graph, model) = shard_workload(dataset, nodes);
        let query = shard_query_nodes(graph.num_nodes());
        for &shards in SHARD_COUNTS {
            let sharded = shard_router(&graph, &model, shards);
            sharded.forward_rows(&query).expect("warmup forward");
            let timed: Vec<u128> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    sharded.forward_rows(&query).expect("sharded forward");
                    start.elapsed().as_nanos()
                })
                .collect();
            sharded.shutdown().expect("shutdown");
            rows.push((format!("shard/{dataset}/{shards}"), median_ns(timed)));
        }
    }
    rows
}

/// The machine-independent halo-traffic column of the sharded sweep:
/// [`shard_halo_bytes`] per dataset × shard count, keyed
/// `shard-halo/<dataset>/<shards>` — the fresh counterpart of the committed
/// `BENCH_shard.json` `halo_bytes` field. Computed straight from the plan
/// (no workers launched), so the gate holds it on any runner.
///
/// # Panics
///
/// Panics when plan construction fails (a sweep-setup error).
pub fn shard_halo_byte_rows() -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for &(dataset, nodes) in SHARD_DATASETS {
        let (graph, model) = shard_workload(dataset, nodes);
        for &shards in SHARD_COUNTS {
            let plan =
                ShardPlan::build(&graph, &model, &ShardPlanConfig::new(shards)).expect("plan");
            rows.push((
                format!("shard-halo/{dataset}/{shards}"),
                shard_halo_bytes(&plan) as f64,
            ));
        }
    }
    rows
}

/// The quantized-inference sweep: `(nodes, avg_degree, feature_cols)`. The
/// larger case carries enough aggregation + combination work for the byte
/// narrowing to matter; the smaller one keeps the fixed per-forward costs
/// (quantization, dispatch) visible.
pub const QUANT_DATASETS: &[(usize, usize, usize)] = &[(2_000, 5, 32), (12_000, 8, 64)];

/// Builds the deterministic workload of one [`QUANT_DATASETS`] case: the
/// graph plus a GCN whose forward is swept at every [`Precision`].
///
/// # Panics
///
/// Panics when fixture construction fails (impossible for the fixed sweep
/// profiles).
pub fn quant_workload(nodes: usize, degree: usize, feat: usize) -> (Graph, GnnModel) {
    let profile = DatasetProfile::custom("quant-bench", nodes, nodes * degree, feat, 4);
    let graph = GraphGenerator::new(SWEEP_SEED)
        .generate(&profile)
        .expect("generate sweep fixture");
    let model = GnnModel::new(ModelConfig::gcn(&graph), SWEEP_SEED)
        .expect("valid config")
        .with_kernel(KernelKind::ParallelCsr);
    (graph, model)
}

/// Bytes of operand storage one full forward pass reads at `precision`:
/// adjacency (values at the precision's width, indices always u32/u64),
/// layer parameters and the input activations. This is what the compute
/// path actually streams — the quantized path narrows values but still
/// pays full-width index traffic, so the int8 ratio sits below the naive 4×.
pub fn quant_bytes_moved(graph: &Graph, model: &GnnModel, precision: Precision) -> u64 {
    let activations = (graph.features().len() * precision.bytes()) as u64;
    match precision.quant_width() {
        None => {
            let params: usize = model
                .layers()
                .iter()
                .map(|l| (l.weight.data().len() + l.bias.data().len()) * 4)
                .sum();
            graph.adjacency().storage_bytes() as u64 + params as u64 + activations
        }
        Some(width) => {
            let adj = QuantizedCsr::quantize(graph.adjacency(), width).storage_bytes() as u64;
            let params = QuantizedModel::from_model(model, width).param_bytes() as u64;
            adj + params + activations
        }
    }
}

/// The machine-independent bandwidth column of the quantized sweep:
/// `bytes_moved(fp32) / bytes_moved(precision)` per case, keyed
/// `quant-bytes/<precision>/<nodes>` — the fresh counterpart of the
/// committed `BENCH_quant.json` `bytes_moved_ratio` field. Deterministic
/// (pure storage accounting), so the gate holds it on any runner; the fp32
/// row anchors at exactly 1.
pub fn quant_bytes_moved_rows() -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for &(nodes, degree, feat) in QUANT_DATASETS {
        let (graph, model) = quant_workload(nodes, degree, feat);
        let fp32 = quant_bytes_moved(&graph, &model, Precision::Fp32) as f64;
        for precision in Precision::all() {
            let moved = quant_bytes_moved(&graph, &model, precision) as f64;
            rows.push((format!("quant-bytes/{precision}/{nodes}"), fp32 / moved));
        }
    }
    rows
}

/// Re-measures the quantized-inference sweep in smoke mode: one full
/// forward pass per sample, per precision, keyed `quant/<precision>/<nodes>`
/// in nanoseconds — the exact keys/units of the committed
/// `BENCH_quant.json` rows. The fp32 rows time the f32 kernel suite; the
/// int16/int8 rows time the real integer path end to end (per-layer
/// activation quantization included).
///
/// # Panics
///
/// Panics when a forward pass fails (a sweep-setup error).
pub fn smoke_quant_medians(samples: usize) -> Vec<(String, f64)> {
    let samples = samples.max(1);
    let mut rows = Vec::new();
    for &(nodes, degree, feat) in QUANT_DATASETS {
        let (graph, model) = quant_workload(nodes, degree, feat);
        for precision in Precision::all() {
            let model = model.clone().with_precision(precision);
            std::hint::black_box(model.forward(&graph).expect("forward")); // warmup
            let timed: Vec<u128> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(model.forward(&graph).expect("forward"));
                    start.elapsed().as_nanos()
                })
                .collect();
            rows.push((format!("quant/{precision}/{nodes}"), median_ns(timed)));
        }
    }
    rows
}

/// Recomputes the machine-independent `speedup_over_naive` column from
/// fresh SpMM medians: `naive-csr` time over each kernel's time, per node
/// count, keyed `spmm-rel/<kernel>/<nodes>` — the fresh counterpart of the
/// committed `BENCH_spmm.json` `speedup_over_naive` field. Unlike the
/// absolute medians, these rows carry no machine speed, so the gate can
/// hold them to the same tolerance on any runner.
pub fn relative_spmm_rows(medians: &[(String, f64)]) -> Vec<(String, f64)> {
    relative_rows(medians, "spmm-rel", 1, "naive-csr")
}

/// Recomputes the machine-independent `speedup_over_w1` column from fresh
/// training medians: single-worker epoch time over each worker count's,
/// per dataset, keyed `train-rel/<dataset>/<workers>` — the fresh
/// counterpart of the committed `BENCH_train.json` `speedup_over_w1` field.
pub fn relative_train_rows(medians: &[(String, f64)]) -> Vec<(String, f64)> {
    relative_rows(medians, "train-rel", 2, "w1")
}

/// Shared shape of both relative columns. Keys are
/// `<prefix>/<a>/<b>`; `variant_index` (1 or 2) selects which of the two
/// trailing components names the compared variant, the other is the
/// grouping (dataset / node count). Each row becomes
/// `baseline_time / row_time` against its group's `baseline` variant; rows
/// without a positive baseline or measurement are skipped.
fn relative_rows(
    medians: &[(String, f64)],
    out_prefix: &str,
    variant_index: usize,
    baseline: &str,
) -> Vec<(String, f64)> {
    let group_index = 3 - variant_index;
    let split = |key: &str| -> Option<Vec<String>> {
        let parts: Vec<String> = key.split('/').map(str::to_string).collect();
        (parts.len() == 3).then_some(parts)
    };
    let mut rows = Vec::new();
    for (key, value) in medians {
        let Some(parts) = split(key) else { continue };
        let base = medians.iter().find_map(|(candidate, v)| {
            let p = split(candidate)?;
            (p[variant_index] == baseline && p[group_index] == parts[group_index]).then_some(*v)
        });
        let Some(base) = base else { continue };
        if base <= 0.0 || *value <= 0.0 {
            continue;
        }
        rows.push((
            format!("{out_prefix}/{}/{}", parts[1], parts[2]),
            base / value,
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_columns_recompute_speedups_per_group() {
        let medians = vec![
            ("spmm/naive-csr/500".to_string(), 100.0),
            ("spmm/tiled-csr/500".to_string(), 50.0),
            ("spmm/naive-csr/2000".to_string(), 1000.0),
            ("spmm/tiled-csr/2000".to_string(), 400.0),
        ];
        let rel = relative_spmm_rows(&medians);
        assert_eq!(
            rel,
            vec![
                ("spmm-rel/naive-csr/500".to_string(), 1.0),
                ("spmm-rel/tiled-csr/500".to_string(), 2.0),
                ("spmm-rel/naive-csr/2000".to_string(), 1.0),
                ("spmm-rel/tiled-csr/2000".to_string(), 2.5),
            ]
        );
        let train = vec![
            ("train/small/w1".to_string(), 8.0),
            ("train/small/w2".to_string(), 4.0),
            ("train/medium/w1".to_string(), 80.0),
            ("train/medium/w2".to_string(), 50.0),
        ];
        let rel = relative_train_rows(&train);
        assert_eq!(rel[1], ("train-rel/small/w2".to_string(), 2.0));
        assert_eq!(rel[3], ("train-rel/medium/w2".to_string(), 1.6));
    }

    #[test]
    fn relative_columns_skip_groups_without_a_baseline() {
        let medians = vec![
            ("spmm/tiled-csr/500".to_string(), 50.0),
            ("spmm/naive-csr/2000".to_string(), 0.0),
            ("spmm/tiled-csr/2000".to_string(), 400.0),
            ("malformed-key".to_string(), 1.0),
        ];
        assert!(relative_spmm_rows(&medians).is_empty());
    }

    #[test]
    fn shard_halo_rows_are_deterministic_and_cover_the_sweep() {
        let rows = shard_halo_byte_rows();
        assert_eq!(rows.len(), SHARD_DATASETS.len() * SHARD_COUNTS.len());
        for &(dataset, _) in SHARD_DATASETS {
            let value = |k: usize| {
                rows.iter()
                    .find(|(key, _)| key == &format!("shard-halo/{dataset}/{k}"))
                    .expect("row present")
                    .1
            };
            // One shard owns the whole graph: nothing to exchange. Real
            // splits relay a non-trivial halo payload.
            assert_eq!(value(1), 0.0, "{dataset}");
            assert!(value(2) > 0.0, "{dataset}");
            assert!(value(4) > 0.0, "{dataset}");
        }
        // Machine-independent: recomputing yields bit-identical rows.
        assert_eq!(rows, shard_halo_byte_rows());
    }

    #[test]
    fn quant_bytes_rows_are_deterministic_and_anchored() {
        let rows = quant_bytes_moved_rows();
        assert_eq!(rows.len(), QUANT_DATASETS.len() * Precision::all().len());
        for &(nodes, ..) in QUANT_DATASETS {
            let ratio = |p: &str| {
                rows.iter()
                    .find(|(key, _)| key == &format!("quant-bytes/{p}/{nodes}"))
                    .expect("row present")
                    .1
            };
            // fp32 anchors at exactly 1; narrower widths move strictly
            // fewer bytes, ordered by width, but the full-width index
            // traffic keeps int8 below the naive 4x.
            assert_eq!(ratio("fp32"), 1.0);
            assert!(ratio("int16") > 1.0);
            assert!(ratio("int8") > ratio("int16"));
            assert!(ratio("int8") < 4.0);
        }
        // Machine-independent: recomputing yields bit-identical rows.
        assert_eq!(rows, quant_bytes_moved_rows());
    }

    #[test]
    fn quant_workload_runs_at_every_precision() {
        let (graph, model) = quant_workload(200, 4, 8);
        let fp32 = model.forward(&graph).expect("fp32 forward");
        for precision in [Precision::Int16, Precision::Int8] {
            let out = model
                .clone()
                .with_precision(precision)
                .forward(&graph)
                .expect("quantized forward");
            assert_eq!(out.shape(), fp32.shape());
            assert_ne!(out, fp32, "{precision} must run the integer path");
        }
    }

    #[test]
    fn shard_router_fixture_answers_queries() {
        let (graph, model) = shard_workload("cora", 120);
        let query = shard_query_nodes(graph.num_nodes());
        let expected = model.forward_rows(&graph, &query).expect("oracle");
        let sharded = shard_router(&graph, &model, 2);
        let got = sharded.forward_rows(&query).expect("sharded forward");
        assert_eq!(got.data(), expected.data());
        sharded.shutdown().expect("shutdown");
    }

    #[test]
    fn worker_labels_match_the_bench_rows() {
        assert_eq!(worker_label(0), "auto");
        assert_eq!(worker_label(1), "w1");
        assert_eq!(worker_label(8), "w8");
    }

    #[test]
    fn spmm_fixture_and_kernels_agree() {
        let fixture = spmm_fixture(200, 4, 8);
        assert_eq!(fixture.csr.rows(), 200);
        let names = spmm_kernel_names();
        assert_eq!(names.len(), 5);
        let reference = run_spmm(&fixture, "naive-csr");
        for name in names {
            assert_eq!(run_spmm(&fixture, name), reference, "{name}");
        }
    }

    #[test]
    fn smoke_medians_cover_every_sweep_case() {
        // One tiny sanity pass over the smallest cases only would need a
        // bespoke API; instead check the key shape on the real spmm sweep's
        // smallest dataset via a direct fixture measurement.
        let fixture = spmm_fixture(100, 3, 4);
        let out = run_spmm(&fixture, CSC_KERNEL_NAME);
        assert_eq!(out.shape(), (100, 4));
        assert_eq!(median_ns(vec![5, 1, 9]), 5.0);
        assert_eq!(median_ns(Vec::new()), 0.0);
    }
}
