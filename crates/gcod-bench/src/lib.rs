//! Shared harness for regenerating every table and figure of the GCoD
//! evaluation.
//!
//! The harness separates the two halves of each experiment the same way the
//! paper does:
//!
//! * the **algorithm half** runs the actual GCoD split-and-conquer code on a
//!   scaled-down replica of each dataset (the full Reddit graph has 114 M
//!   edges — pointless to materialise for a workload model) through
//!   [`gcod::Experiment::tune`] and measures the *structural* outcomes:
//!   achieved prune ratio, denser/sparser split, per-class workload
//!   distribution,
//! * the **hardware half** feeds the full-size dataset statistics
//!   (Table III) plus those measured structural fractions into the platform
//!   models — all of which implement the shared [`Platform`] trait —
//!   producing latency /
//!   bandwidth / traffic / energy reports that the figure generators print.
//!
//! Every binary in `src/bin/` is one table or figure; `cargo bench`
//! (criterion) covers the kernel-level measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod load;
pub mod sweeps;

use gcod::{Experiment, SuiteRequests};
use gcod_accel::config::AcceleratorConfig;
use gcod_accel::simulator::GcodAccelerator;
use gcod_baselines::suite;
use gcod_core::workload::DenseBlock;
use gcod_core::{GcodConfig, SplitWorkload};
use gcod_graph::{CscMatrix, DatasetProfile, Graph, GraphGenerator};
use gcod_nn::models::{ModelConfig, ModelKind};
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;
use gcod_platform::report::PerfReport;
use gcod_platform::{Platform, SimRequest};

/// Node budget of the algorithm-side replicas: keeps the split-and-conquer
/// runs fast while exercising the full code paths.
pub const REPLICA_TARGET_NODES: usize = 1_500;

/// One dataset of the evaluation: its Table III profile plus the input
/// feature density of the real data (bag-of-words features are sparse for
/// the citation graphs and NELL, dense for ogbn-arxiv and Reddit).
#[derive(Debug, Clone)]
pub struct DatasetCase {
    /// Full-size dataset profile.
    pub profile: DatasetProfile,
    /// Input feature density of the real dataset.
    pub feature_density: f64,
}

impl DatasetCase {
    /// The evaluation dataset with the given name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not one of the paper's six datasets.
    pub fn by_name(name: &str) -> Self {
        let profile = DatasetProfile::by_name(name).unwrap_or_else(|e| panic!("{e}"));
        let feature_density = match profile.name.as_str() {
            "cora" => 0.0127,
            "citeseer" => 0.0085,
            "pubmed" => 0.10,
            "nell" => 0.0011,
            "ogbn-arxiv" => 1.0,
            "reddit" => 1.0,
            _ => 1.0,
        };
        Self {
            profile,
            feature_density,
        }
    }

    /// The three citation graphs of Fig. 9.
    pub fn citation_graphs() -> Vec<Self> {
        ["cora", "citeseer", "pubmed"]
            .iter()
            .map(|n| Self::by_name(n))
            .collect()
    }

    /// The large graphs of Fig. 10.
    pub fn large_graphs() -> Vec<Self> {
        ["nell", "reddit", "ogbn-arxiv"]
            .iter()
            .map(|n| Self::by_name(n))
            .collect()
    }

    /// The five datasets of Table VI / Fig. 11 / Fig. 12.
    pub fn table6_datasets() -> Vec<Self> {
        ["cora", "citeseer", "pubmed", "nell", "reddit"]
            .iter()
            .map(|n| Self::by_name(n))
            .collect()
    }

    /// Directed edge count of the full-size dataset.
    pub fn directed_edges(&self) -> usize {
        self.profile.edges * 2
    }

    /// The model configuration the paper uses for `kind` on this dataset
    /// (Table IV hidden sizes depend on the dataset scale).
    pub fn model_config(&self, kind: ModelKind) -> ModelConfig {
        let hidden = if self.profile.nodes > 20_000 { 64 } else { 16 };
        let mut cfg = ModelConfig {
            kind,
            input_dim: self.profile.feature_dim,
            hidden_dim: hidden,
            output_dim: self.profile.classes,
            num_layers: 2,
            heads: 1,
            eps: 0.0,
            residual: false,
        };
        match kind {
            ModelKind::Gin => cfg.num_layers = 3,
            ModelKind::Gat => {
                cfg.hidden_dim = 8;
                cfg.heads = 8;
            }
            ModelKind::ResGcn => {
                cfg.hidden_dim = 128;
                cfg.num_layers = 28;
                cfg.residual = true;
            }
            ModelKind::Gcn | ModelKind::GraphSage => {}
        }
        cfg
    }

    /// Scale factor for the algorithm-side replica (the shared
    /// [`DatasetProfile::scale_for_nodes`] heuristic at
    /// [`REPLICA_TARGET_NODES`]).
    pub fn replica_scale(&self) -> f64 {
        self.profile.scale_for_nodes(REPLICA_TARGET_NODES)
    }

    /// Full-size inference workload of this dataset for `kind` at
    /// `precision`, built from the Table III statistics.
    pub fn full_workload(&self, kind: ModelKind, precision: Precision) -> InferenceWorkload {
        InferenceWorkload::from_stats(
            &self.profile.name,
            self.profile.nodes,
            self.directed_edges(),
            self.feature_density,
            &self.model_config(kind),
            precision,
        )
    }

    /// Full-size workload with a pruned adjacency non-zero count (what the
    /// GCoD accelerator runs after the algorithm removed edges).
    pub fn pruned_workload(
        &self,
        kind: ModelKind,
        precision: Precision,
        adjacency_nnz: usize,
    ) -> InferenceWorkload {
        InferenceWorkload::from_stats(
            &self.profile.name,
            self.profile.nodes,
            adjacency_nnz,
            self.feature_density,
            &self.model_config(kind),
            precision,
        )
    }

    /// Baseline simulation request: the unmodified full-size workload.
    pub fn baseline_request(&self, kind: ModelKind) -> SimRequest {
        SimRequest::new(self.full_workload(kind, Precision::Fp32))
    }

    /// GCoD simulation request: the replica-measured outcome projected onto
    /// the full-size graph, paired with the matching pruned workload.
    pub fn gcod_request(
        &self,
        kind: ModelKind,
        precision: Precision,
        outcome: &AlgorithmOutcome,
    ) -> SimRequest {
        let split = project_split(self, outcome);
        let workload = self.pruned_workload(kind, precision, split.total_nnz());
        SimRequest::with_split(workload, split)
    }
}

/// Structural outcome of running the GCoD algorithm on a dataset replica,
/// expressed as fractions so it can be projected onto the full-size graph.
#[derive(Debug, Clone)]
pub struct AlgorithmOutcome {
    /// Fraction of directed edges retained after sparsify + polarize +
    /// structural sparsification.
    pub retained_edge_fraction: f64,
    /// Fraction of the retained edges that fall in the denser (block
    /// diagonal) branch.
    pub denser_fraction: f64,
    /// Distribution of the denser workload over the degree classes
    /// (fractions summing to 1).
    pub class_fractions: Vec<f64>,
    /// Number of subgraph blocks per class in the replica layout.
    pub blocks_per_class: Vec<usize>,
    /// The GCoD configuration used.
    pub config: GcodConfig,
}

/// Runs the structural part of the GCoD algorithm (layout, polarization,
/// structural sparsification — no GCN retraining) on a scaled replica of the
/// dataset via [`gcod::Experiment::tune`] and summarises the outcome.
///
/// # Panics
///
/// Panics if graph generation or the pipeline steps fail — the harness treats
/// that as a fatal benchmark-setup error.
pub fn run_algorithm(case: &DatasetCase, config: &GcodConfig, seed: u64) -> AlgorithmOutcome {
    let run = Experiment::on(case.profile.clone())
        .scale_to_nodes(REPLICA_TARGET_NODES)
        .gcod(config.clone())
        .seed(seed)
        .tune()
        .expect("structural GCoD pass cannot fail for known profiles");
    summarize_structural_run(&run, config)
}

/// Summarises a [`gcod::StructuralRun`] (from [`gcod::Experiment::tune`] at
/// any replica scale) into the projection fractions of an
/// [`AlgorithmOutcome`]. The golden-report regression tests use this at
/// tiny scale; [`run_algorithm`] uses it at [`REPLICA_TARGET_NODES`].
pub fn summarize_structural_run(
    run: &gcod::StructuralRun,
    config: &GcodConfig,
) -> AlgorithmOutcome {
    let per_class = run.split.nnz_per_class();
    let denser_total: usize = per_class.iter().sum::<usize>().max(1);
    let class_fractions: Vec<f64> = per_class
        .iter()
        .map(|&n| n as f64 / denser_total as f64)
        .collect();
    let blocks_per_class = (0..run.split.num_classes)
        .map(|c| run.split.blocks_of_class(c).len())
        .collect();
    AlgorithmOutcome {
        retained_edge_fraction: run.retained_edge_fraction(),
        denser_fraction: run.denser_fraction(),
        class_fractions,
        blocks_per_class,
        config: config.clone(),
    }
}

/// Projects a replica-measured [`AlgorithmOutcome`] onto the full-size
/// dataset, producing the [`SplitWorkload`] the accelerator model consumes.
pub fn project_split(case: &DatasetCase, outcome: &AlgorithmOutcome) -> SplitWorkload {
    let nodes = case.profile.nodes;
    let retained_nnz =
        (case.directed_edges() as f64 * outcome.retained_edge_fraction).round() as usize;
    let denser_nnz = (retained_nnz as f64 * outcome.denser_fraction).round() as usize;
    let sparser_nnz = retained_nnz - denser_nnz;

    let num_classes = outcome.class_fractions.len().max(1);
    let mut blocks = Vec::new();
    let mut cursor = 0usize;
    for (class, &fraction) in outcome.class_fractions.iter().enumerate() {
        let class_nnz = (denser_nnz as f64 * fraction) as usize;
        let class_blocks = outcome
            .blocks_per_class
            .get(class)
            .copied()
            .unwrap_or(1)
            .max(1);
        let class_nodes = nodes / num_classes;
        for b in 0..class_blocks {
            let len = (class_nodes / class_blocks).max(1);
            blocks.push(DenseBlock {
                class,
                group: b % outcome.config.num_groups.max(1),
                start: cursor,
                len,
                nnz: class_nnz / class_blocks,
            });
            cursor += len;
        }
    }
    SplitWorkload {
        blocks,
        sparser: CscMatrix::zeros(nodes, nodes),
        denser_nnz,
        sparser_nnz,
        num_classes,
    }
}

/// A single speedup-table row: platform name plus its report.
#[derive(Debug, Clone)]
pub struct PlatformResult {
    /// Platform name.
    pub platform: String,
    /// The simulation report.
    pub report: PerfReport,
    /// Speedup relative to the PyG-CPU anchor.
    pub speedup_over_cpu: f64,
}

/// Simulates every platform of Fig. 9/10 (nine baselines + GCoD + GCoD 8-bit)
/// on one dataset × model pair and returns the normalized speedups.
pub fn simulate_all_platforms(
    case: &DatasetCase,
    kind: ModelKind,
    outcome: &AlgorithmOutcome,
) -> Vec<PlatformResult> {
    let split = project_split(case, outcome);
    let pruned_nnz = split.total_nnz();
    let requests = SuiteRequests::new(
        case.full_workload(kind, Precision::Fp32),
        case.pruned_workload(kind, Precision::Fp32, pruned_nnz),
        case.pruned_workload(kind, Precision::Int8, pruned_nnz),
        split,
    );
    let reports = requests
        .simulate_all()
        .expect("suite simulation cannot fail when the split request carries a split");
    let reference_latency = reports
        .iter()
        .find(|r| r.platform == suite::reference_platform().name)
        .expect("reference platform present in the suite")
        .latency_ms;
    reports
        .into_iter()
        .map(|report| PlatformResult {
            platform: report.platform.clone(),
            speedup_over_cpu: report.speedup_over(reference_latency),
            report,
        })
        .collect()
}

/// Simulates the named baseline on `request`.
///
/// # Panics
///
/// Panics when the baseline name is unknown (harness-setup error).
pub fn simulate_baseline(name: &str, request: &SimRequest) -> PerfReport {
    suite::by_name(name)
        .unwrap_or_else(|| panic!("unknown baseline platform {name}"))
        .simulate(request)
        .expect("baseline platforms accept any request")
}

/// Simulates a GCoD accelerator configuration on `request` (which must carry
/// a split).
///
/// # Panics
///
/// Panics when `request` carries no GCoD split (harness-setup error).
pub fn simulate_accelerator(config: AcceleratorConfig, request: &SimRequest) -> PerfReport {
    GcodAccelerator::new(config)
        .simulate(request)
        .expect("accelerator requests must carry a GCoD split")
}

/// One speedup table (Fig. 9/10 style): per-dataset rows of normalized
/// speedups across every platform.
#[derive(Debug, Clone)]
pub struct SpeedupTable {
    /// Column headers: "dataset" followed by the platform names.
    pub headers: Vec<String>,
    /// One formatted row per dataset.
    pub rows: Vec<Vec<String>>,
    /// The raw per-dataset platform results behind the rows.
    pub results: Vec<Vec<PlatformResult>>,
}

/// Runs the algorithm replica and the full platform suite for every dataset
/// in `cases` under `model`, returning the formatted speedup table the
/// Fig. 9/10 binaries print.
pub fn speedup_table(cases: &[DatasetCase], model: ModelKind, config: &GcodConfig) -> SpeedupTable {
    let mut headers = vec!["dataset".to_string()];
    let mut rows = Vec::new();
    let mut results = Vec::new();
    for case in cases {
        let outcome = run_algorithm(case, config, 0);
        let platform_results = simulate_all_platforms(case, model, &outcome);
        if headers.len() == 1 {
            headers.extend(platform_results.iter().map(|r| r.platform.clone()));
        }
        let mut row = vec![case.profile.name.clone()];
        row.extend(
            platform_results
                .iter()
                .map(|r| fmt_speedup(r.speedup_over_cpu)),
        );
        rows.push(row);
        results.push(platform_results);
    }
    SpeedupTable {
        headers,
        rows,
        results,
    }
}

/// Fast GCoD configuration used by the harness binaries (the algorithm side
/// runs on replicas, so small iteration counts suffice).
pub fn harness_gcod_config() -> GcodConfig {
    GcodConfig {
        num_classes: 2,
        num_subgraphs: 8,
        num_groups: 2,
        prune_ratio: 0.10,
        polarization_weight: 1.0,
        tune_iterations: 2,
        patch_size: 32,
        patch_threshold: 12,
        pretrain_epochs: 10,
        retrain_epochs: 5,
        early_bird: true,
        ..GcodConfig::default()
    }
}

/// Generates the scaled replica graph of a dataset (used by the accuracy and
/// visualization binaries that need the actual graph, not just statistics).
///
/// # Panics
///
/// Panics when generation fails, which cannot happen for the built-in
/// profiles.
pub fn replica_graph(case: &DatasetCase, seed: u64) -> Graph {
    GraphGenerator::new(seed)
        .generate(&case.profile.scaled_to_nodes(REPLICA_TARGET_NODES))
        .expect("replica generation")
}

/// Formats a floating point speedup the way the paper's figures print them.
pub fn fmt_speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Resolves where a bench summary JSON should be written: the `target/`
/// scratch copy **and** the repo-root copy that is committed so the
/// cross-PR perf trajectory stays tracked. Setting the `env_override`
/// environment variable replaces both with that single explicit path.
pub fn bench_summary_paths(file_name: &str, env_override: &str) -> Vec<std::path::PathBuf> {
    use std::path::PathBuf;
    if let Some(path) = std::env::var_os(env_override) {
        return vec![PathBuf::from(path)];
    }
    // This crate sits at <workspace>/crates/gcod-bench.
    let workspace_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let target_dir = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| workspace_root.join("target"));
    vec![target_dir.join(file_name), workspace_root.join(file_name)]
}

/// Writes `contents` to every path of [`bench_summary_paths`], reporting
/// each outcome on stdout/stderr.
pub fn write_bench_summary(file_name: &str, env_override: &str, contents: &str) {
    for path in bench_summary_paths(file_name, env_override) {
        match std::fs::write(&path, contents) {
            Ok(()) => println!("wrote bench summary to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// Prints a Markdown-style table: a header row plus aligned value rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_cases_cover_the_paper() {
        assert_eq!(DatasetCase::citation_graphs().len(), 3);
        assert_eq!(DatasetCase::large_graphs().len(), 3);
        assert_eq!(DatasetCase::table6_datasets().len(), 5);
        let cora = DatasetCase::by_name("cora");
        assert!(cora.feature_density < 0.05);
        assert_eq!(cora.profile.nodes, 2708);
    }

    #[test]
    fn replica_scale_keeps_replicas_small() {
        for case in DatasetCase::large_graphs() {
            let scaled = case.profile.scaled(case.replica_scale());
            assert!(
                scaled.nodes <= 2_000,
                "{} replica too big",
                case.profile.name
            );
        }
        // Cora is already small: scale 1.0 leaves it untouched.
        assert!((DatasetCase::by_name("cora").replica_scale() - 0.554).abs() < 0.01);
    }

    #[test]
    fn algorithm_outcome_is_sensible() {
        let case = DatasetCase::by_name("cora");
        let outcome = run_algorithm(&case, &harness_gcod_config(), 0);
        assert!(outcome.retained_edge_fraction > 0.6);
        assert!(outcome.retained_edge_fraction <= 1.0);
        assert!(outcome.denser_fraction > 0.3);
        let sum: f64 = outcome.class_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn projected_split_matches_full_scale() {
        let case = DatasetCase::by_name("pubmed");
        let outcome = run_algorithm(&case, &harness_gcod_config(), 0);
        let split = project_split(&case, &outcome);
        let expected = (case.directed_edges() as f64 * outcome.retained_edge_fraction) as usize;
        let got = split.total_nnz();
        assert!(
            (got as f64 - expected as f64).abs() / (expected as f64) < 0.05,
            "projected nnz {got} vs expected {expected}"
        );
        assert_eq!(split.num_classes, 2);
    }

    #[test]
    fn gcod_beats_the_strongest_baseline() {
        // The headline claim: GCoD is faster than AWB-GCN (on average 2.5x)
        // and HyGCN (7.8x). Check the ordering on Cora/GCN.
        let case = DatasetCase::by_name("cora");
        let outcome = run_algorithm(&case, &harness_gcod_config(), 0);
        let results = simulate_all_platforms(&case, ModelKind::Gcn, &outcome);
        let latency = |name: &str| {
            results
                .iter()
                .find(|r| r.platform == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .report
                .latency_ms
        };
        assert!(latency("gcod") < latency("awb-gcn"));
        assert!(latency("gcod") < latency("hygcn"));
        assert!(latency("gcod-8bit") <= latency("gcod"));
        assert!(latency("gcod") < latency("pyg-gpu"));
        assert!(latency("pyg-gpu") < latency("pyg-cpu"));
    }

    #[test]
    fn request_helpers_route_the_split() {
        let case = DatasetCase::by_name("cora");
        let outcome = run_algorithm(&case, &harness_gcod_config(), 0);
        let baseline = case.baseline_request(ModelKind::Gcn);
        assert!(baseline.split.is_none());
        let gcod_req = case.gcod_request(ModelKind::Gcn, Precision::Int8, &outcome);
        assert_eq!(gcod_req.precision(), Precision::Int8);
        let split = gcod_req.split.as_ref().expect("split attached");
        assert_eq!(split.total_nnz(), gcod_req.workload.layers[0].adjacency_nnz);
    }

    #[test]
    fn speedup_table_covers_all_platforms_per_dataset() {
        let cases = vec![DatasetCase::by_name("cora")];
        let table = speedup_table(&cases, ModelKind::Gcn, &harness_gcod_config());
        assert_eq!(table.headers.len(), 12); // dataset + 11 platforms
        assert_eq!(table.rows.len(), 1);
        assert_eq!(table.rows[0].len(), table.headers.len());
        assert_eq!(table.results[0].len(), 11);
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(15286.4), "15286");
        assert_eq!(fmt_speedup(12.34), "12.3");
        assert_eq!(fmt_speedup(2.5), "2.50");
    }

    #[test]
    fn model_configs_follow_table4() {
        let case = DatasetCase::by_name("reddit");
        assert_eq!(case.model_config(ModelKind::Gcn).hidden_dim, 64);
        assert_eq!(case.model_config(ModelKind::Gat).heads, 8);
        assert_eq!(case.model_config(ModelKind::ResGcn).num_layers, 28);
        let small = DatasetCase::by_name("cora");
        assert_eq!(small.model_config(ModelKind::Gcn).hidden_dim, 16);
    }
}
