//! Shared harness for regenerating every table and figure of the GCoD
//! evaluation.
//!
//! The harness separates the two halves of each experiment the same way the
//! paper does:
//!
//! * the **algorithm half** runs the actual GCoD split-and-conquer code on a
//!   scaled-down replica of each dataset (the full Reddit graph has 114 M
//!   edges — pointless to materialise for a workload model) and measures the
//!   *structural* outcomes: achieved prune ratio, denser/sparser split,
//!   per-class workload distribution,
//! * the **hardware half** feeds the full-size dataset statistics
//!   (Table III) plus those measured structural fractions into the platform
//!   models, producing latency / bandwidth / traffic / energy reports that
//!   the figure generators print.
//!
//! Every binary in `src/bin/` is one table or figure; `cargo bench`
//! (criterion) covers the kernel-level measurements.

use gcod_accel::config::AcceleratorConfig;
use gcod_accel::report::PerfReport;
use gcod_accel::simulator::GcodAccelerator;
use gcod_baselines::suite;
use gcod_baselines::Platform;
use gcod_core::workload::DenseBlock;
use gcod_core::{GcodConfig, Polarizer, SplitWorkload, SubgraphLayout};
use gcod_graph::{CscMatrix, DatasetProfile, Graph, GraphGenerator};
use gcod_nn::models::{ModelConfig, ModelKind};
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;

/// One dataset of the evaluation: its Table III profile plus the input
/// feature density of the real data (bag-of-words features are sparse for
/// the citation graphs and NELL, dense for ogbn-arxiv and Reddit).
#[derive(Debug, Clone)]
pub struct DatasetCase {
    /// Full-size dataset profile.
    pub profile: DatasetProfile,
    /// Input feature density of the real dataset.
    pub feature_density: f64,
}

impl DatasetCase {
    /// The evaluation dataset with the given name.
    ///
    /// # Panics
    ///
    /// Panics if the name is not one of the paper's six datasets.
    pub fn by_name(name: &str) -> Self {
        let profile =
            DatasetProfile::by_name(name).unwrap_or_else(|| panic!("unknown dataset {name}"));
        let feature_density = match profile.name.as_str() {
            "cora" => 0.0127,
            "citeseer" => 0.0085,
            "pubmed" => 0.10,
            "nell" => 0.0011,
            "ogbn-arxiv" => 1.0,
            "reddit" => 1.0,
            _ => 1.0,
        };
        Self {
            profile,
            feature_density,
        }
    }

    /// The three citation graphs of Fig. 9.
    pub fn citation_graphs() -> Vec<Self> {
        ["cora", "citeseer", "pubmed"]
            .iter()
            .map(|n| Self::by_name(n))
            .collect()
    }

    /// The large graphs of Fig. 10.
    pub fn large_graphs() -> Vec<Self> {
        ["nell", "reddit", "ogbn-arxiv"]
            .iter()
            .map(|n| Self::by_name(n))
            .collect()
    }

    /// The five datasets of Table VI / Fig. 11 / Fig. 12.
    pub fn table6_datasets() -> Vec<Self> {
        ["cora", "citeseer", "pubmed", "nell", "reddit"]
            .iter()
            .map(|n| Self::by_name(n))
            .collect()
    }

    /// Directed edge count of the full-size dataset.
    pub fn directed_edges(&self) -> usize {
        self.profile.edges * 2
    }

    /// The model configuration the paper uses for `kind` on this dataset
    /// (Table IV hidden sizes depend on the dataset scale).
    pub fn model_config(&self, kind: ModelKind) -> ModelConfig {
        let hidden = if self.profile.nodes > 20_000 { 64 } else { 16 };
        let mut cfg = ModelConfig {
            kind,
            input_dim: self.profile.feature_dim,
            hidden_dim: hidden,
            output_dim: self.profile.classes,
            num_layers: 2,
            heads: 1,
            eps: 0.0,
            residual: false,
        };
        match kind {
            ModelKind::Gin => cfg.num_layers = 3,
            ModelKind::Gat => {
                cfg.hidden_dim = 8;
                cfg.heads = 8;
            }
            ModelKind::ResGcn => {
                cfg.hidden_dim = 128;
                cfg.num_layers = 28;
                cfg.residual = true;
            }
            ModelKind::Gcn | ModelKind::GraphSage => {}
        }
        cfg
    }

    /// Scale factor for the algorithm-side replica: keeps the replica around
    /// 1,500 nodes so the split-and-conquer run stays fast.
    pub fn replica_scale(&self) -> f64 {
        (1_500.0 / self.profile.nodes as f64).min(1.0)
    }
}

/// Structural outcome of running the GCoD algorithm on a dataset replica,
/// expressed as fractions so it can be projected onto the full-size graph.
#[derive(Debug, Clone)]
pub struct AlgorithmOutcome {
    /// Fraction of directed edges retained after sparsify + polarize +
    /// structural sparsification.
    pub retained_edge_fraction: f64,
    /// Fraction of the retained edges that fall in the denser (block
    /// diagonal) branch.
    pub denser_fraction: f64,
    /// Distribution of the denser workload over the degree classes
    /// (fractions summing to 1).
    pub class_fractions: Vec<f64>,
    /// Number of subgraph blocks per class in the replica layout.
    pub blocks_per_class: Vec<usize>,
    /// The GCoD configuration used.
    pub config: GcodConfig,
}

/// Runs the structural part of the GCoD algorithm (layout, polarization,
/// structural sparsification — no GCN retraining) on a scaled replica of the
/// dataset and summarises the outcome.
///
/// # Panics
///
/// Panics if graph generation or the pipeline steps fail — the harness treats
/// that as a fatal benchmark-setup error.
pub fn run_algorithm(case: &DatasetCase, config: &GcodConfig, seed: u64) -> AlgorithmOutcome {
    let profile = case.profile.scaled(case.replica_scale());
    let graph = GraphGenerator::new(seed)
        .generate(&profile)
        .expect("replica generation cannot fail for known profiles");
    let layout = SubgraphLayout::build(&graph, config, seed).expect("layout");
    let reordered = layout.apply(&graph);
    let (tuned, _) = Polarizer::new(config.clone())
        .tune(reordered.adjacency(), &layout)
        .expect("polarize");
    let (structural, _) =
        gcod_core::structural_sparsify(&tuned, &layout, config.patch_size, config.patch_threshold);
    let split = SplitWorkload::extract(&structural, &layout);
    let retained = structural.nnz() as f64 / graph.num_edges().max(1) as f64;
    let denser_fraction = 1.0 - split.sparser_fraction();
    let per_class = split.nnz_per_class();
    let denser_total: usize = per_class.iter().sum::<usize>().max(1);
    let class_fractions: Vec<f64> = per_class
        .iter()
        .map(|&n| n as f64 / denser_total as f64)
        .collect();
    let blocks_per_class = (0..split.num_classes)
        .map(|c| split.blocks_of_class(c).len())
        .collect();
    AlgorithmOutcome {
        retained_edge_fraction: retained,
        denser_fraction,
        class_fractions,
        blocks_per_class,
        config: config.clone(),
    }
}

/// Projects a replica-measured [`AlgorithmOutcome`] onto the full-size
/// dataset, producing the [`SplitWorkload`] the accelerator model consumes.
pub fn project_split(case: &DatasetCase, outcome: &AlgorithmOutcome) -> SplitWorkload {
    let nodes = case.profile.nodes;
    let retained_nnz =
        (case.directed_edges() as f64 * outcome.retained_edge_fraction).round() as usize;
    let denser_nnz = (retained_nnz as f64 * outcome.denser_fraction).round() as usize;
    let sparser_nnz = retained_nnz - denser_nnz;

    let num_classes = outcome.class_fractions.len().max(1);
    let mut blocks = Vec::new();
    let mut cursor = 0usize;
    for (class, &fraction) in outcome.class_fractions.iter().enumerate() {
        let class_nnz = (denser_nnz as f64 * fraction) as usize;
        let class_blocks = outcome
            .blocks_per_class
            .get(class)
            .copied()
            .unwrap_or(1)
            .max(1);
        let class_nodes = nodes / num_classes;
        for b in 0..class_blocks {
            let len = (class_nodes / class_blocks).max(1);
            blocks.push(DenseBlock {
                class,
                group: b % outcome.config.num_groups.max(1),
                start: cursor,
                len,
                nnz: class_nnz / class_blocks,
            });
            cursor += len;
        }
    }
    SplitWorkload {
        blocks,
        sparser: CscMatrix::zeros(nodes, nodes),
        denser_nnz,
        sparser_nnz,
        num_classes,
    }
}

/// A single speedup-table row: platform name plus its report.
#[derive(Debug, Clone)]
pub struct PlatformResult {
    /// Platform name.
    pub platform: String,
    /// The simulation report.
    pub report: PerfReport,
    /// Speedup relative to the PyG-CPU anchor.
    pub speedup_over_cpu: f64,
}

/// Simulates every platform of Fig. 9/10 (nine baselines + GCoD + GCoD 8-bit)
/// on one dataset × model pair and returns the normalized speedups.
pub fn simulate_all_platforms(
    case: &DatasetCase,
    kind: ModelKind,
    outcome: &AlgorithmOutcome,
) -> Vec<PlatformResult> {
    let model_cfg = case.model_config(kind);
    let full_workload = InferenceWorkload::from_stats(
        &case.profile.name,
        case.profile.nodes,
        case.directed_edges(),
        case.feature_density,
        &model_cfg,
        Precision::Fp32,
    );
    let reference_latency = suite::reference_platform()
        .simulate(&full_workload)
        .latency_ms;

    let mut results = Vec::new();
    for platform in suite::all_baselines() {
        let report = platform.simulate(&full_workload);
        results.push(PlatformResult {
            platform: platform.name.clone(),
            speedup_over_cpu: report.speedup_over(reference_latency),
            report,
        });
    }

    // GCoD runs on the pruned, polarized adjacency.
    let split = project_split(case, outcome);
    let pruned_nnz = split.total_nnz();
    for (accel_cfg, precision) in [
        (AcceleratorConfig::vcu128(), Precision::Fp32),
        (AcceleratorConfig::vcu128_int8(), Precision::Int8),
    ] {
        let gcod_workload = InferenceWorkload::from_stats(
            &case.profile.name,
            case.profile.nodes,
            pruned_nnz,
            case.feature_density,
            &model_cfg,
            precision,
        );
        let report = GcodAccelerator::new(accel_cfg).simulate(&gcod_workload, &split);
        results.push(PlatformResult {
            platform: report.platform.clone(),
            speedup_over_cpu: report.speedup_over(reference_latency),
            report,
        });
    }
    results
}

/// Fast GCoD configuration used by the harness binaries (the algorithm side
/// runs on replicas, so small iteration counts suffice).
pub fn harness_gcod_config() -> GcodConfig {
    GcodConfig {
        num_classes: 2,
        num_subgraphs: 8,
        num_groups: 2,
        prune_ratio: 0.10,
        polarization_weight: 1.0,
        tune_iterations: 2,
        patch_size: 32,
        patch_threshold: 12,
        pretrain_epochs: 10,
        retrain_epochs: 5,
        early_bird: true,
        ..GcodConfig::default()
    }
}

/// Generates the scaled replica graph of a dataset (used by the accuracy and
/// visualization binaries that need the actual graph, not just statistics).
///
/// # Panics
///
/// Panics when generation fails, which cannot happen for the built-in
/// profiles.
pub fn replica_graph(case: &DatasetCase, seed: u64) -> Graph {
    GraphGenerator::new(seed)
        .generate(&case.profile.scaled(case.replica_scale()))
        .expect("replica generation")
}

/// Formats a floating point speedup the way the paper's figures print them.
pub fn fmt_speedup(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

/// Prints a Markdown-style table: a header row plus aligned value rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_cases_cover_the_paper() {
        assert_eq!(DatasetCase::citation_graphs().len(), 3);
        assert_eq!(DatasetCase::large_graphs().len(), 3);
        assert_eq!(DatasetCase::table6_datasets().len(), 5);
        let cora = DatasetCase::by_name("cora");
        assert!(cora.feature_density < 0.05);
        assert_eq!(cora.profile.nodes, 2708);
    }

    #[test]
    fn replica_scale_keeps_replicas_small() {
        for case in DatasetCase::large_graphs() {
            let scaled = case.profile.scaled(case.replica_scale());
            assert!(
                scaled.nodes <= 2_000,
                "{} replica too big",
                case.profile.name
            );
        }
        // Cora is already small: scale 1.0 leaves it untouched.
        assert!((DatasetCase::by_name("cora").replica_scale() - 0.554).abs() < 0.01);
    }

    #[test]
    fn algorithm_outcome_is_sensible() {
        let case = DatasetCase::by_name("cora");
        let outcome = run_algorithm(&case, &harness_gcod_config(), 0);
        assert!(outcome.retained_edge_fraction > 0.6);
        assert!(outcome.retained_edge_fraction <= 1.0);
        assert!(outcome.denser_fraction > 0.3);
        let sum: f64 = outcome.class_fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn projected_split_matches_full_scale() {
        let case = DatasetCase::by_name("pubmed");
        let outcome = run_algorithm(&case, &harness_gcod_config(), 0);
        let split = project_split(&case, &outcome);
        let expected = (case.directed_edges() as f64 * outcome.retained_edge_fraction) as usize;
        let got = split.total_nnz();
        assert!(
            (got as f64 - expected as f64).abs() / (expected as f64) < 0.05,
            "projected nnz {got} vs expected {expected}"
        );
        assert_eq!(split.num_classes, 2);
    }

    #[test]
    fn gcod_beats_the_strongest_baseline() {
        // The headline claim: GCoD is faster than AWB-GCN (on average 2.5x)
        // and HyGCN (7.8x). Check the ordering on Cora/GCN.
        let case = DatasetCase::by_name("cora");
        let outcome = run_algorithm(&case, &harness_gcod_config(), 0);
        let results = simulate_all_platforms(&case, ModelKind::Gcn, &outcome);
        let latency = |name: &str| {
            results
                .iter()
                .find(|r| r.platform == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .report
                .latency_ms
        };
        assert!(latency("gcod") < latency("awb-gcn"));
        assert!(latency("gcod") < latency("hygcn"));
        assert!(latency("gcod-8bit") <= latency("gcod"));
        assert!(latency("gcod") < latency("pyg-gpu"));
        assert!(latency("pyg-gpu") < latency("pyg-cpu"));
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(15286.4), "15286");
        assert_eq!(fmt_speedup(12.34), "12.3");
        assert_eq!(fmt_speedup(2.5), "2.50");
    }

    #[test]
    fn model_configs_follow_table4() {
        let case = DatasetCase::by_name("reddit");
        assert_eq!(case.model_config(ModelKind::Gcn).hidden_dim, 64);
        assert_eq!(case.model_config(ModelKind::Gat).heads, 8);
        assert_eq!(case.model_config(ModelKind::ResGcn).num_layers, 28);
        let small = DatasetCase::by_name("cora");
        assert_eq!(small.model_config(ModelKind::Gcn).hidden_dim, 16);
    }
}
