//! Open-loop load generator for the serving front-end: Poisson arrivals at
//! a configured offered load, with log-bucketed latency histograms.
//!
//! The closed-loop sweeps in [`crate::sweeps`] measure *service time* —
//! each iteration submits a batch and waits for it, so the server is never
//! more loaded than one window. Tail latency under load needs the opposite
//! discipline: an **open loop**, where arrivals are paced by an external
//! clock (exponential inter-arrival gaps, i.e. a Poisson process) and keep
//! coming regardless of how far the server has fallen behind. That is what
//! exposes queueing delay, adaptive-batch behaviour and backpressure, and
//! it is the standard methodology for tail-latency measurement (the
//! coordinated-omission trap the closed loop falls into).
//!
//! Everything is seeded: the arrival process derives from [`SplitMix64`],
//! so two runs at the same seed offer the same arrival schedule (modulo
//! sleep jitter). Latencies are recorded into a [`LatencyHistogram`] with
//! ~6% value resolution, from which `p50`/`p99`/`p999` rows are extracted
//! for `BENCH_serve.json` (gated by `bench_gate`; the `load_harness` bin is
//! the CI smoke driver).

use crate::sweeps::{serve_classify_request, serve_server};
use gcod_runtime::{PopTimeout, SyncQueue};
use gcod_serve::{SubmitOptions, Ticket};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Offered loads (requests/second) of the default open-loop sweep: one
/// comfortably under capacity, one near it, one past it (where adaptive
/// batching and queue backpressure carry the traffic).
pub const OPEN_LOOP_LOADS: &[f64] = &[100.0, 800.0, 2500.0];

/// Requests per offered load in the default sweep.
pub const OPEN_LOOP_REQUESTS: usize = 300;

/// The quantile rows committed to `BENCH_serve.json`: `(case, quantile)`.
pub const OPEN_LOOP_QUANTILES: &[(&str, f64)] =
    &[("open-p50", 0.50), ("open-p99", 0.99), ("open-p999", 0.999)];

/// SplitMix64: a tiny, high-quality seeded PRNG (the PCG paper's favourite
/// mixing finaliser). One `u64` of state, full 2^64 period, no vendored
/// dependency needed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, including 0, is fine).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// An exponentially distributed gap with the given rate (events/sec),
    /// i.e. one inter-arrival time of a Poisson process.
    pub fn next_exp_gap(&mut self, rate_per_sec: f64) -> Duration {
        let u = self.next_f64();
        // -ln(1-u)/rate; 1-u is in (0, 1] so the log is finite.
        let secs = -(1.0 - u).ln() / rate_per_sec.max(f64::MIN_POSITIVE);
        Duration::from_secs_f64(secs.clamp(0.0, 60.0))
    }
}

/// Number of linear sub-buckets per power-of-two octave (16 → ~6% value
/// resolution, HDR-histogram style).
const SUBBUCKETS: usize = 16;
/// Bucket count: 16 exact buckets under 16ns plus 60 octaves × 16.
const BUCKETS: usize = SUBBUCKETS * 61;

/// A log-bucketed latency histogram: power-of-two octaves split into 16
/// linear sub-buckets (~6% value resolution), exact min/max, O(1) record,
/// O(buckets) quantile.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_index(ns: u64) -> usize {
        if ns < SUBBUCKETS as u64 {
            return ns as usize;
        }
        let exp = 63 - ns.leading_zeros() as usize; // >= 4 here
        let sub = ((ns >> (exp - 4)) & 0xF) as usize;
        (exp - 3) * SUBBUCKETS + sub
    }

    /// The lower bound (ns) of bucket `index` — what quantiles report.
    fn bucket_value(index: usize) -> u64 {
        if index < SUBBUCKETS {
            return index as u64;
        }
        let group = index / SUBBUCKETS;
        let sub = (index % SUBBUCKETS) as u64;
        let exp = group + 3;
        (SUBBUCKETS as u64 + sub) << (exp - 4)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.counts[Self::bucket_index(ns).min(BUCKETS - 1)] += 1;
        self.total += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact smallest recorded sample in nanoseconds (0 when empty).
    #[must_use]
    pub fn min_ns(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Exact largest recorded sample in nanoseconds (0 when empty).
    #[must_use]
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The latency (ns) at quantile `q` in `[0, 1]`: the bucket holding the
    /// `ceil(q × count)`-th smallest sample, clamped to the exact min/max so
    /// `quantile(0)` and `quantile(1)` are exact. 0 when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let target = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        if target == self.total {
            return self.max_ns;
        }
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Self::bucket_value(index).clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Configuration of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Offered load in requests/second (the Poisson rate).
    pub offered_rps: f64,
    /// Total arrivals to generate.
    pub requests: usize,
    /// Seed of the arrival process.
    pub seed: u64,
    /// `max_batch` of the server under test.
    pub max_batch: usize,
    /// Per-submission deadline (`None` = none; expiries count as rejected
    /// work in the report, not as lost tickets).
    pub deadline: Option<Duration>,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        Self {
            offered_rps: 500.0,
            requests: OPEN_LOOP_REQUESTS,
            seed: 7,
            max_batch: 32,
            deadline: None,
        }
    }
}

/// Outcome of one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// The configured offered load (requests/second).
    pub offered_rps: f64,
    /// Arrivals generated.
    pub offered: u64,
    /// Submissions the server accepted.
    pub accepted: u64,
    /// Submissions rejected at the door (backpressure / overload / expired
    /// in queue — everything that resolved with a rejection).
    pub rejected: u64,
    /// Accepted tickets that never resolved within the collection timeout.
    /// **Must be zero**: a lost ticket is a serving-layer bug (the drain
    /// contract says every accepted ticket resolves).
    pub lost: u64,
    /// Completed requests per second of wall time, start of first arrival
    /// to last completion.
    pub achieved_rps: f64,
    /// Latency histogram over successfully completed requests
    /// (submission-to-completion, queueing included).
    pub histogram: LatencyHistogram,
}

impl OpenLoopReport {
    /// The latency (ns) at quantile `q` over completed requests.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        self.histogram.quantile(q)
    }
}

/// Runs one open-loop measurement: spawns the [`serve_server`] fixture,
/// paces `config.requests` Poisson arrivals at `config.offered_rps`, and
/// collects completion latencies on a second thread (so waiting never
/// back-pressures the arrival clock — that would close the loop).
///
/// # Panics
///
/// Panics when the collector thread panics (a harness bug, not a load
/// outcome).
pub fn run_open_loop(config: &OpenLoopConfig) -> OpenLoopReport {
    let handle = serve_server(config.max_batch).spawn();
    let inflight: Arc<SyncQueue<(Ticket, Instant)>> =
        Arc::new(SyncQueue::bounded(config.requests.max(1)));

    // The collector: FIFO over submission order (the dispatcher resolves in
    // pop order, so head-of-line waiting tracks completion order). Latency
    // is submit-to-observed-completion; a ticket unresolved after the
    // generous timeout is *lost* — the invariant the smoke harness asserts
    // on.
    let collector = {
        let inflight = Arc::clone(&inflight);
        std::thread::spawn(move || {
            let mut histogram = LatencyHistogram::new();
            let mut lost = 0u64;
            let mut rejected_in_queue = 0u64;
            let mut last_completion = None;
            loop {
                match inflight.pop_timeout(Duration::from_millis(100)) {
                    PopTimeout::Item((ticket, submitted_at)) => {
                        match ticket.wait_timeout(Duration::from_secs(10)) {
                            Some(Ok(_)) => {
                                let now = Instant::now();
                                histogram.record(now.duration_since(submitted_at));
                                last_completion = Some(now);
                            }
                            // Deadline expiry inside the queue resolves the
                            // ticket with a rejection: accounted, not lost.
                            Some(Err(_)) => rejected_in_queue += 1,
                            None => lost += 1,
                        }
                    }
                    PopTimeout::TimedOut => continue,
                    PopTimeout::Closed => break,
                }
            }
            (histogram, lost, rejected_in_queue, last_completion)
        })
    };

    let mut rng = SplitMix64::new(config.seed);
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let options = match config.deadline {
        Some(deadline) => SubmitOptions::default().deadline(deadline),
        None => SubmitOptions::default(),
    };
    let started = Instant::now();
    let mut next_arrival = started;
    for i in 0..config.requests {
        next_arrival += rng.next_exp_gap(config.offered_rps);
        let now = Instant::now();
        if next_arrival > now {
            // gcod-check: allow(thread-sleep) — open-loop pacing: arrivals are driven by an external clock by definition; there is no peer to park on a condvar for.
            std::thread::sleep(next_arrival - now);
        }
        match handle.submit(serve_classify_request(i), options) {
            Ok(ticket) => {
                accepted += 1;
                let _ = inflight.try_push((ticket, Instant::now()));
            }
            Err(_) => rejected += 1,
        }
    }
    inflight.close();
    let (histogram, lost, rejected_in_queue, last_completion) =
        collector.join().expect("collector thread");
    handle.shutdown();

    let elapsed = last_completion
        .unwrap_or_else(Instant::now)
        .duration_since(started)
        .as_secs_f64();
    let achieved_rps = if elapsed > 0.0 {
        histogram.count() as f64 / elapsed
    } else {
        0.0
    };
    OpenLoopReport {
        offered_rps: config.offered_rps,
        offered: config.requests as u64,
        accepted,
        rejected: rejected + rejected_in_queue,
        lost,
        achieved_rps,
        histogram,
    }
}

/// Sweeps the open loop over `loads` (requests/second), `requests` arrivals
/// each, on one seed.
pub fn sweep_open_loop(loads: &[f64], requests: usize, seed: u64) -> Vec<OpenLoopReport> {
    loads
        .iter()
        .map(|&offered_rps| {
            run_open_loop(&OpenLoopConfig {
                offered_rps,
                requests,
                seed,
                ..OpenLoopConfig::default()
            })
        })
        .collect()
}

/// Flattens sweep reports into gate rows keyed exactly like the committed
/// `BENCH_serve.json` open-loop rows: `serve/<case>/<offered_rps>` with the
/// quantile latency (ns) as the value, for each of [`OPEN_LOOP_QUANTILES`].
pub fn open_loop_gate_rows(reports: &[OpenLoopReport]) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for report in reports {
        for &(case, q) in OPEN_LOOP_QUANTILES {
            rows.push((
                format!("serve/{case}/{:.0}", report.offered_rps),
                report.quantile_ns(q) as f64,
            ));
        }
    }
    rows
}

/// Renders sweep reports as `BENCH_serve.json`-shaped JSON objects (one
/// string per row, no surrounding array): `case` is the quantile name,
/// `batch` reuses the offered load as the numeric key column, `median_ns`
/// is the quantile latency.
pub fn open_loop_summary_rows(reports: &[OpenLoopReport], resolved_workers: usize) -> Vec<String> {
    let mut rows = Vec::new();
    for report in reports {
        for &(case, q) in OPEN_LOOP_QUANTILES {
            let ns = report.quantile_ns(q);
            rows.push(format!(
                "  {{\"case\": \"{case}\", \"batch\": {:.0}, \"median_ns\": {ns}, \
                 \"per_request_us\": {:.3}, \"throughput_rps\": {:.1}, \
                 \"resolved_workers\": {resolved_workers}}}",
                report.offered_rps,
                ns as f64 / 1e3,
                report.achieved_rps,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_well_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert_ne!(xs[0], xs[1]);
        let mut c = SplitMix64::new(43);
        assert_ne!(xs[0], c.next_u64(), "different seed, different stream");
        for _ in 0..1000 {
            let u = c.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_gaps_have_roughly_the_configured_mean() {
        let mut rng = SplitMix64::new(9);
        let rate = 1000.0; // mean gap 1ms
        let n = 4000;
        let total: f64 = (0..n).map(|_| rng.next_exp_gap(rate).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!(
            (0.8e-3..1.2e-3).contains(&mean),
            "mean gap {mean}s for rate {rate}/s"
        );
    }

    #[test]
    fn histogram_buckets_round_trip_and_quantiles_are_ordered() {
        let mut hist = LatencyHistogram::new();
        assert_eq!(hist.quantile(0.5), 0);
        // A spread of values across several octaves.
        for ns in [50u64, 100, 100, 200, 400, 800, 1_600, 3_200, 1_000_000] {
            hist.record(Duration::from_nanos(ns));
        }
        assert_eq!(hist.count(), 9);
        assert_eq!(hist.min_ns(), 50);
        assert_eq!(hist.max_ns(), 1_000_000);
        let p50 = hist.quantile(0.50);
        let p99 = hist.quantile(0.99);
        let p999 = hist.quantile(0.999);
        assert!(p50 <= p99 && p99 <= p999, "quantiles must be monotone");
        assert!(p999 <= hist.max_ns());
        // ~6% bucket resolution: the p50 bucket holds the true median (400,
        // the 5th smallest of 9).
        assert!((375..=400).contains(&p50), "p50 bucket was {p50}");
        // Extremes are exact.
        assert_eq!(hist.quantile(0.0), 50);
        assert_eq!(hist.quantile(1.0), 1_000_000);
    }

    #[test]
    fn bucket_value_is_a_lower_bound_of_its_own_bucket() {
        for ns in [0u64, 1, 15, 16, 17, 31, 32, 1_000, 123_456, u64::MAX / 2] {
            let index = LatencyHistogram::bucket_index(ns);
            let value = LatencyHistogram::bucket_value(index);
            assert!(value <= ns, "bucket value {value} exceeds sample {ns}");
            if index + 1 < BUCKETS {
                assert!(
                    LatencyHistogram::bucket_value(index + 1) > ns,
                    "sample {ns} belongs to a later bucket"
                );
            }
        }
    }

    #[test]
    fn tiny_open_loop_run_loses_no_tickets() {
        let report = run_open_loop(&OpenLoopConfig {
            offered_rps: 400.0,
            requests: 24,
            seed: 3,
            ..OpenLoopConfig::default()
        });
        assert_eq!(report.offered, 24);
        assert_eq!(report.lost, 0, "every accepted ticket must resolve");
        assert_eq!(
            report.offered,
            report.histogram.count() + report.rejected + report.lost,
            "every arrival is completed, rejected or lost — none vanish"
        );
        assert!(report.histogram.count() > 0);
        assert!(report.quantile_ns(0.5) > 0);
    }

    #[test]
    fn gate_and_summary_rows_cover_every_quantile_per_load() {
        let report = run_open_loop(&OpenLoopConfig {
            offered_rps: 600.0,
            requests: 16,
            seed: 5,
            ..OpenLoopConfig::default()
        });
        let rows = open_loop_gate_rows(std::slice::from_ref(&report));
        assert_eq!(rows.len(), OPEN_LOOP_QUANTILES.len());
        assert!(rows.iter().any(|(k, _)| k == "serve/open-p50/600"));
        assert!(rows.iter().all(|(_, v)| *v > 0.0));
        let json = open_loop_summary_rows(std::slice::from_ref(&report), 1);
        assert_eq!(json.len(), OPEN_LOOP_QUANTILES.len());
        assert!(json[0].contains("\"case\": \"open-p50\""));
        assert!(json[0].contains("\"batch\": 600"));
    }
}
