//! Table VII: accuracy of GCoD vs the compression baselines (Random Pruning,
//! SGCN, QAT, Degree-Quant) on the citation-graph replicas.
//!
//! Absolute accuracies differ from the paper (the datasets here are synthetic
//! replicas), but the ordering is the claim under test: GCoD matches or beats
//! the vanilla model, smart sparsification beats random pruning, and the
//! 8-bit variants stay close to full precision.

use gcod::Experiment;
use gcod_bench::{print_table, DatasetCase};
use gcod_core::compression::{evaluate_compression, CompressionMethod};
use gcod_core::GcodConfig;
use gcod_nn::models::ModelKind;
use gcod_nn::quant::quantized_forward;

fn main() {
    // Small replicas keep the (many) training runs fast while exercising the
    // full training/compression code paths.
    let epochs = 40;
    let gcod_config = GcodConfig {
        num_classes: 2,
        num_subgraphs: 6,
        num_groups: 2,
        prune_ratio: 0.10,
        patch_size: 16,
        patch_threshold: 6,
        pretrain_epochs: 25,
        retrain_epochs: 15,
        ..GcodConfig::default()
    };
    let methods = [
        CompressionMethod::Vanilla,
        CompressionMethod::RandomPruning { ratio: 0.10 },
        CompressionMethod::Sgcn { ratio: 0.10 },
        CompressionMethod::Qat,
        CompressionMethod::DegreeQuant,
    ];

    println!("Table VII: test accuracy (%) of GCoD vs compression baselines");
    println!("(synthetic dataset replicas; compare orderings, not absolute values)\n");

    for model in [
        ModelKind::Gcn,
        ModelKind::Gat,
        ModelKind::Gin,
        ModelKind::GraphSage,
    ] {
        let mut rows = Vec::new();
        for name in ["cora", "citeseer", "pubmed"] {
            let case = DatasetCase::by_name(name);
            // Use a smaller replica than the performance harness: these runs
            // actually train.
            let experiment = Experiment::on(case.profile.clone())
                .scale(0.12 * case.replica_scale())
                .model(model)
                .gcod(gcod_config.clone())
                .seed(7);
            let graph = experiment.generate().expect("replica");

            let mut row = vec![format!("{}/{}", model.name(), name)];
            for method in methods {
                let outcome = evaluate_compression(&graph, model, method, epochs, 0)
                    .expect("compression evaluation");
                row.push(format!("{:.1}", outcome.test_accuracy * 100.0));
            }

            // GCoD itself (full pipeline) and its 8-bit evaluation.
            let result = experiment.train().expect("gcod pipeline");
            row.push(format!("{:.1}", result.gcod_accuracy * 100.0));
            let int8_logits =
                quantized_forward(&result.model, &result.graph).expect("quantized forward");
            let int8_acc = gcod_nn::metrics::masked_accuracy(
                &int8_logits,
                result.graph.labels(),
                result.graph.test_mask(),
            );
            row.push(format!("{:.1}", int8_acc * 100.0));
            row.push(format!(
                "{:+.1}",
                (result.gcod_accuracy - result.baseline_accuracy) * 100.0
            ));
            rows.push(row);
        }
        println!("== {} ==", model.name().to_uppercase());
        print_table(
            &[
                "model/dataset",
                "vanilla",
                "rp",
                "sgcn",
                "qat",
                "degree-quant",
                "gcod",
                "gcod (8-bit)",
                "gcod improv.",
            ],
            &rows,
        );
        println!();
    }
}
