//! Fig. 9: normalized inference speedups (vs PyG-CPU) on the three citation
//! graphs for GCN, GIN, GAT and GraphSAGE across all platforms.
//!
//! The paper's headline averages: GCoD achieves 15286x over PyG-CPU, 294x
//! over PyG-GPU, 7.8x over HyGCN and 2.5x over AWB-GCN. The absolute factors
//! here come from analytical platform models, so the numbers differ, but the
//! ordering and rough magnitudes are expected to hold.

use gcod_bench::{fmt_speedup, harness_gcod_config, print_table, speedup_table, DatasetCase};
use gcod_nn::models::ModelKind;

fn main() {
    let models = [
        ModelKind::Gcn,
        ModelKind::Gin,
        ModelKind::Gat,
        ModelKind::GraphSage,
    ];
    let config = harness_gcod_config();
    let cases = DatasetCase::citation_graphs();
    println!("Fig. 9: normalized speedups over PyG-CPU (citation graphs)\n");

    let mut geo_means: std::collections::BTreeMap<String, (f64, usize)> =
        std::collections::BTreeMap::new();

    for model in models {
        let table = speedup_table(&cases, model, &config);
        for result in table.results.iter().flatten() {
            let entry = geo_means.entry(result.platform.clone()).or_insert((0.0, 0));
            entry.0 += result.speedup_over_cpu.max(1e-9).ln();
            entry.1 += 1;
        }
        println!("== {} ==", model.name().to_uppercase());
        let header_refs: Vec<&str> = table.headers.iter().map(String::as_str).collect();
        print_table(&header_refs, &table.rows);
        println!();
    }

    println!("Geometric-mean speedup over PyG-CPU across all model/dataset pairs:");
    let mut summary: Vec<(String, f64)> = geo_means
        .into_iter()
        .map(|(name, (sum, n))| (name, (sum / n as f64).exp()))
        .collect();
    summary.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, speedup) in summary {
        println!("  {name:>10}: {}x", fmt_speedup(speedup));
    }
}
