//! Tab. II / Fig. 7 ablation: efficiency-aware vs resource-aware inter-phase
//! pipeline on a small graph (Cora) and a large one (Reddit).
//!
//! Paper expectation: the efficiency-aware pipeline wins on small/medium
//! graphs (more reuse), while on Reddit the aggregation output (~36 MB) no
//! longer fits on chip, so the resource-aware pipeline avoids the spill and
//! the extra off-chip accesses stay bounded.

use gcod_accel::config::{AcceleratorConfig, PipelineKind};
use gcod_bench::{
    harness_gcod_config, print_table, run_algorithm, simulate_accelerator, DatasetCase,
};
use gcod_nn::models::ModelKind;
use gcod_nn::quant::Precision;

fn main() {
    println!("Tab. II ablation: efficiency-aware vs resource-aware pipeline (GCN)\n");
    let config = harness_gcod_config();
    let mut rows = Vec::new();
    for dataset in ["cora", "pubmed", "reddit"] {
        let case = DatasetCase::by_name(dataset);
        let outcome = run_algorithm(&case, &config, 0);
        let request = case.gcod_request(ModelKind::Gcn, Precision::Fp32, &outcome);
        for (label, pipeline) in [
            ("efficiency-aware", PipelineKind::EfficiencyAware),
            ("resource-aware", PipelineKind::ResourceAware),
            ("auto", PipelineKind::Auto),
        ] {
            let accel_cfg = AcceleratorConfig {
                pipeline,
                ..AcceleratorConfig::vcu128()
            };
            let report = simulate_accelerator(accel_cfg, &request);
            rows.push(vec![
                dataset.to_string(),
                label.to_string(),
                format!("{:.4}", report.latency_ms),
                format!("{:.1}", report.off_chip_bytes as f64 / 1.0e6),
                format!("{:.1}", report.peak_bandwidth_gbps),
            ]);
        }
    }
    print_table(
        &[
            "dataset",
            "pipeline",
            "latency (ms)",
            "off-chip (MB)",
            "peak bw (GB/s)",
        ],
        &rows,
    );
}
