//! CI perf-regression gate over the committed bench trajectory.
//!
//! Re-runs the SpMM, training and serving sweeps of [`gcod_bench::sweeps`]
//! in smoke mode and compares each per-benchmark median against the
//! committed repo-root `BENCH_spmm.json` / `BENCH_train.json` /
//! `BENCH_serve.json`, failing (exit code 1) with a per-row delta table when
//! any median regressed beyond the tolerance.
//!
//! Knobs:
//!
//! * `BENCH_GATE_TOL` — allowed fractional slowdown (default 2.0, i.e. fail
//!   above 3× the committed median; generous for noisy runners),
//! * `BENCH_GATE_SAMPLES` — timed samples per case (default 5),
//! * a trajectory file that does not exist is skipped with a warning, so the
//!   gate degrades gracefully on fresh checkouts that have not committed a
//!   trajectory for a new bench yet — but a *stale* committed row (present
//!   in the file, absent from the sweep) is a hard failure.
//!
//! Caveat: the gate compares **absolute** wall-clock medians, so the
//! committed trajectory carries the speed of the machine that recorded it.
//! The tolerance must absorb the hardware delta between that machine and
//! the runner (hence the generous defaults, and CI's wider override); a
//! runner dramatically slower than the recording machine needs a larger
//! `BENCH_GATE_TOL`, or freshly re-recorded trajectory files. Gating the
//! machine-independent relative columns (`speedup_over_naive`,
//! `speedup_over_w1`) alongside the absolute medians is the tracked
//! hardening follow-up (see ROADMAP).
//!
//! Run it the way CI does: `cargo run --release -p gcod-bench --bin
//! bench_gate`.

use gcod_bench::gate::{compare, parse_bench_rows, tolerance_from_env, GateOutcome};
use gcod_bench::sweeps;
use std::path::{Path, PathBuf};

/// Timed samples per sweep case.
fn samples_from_env() -> usize {
    std::env::var("BENCH_GATE_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// The repo root (this crate sits at `<workspace>/crates/gcod-bench`).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Gates one trajectory file; `None` when the file does not exist (skipped).
fn gate_file(
    path: &Path,
    name: &str,
    prefix: &str,
    key_fields: &[&str],
    value_field: &str,
    measured: &[(String, f64)],
    tolerance: f64,
) -> Option<GateOutcome> {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(_) => {
            println!(
                "{name}: no committed trajectory at {} — skipped",
                path.display()
            );
            return None;
        }
    };
    let committed = match parse_bench_rows(&json, prefix, key_fields, value_field) {
        Ok(rows) => rows,
        Err(e) => {
            // A malformed committed file is itself a failure: surface it as
            // an outcome with one missing row so the verdict is FAIL.
            println!("{name}: cannot parse committed trajectory: {e}");
            return Some(GateOutcome {
                name: name.to_string(),
                rows: Vec::new(),
                missing: vec![format!("<unparsable: {e}>")],
                tolerance,
            });
        }
    };
    Some(compare(name, &committed, measured, tolerance))
}

fn main() {
    let tolerance = tolerance_from_env();
    let samples = samples_from_env();
    let root = workspace_root();
    println!(
        "bench_gate: tolerance {tolerance} (fail above {:.2}x committed), {samples} samples/case",
        1.0 + tolerance
    );

    println!("re-measuring SpMM sweep...");
    let spmm = sweeps::smoke_spmm_medians(samples);
    println!("re-measuring training sweep...");
    let train = sweeps::smoke_train_medians(samples.min(3));
    println!("re-measuring serving sweep...");
    let serve = sweeps::smoke_serve_medians(samples);

    let outcomes: Vec<GateOutcome> = [
        gate_file(
            &root.join("BENCH_spmm.json"),
            "BENCH_spmm.json",
            "spmm",
            &["kernel", "nodes"],
            "median_ns",
            &spmm,
            tolerance,
        ),
        gate_file(
            &root.join("BENCH_train.json"),
            "BENCH_train.json",
            "train",
            &["dataset", "workers"],
            "epoch_ms",
            &train,
            tolerance,
        ),
        gate_file(
            &root.join("BENCH_serve.json"),
            "BENCH_serve.json",
            "serve",
            &["case", "batch"],
            "median_ns",
            &serve,
            tolerance,
        ),
    ]
    .into_iter()
    .flatten()
    .collect();

    let mut passed = true;
    for outcome in &outcomes {
        println!("\n{}", outcome.render_table());
        passed &= outcome.passed();
    }
    if outcomes.is_empty() {
        println!("bench_gate: no committed trajectories found — nothing gated");
    }
    if passed {
        println!("bench_gate: PASS");
    } else {
        println!("bench_gate: FAIL — perf trajectory regressed beyond tolerance");
        std::process::exit(1);
    }
}
