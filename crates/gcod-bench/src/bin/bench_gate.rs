//! CI perf-regression gate over the committed bench trajectory.
//!
//! Re-runs the SpMM, training, serving, sharded-serving and
//! quantized-inference sweeps of [`gcod_bench::sweeps`] in smoke mode and
//! compares each per-benchmark median against the committed repo-root
//! `BENCH_spmm.json` / `BENCH_train.json` / `BENCH_serve.json` /
//! `BENCH_shard.json` / `BENCH_quant.json`, failing (exit code 1) with a
//! per-row delta table when any median regressed beyond the tolerance.
//!
//! Knobs:
//!
//! * `BENCH_GATE_TOL` — allowed fractional slowdown (default 2.0, i.e. fail
//!   above 3× the committed median; generous for noisy runners),
//! * `BENCH_GATE_SAMPLES` — timed samples per case (default 5),
//! * a trajectory file that does not exist is skipped with a warning, so the
//!   gate degrades gracefully on fresh checkouts that have not committed a
//!   trajectory for a new bench yet — but a *stale* committed row (present
//!   in the file, absent from the sweep) is a hard failure.
//!
//! Two kinds of columns are gated. The **absolute** wall-clock medians
//! carry the speed of the machine that recorded them, so their tolerance
//! must absorb the hardware delta between that machine and the runner
//! (hence the generous defaults, and CI's wider override). The
//! **relative** columns (`speedup_over_naive` per SpMM kernel,
//! `speedup_over_w1` per training worker count, `bytes_moved_ratio` per
//! quantized precision, `halo_bytes` per shard split) are recomputed
//! deterministically and gated in their better direction — they are
//! machine-independent, so a drift there is a real algorithmic regression
//! no matter how slow the runner is (the deterministic ones hold exactly).
//!
//! Run it the way CI does: `cargo run --release -p gcod-bench --bin
//! bench_gate`.

use gcod_bench::gate::{compare, parse_bench_rows, tolerance_from_env, Direction, GateOutcome};
use gcod_bench::{load, sweeps};
use std::path::PathBuf;

/// Timed samples per sweep case.
fn samples_from_env() -> usize {
    std::env::var("BENCH_GATE_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// The repo root (this crate sits at `<workspace>/crates/gcod-bench`).
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// One gated column of one committed trajectory file.
struct GateSpec<'a> {
    path: PathBuf,
    name: &'a str,
    prefix: &'a str,
    key_fields: &'a [&'a str],
    value_field: &'a str,
    measured: &'a [(String, f64)],
    direction: Direction,
}

/// Gates one trajectory file; `None` when the file does not exist (skipped).
fn gate_file(spec: &GateSpec<'_>, tolerance: f64) -> Option<GateOutcome> {
    let name = spec.name;
    let json = match std::fs::read_to_string(&spec.path) {
        Ok(json) => json,
        Err(_) => {
            println!(
                "{name}: no committed trajectory at {} — skipped",
                spec.path.display()
            );
            return None;
        }
    };
    let committed = match parse_bench_rows(&json, spec.prefix, spec.key_fields, spec.value_field) {
        Ok(rows) => rows,
        Err(e) => {
            // A malformed committed file is itself a failure: surface it as
            // an outcome with one missing row so the verdict is FAIL.
            println!("{name}: cannot parse committed trajectory: {e}");
            return Some(GateOutcome {
                name: name.to_string(),
                rows: Vec::new(),
                missing: vec![format!("<unparsable: {e}>")],
                tolerance,
            });
        }
    };
    Some(compare(
        name,
        &committed,
        spec.measured,
        tolerance,
        spec.direction,
    ))
}

fn main() {
    let tolerance = tolerance_from_env();
    let samples = samples_from_env();
    let root = workspace_root();
    println!(
        "bench_gate: tolerance {tolerance} (fail above {:.2}x committed), {samples} samples/case",
        1.0 + tolerance
    );

    println!("re-measuring SpMM sweep...");
    let spmm = sweeps::smoke_spmm_medians(samples);
    println!("re-measuring training sweep...");
    let train = sweeps::smoke_train_medians(samples.min(3));
    println!("re-measuring serving sweep...");
    let mut serve = sweeps::smoke_serve_medians(samples);
    println!("re-measuring serving recover-kill case...");
    serve.extend(sweeps::smoke_serve_recover_medians(samples));
    println!("re-measuring open-loop tail-latency sweep...");
    serve.extend(load::open_loop_gate_rows(&load::sweep_open_loop(
        load::OPEN_LOOP_LOADS,
        load::OPEN_LOOP_REQUESTS,
        7,
    )));
    println!("re-measuring sharded-serving sweep...");
    let shard = sweeps::smoke_shard_medians(samples);
    println!("re-measuring quantized-inference sweep...");
    let quant = sweeps::smoke_quant_medians(samples);
    let shard_halo = sweeps::shard_halo_byte_rows();
    let quant_bytes = sweeps::quant_bytes_moved_rows();
    let spmm_rel = sweeps::relative_spmm_rows(&spmm);
    let train_rel = sweeps::relative_train_rows(&train);

    let specs = [
        GateSpec {
            path: root.join("BENCH_spmm.json"),
            name: "BENCH_spmm.json",
            prefix: "spmm",
            key_fields: &["kernel", "nodes"],
            value_field: "median_ns",
            measured: &spmm,
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            path: root.join("BENCH_train.json"),
            name: "BENCH_train.json",
            prefix: "train",
            key_fields: &["dataset", "workers"],
            value_field: "epoch_ms",
            measured: &train,
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            path: root.join("BENCH_serve.json"),
            name: "BENCH_serve.json",
            prefix: "serve",
            key_fields: &["case", "batch"],
            value_field: "median_ns",
            measured: &serve,
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            path: root.join("BENCH_shard.json"),
            name: "BENCH_shard.json",
            prefix: "shard",
            key_fields: &["dataset", "shards"],
            value_field: "median_ns",
            measured: &shard,
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            path: root.join("BENCH_shard.json"),
            name: "BENCH_shard.json (halo_bytes)",
            prefix: "shard-halo",
            key_fields: &["dataset", "shards"],
            value_field: "halo_bytes",
            measured: &shard_halo,
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            path: root.join("BENCH_quant.json"),
            name: "BENCH_quant.json",
            prefix: "quant",
            key_fields: &["precision", "nodes"],
            value_field: "median_ns",
            measured: &quant,
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            path: root.join("BENCH_quant.json"),
            name: "BENCH_quant.json (bytes_moved_ratio)",
            prefix: "quant-bytes",
            key_fields: &["precision", "nodes"],
            value_field: "bytes_moved_ratio",
            measured: &quant_bytes,
            direction: Direction::HigherIsBetter,
        },
        GateSpec {
            path: root.join("BENCH_spmm.json"),
            name: "BENCH_spmm.json (speedup_over_naive)",
            prefix: "spmm-rel",
            key_fields: &["kernel", "nodes"],
            value_field: "speedup_over_naive",
            measured: &spmm_rel,
            direction: Direction::HigherIsBetter,
        },
        GateSpec {
            path: root.join("BENCH_train.json"),
            name: "BENCH_train.json (speedup_over_w1)",
            prefix: "train-rel",
            key_fields: &["dataset", "workers"],
            value_field: "speedup_over_w1",
            measured: &train_rel,
            direction: Direction::HigherIsBetter,
        },
    ];
    let outcomes: Vec<GateOutcome> = specs
        .iter()
        .filter_map(|spec| gate_file(spec, tolerance))
        .collect();

    let mut passed = true;
    for outcome in &outcomes {
        println!("\n{}", outcome.render_table());
        passed &= outcome.passed();
    }
    if outcomes.is_empty() {
        println!("bench_gate: no committed trajectories found — nothing gated");
    }
    if passed {
        println!("bench_gate: PASS");
    } else {
        println!("bench_gate: FAIL — perf trajectory regressed beyond tolerance");
        std::process::exit(1);
    }
}
