//! Fig. 10: normalized inference speedups (vs PyG-CPU) on the large graphs
//! (NELL, Reddit, ogbn-arxiv), including the 28-layer ResGCN on ogbn-arxiv.

use gcod_bench::{
    fmt_speedup, harness_gcod_config, print_table, run_algorithm, simulate_all_platforms,
    DatasetCase,
};
use gcod_nn::models::ModelKind;

fn main() {
    let config = harness_gcod_config();
    println!("Fig. 10: normalized speedups over PyG-CPU (large graphs)\n");

    // NELL and Reddit with the four shallow models.
    for model in [
        ModelKind::Gcn,
        ModelKind::Gin,
        ModelKind::Gat,
        ModelKind::GraphSage,
    ] {
        let mut rows = Vec::new();
        let mut headers = vec!["dataset".to_string()];
        for name in ["nell", "reddit"] {
            let case = DatasetCase::by_name(name);
            let outcome = run_algorithm(&case, &config, 0);
            let results = simulate_all_platforms(&case, model, &outcome);
            if headers.len() == 1 {
                headers.extend(results.iter().map(|r| r.platform.clone()));
            }
            let mut row = vec![case.profile.name.clone()];
            row.extend(results.iter().map(|r| fmt_speedup(r.speedup_over_cpu)));
            rows.push(row);
        }
        println!("== {} ==", model.name().to_uppercase());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(&header_refs, &rows);
        println!();
    }

    // ResGCN on ogbn-arxiv (the deep-model column of Fig. 10).
    let case = DatasetCase::by_name("ogbn-arxiv");
    let outcome = run_algorithm(&case, &config, 0);
    let results = simulate_all_platforms(&case, ModelKind::ResGcn, &outcome);
    println!("== RESGCN (ogbn-arxiv, 28 layers) ==");
    let headers: Vec<String> = std::iter::once("dataset".to_string())
        .chain(results.iter().map(|r| r.platform.clone()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut row = vec![case.profile.name.clone()];
    row.extend(results.iter().map(|r| fmt_speedup(r.speedup_over_cpu)));
    print_table(&header_refs, &[row]);
}
