//! Fig. 10: normalized inference speedups (vs PyG-CPU) on the large graphs
//! (NELL, Reddit, ogbn-arxiv), including the 28-layer ResGCN on ogbn-arxiv.

use gcod_bench::{harness_gcod_config, print_table, speedup_table, DatasetCase};
use gcod_nn::models::ModelKind;

fn main() {
    let config = harness_gcod_config();
    println!("Fig. 10: normalized speedups over PyG-CPU (large graphs)\n");

    // NELL and Reddit with the four shallow models.
    let shallow_cases = [DatasetCase::by_name("nell"), DatasetCase::by_name("reddit")];
    for model in [
        ModelKind::Gcn,
        ModelKind::Gin,
        ModelKind::Gat,
        ModelKind::GraphSage,
    ] {
        let table = speedup_table(&shallow_cases, model, &config);
        println!("== {} ==", model.name().to_uppercase());
        let header_refs: Vec<&str> = table.headers.iter().map(String::as_str).collect();
        print_table(&header_refs, &table.rows);
        println!();
    }

    // ResGCN on ogbn-arxiv (the deep-model column of Fig. 10).
    let deep_case = [DatasetCase::by_name("ogbn-arxiv")];
    let table = speedup_table(&deep_case, ModelKind::ResGcn, &config);
    println!("== RESGCN (ogbn-arxiv, 28 layers) ==");
    let header_refs: Vec<&str> = table.headers.iter().map(String::as_str).collect();
    print_table(&header_refs, &table.rows);
}
