//! Fig. 12: energy breakdown of the GCoD accelerator across computation,
//! on-chip accesses and off-chip accesses, separately for the combination and
//! aggregation phases, on four models and five datasets.
//!
//! Paper expectation: unlike CPU execution (where aggregation takes 80-99% of
//! the time), GCoD's combination phase dominates the energy, and the off-chip
//! share stays modest as graphs grow.

use gcod_bench::{
    harness_gcod_config, print_table, run_algorithm, simulate_all_platforms, DatasetCase,
};
use gcod_nn::models::ModelKind;

fn main() {
    let config = harness_gcod_config();
    println!("Fig. 12: GCoD energy breakdown (% of total energy)\n");
    let mut rows = Vec::new();
    for model in [
        ModelKind::Gcn,
        ModelKind::GraphSage,
        ModelKind::Gin,
        ModelKind::Gat,
    ] {
        for case in DatasetCase::table6_datasets() {
            let outcome = run_algorithm(&case, &config, 0);
            let results = simulate_all_platforms(&case, model, &outcome);
            let gcod = results
                .iter()
                .find(|r| r.platform == "gcod")
                .expect("gcod report");
            let fractions = gcod.report.energy.fractions();
            rows.push(vec![
                model.name().to_string(),
                case.profile.name.clone(),
                format!("{:.1}", fractions[0] * 100.0),
                format!("{:.1}", fractions[1] * 100.0),
                format!("{:.1}", fractions[2] * 100.0),
                format!("{:.1}", fractions[3] * 100.0),
                format!("{:.1}", fractions[4] * 100.0),
                format!("{:.1}", fractions[5] * 100.0),
                format!(
                    "{:.2}",
                    gcod.report.energy.combination_total() / gcod.report.energy.total().max(1e-18)
                ),
            ]);
        }
    }
    print_table(
        &[
            "model",
            "dataset",
            "comb compute",
            "comb on-chip",
            "comb off-chip",
            "aggr compute",
            "aggr on-chip",
            "aggr off-chip",
            "comb share",
        ],
        &rows,
    );
}
