//! Ablation of the sparser branch's query-based weight forwarding: how much
//! off-chip traffic and latency the forwarding hit rate saves.
//!
//! Paper expectation: about 63% of the sparser branch's weight reads are
//! served by forwarding from the denser-branch chunks; disabling it pushes
//! those reads back to HBM.

use gcod_accel::config::AcceleratorConfig;
use gcod_bench::{
    harness_gcod_config, print_table, run_algorithm, simulate_accelerator, DatasetCase,
};
use gcod_nn::models::ModelKind;
use gcod_nn::quant::Precision;

fn main() {
    println!("Ablation: query-based weight forwarding hit rate (GCN)\n");
    let config = harness_gcod_config();
    let mut rows = Vec::new();
    for dataset in ["cora", "pubmed", "nell"] {
        let case = DatasetCase::by_name(dataset);
        let outcome = run_algorithm(&case, &config, 0);
        let request = case.gcod_request(ModelKind::Gcn, Precision::Fp32, &outcome);
        for rate in [0.0, 0.3, 0.63, 0.9] {
            let accel_cfg = AcceleratorConfig {
                weight_forwarding_rate: rate,
                ..AcceleratorConfig::vcu128()
            };
            let report = simulate_accelerator(accel_cfg, &request);
            rows.push(vec![
                dataset.to_string(),
                format!("{:.0}%", rate * 100.0),
                format!("{:.1}", report.off_chip_bytes as f64 / 1.0e6),
                format!("{:.4}", report.latency_ms),
            ]);
        }
    }
    print_table(
        &[
            "dataset",
            "forwarding rate",
            "off-chip (MB)",
            "latency (ms)",
        ],
        &rows,
    );
}
