//! Ablation of the sparser branch's query-based weight forwarding: how much
//! off-chip traffic and latency the forwarding hit rate saves.
//!
//! Paper expectation: about 63% of the sparser branch's weight reads are
//! served by forwarding from the denser-branch chunks; disabling it pushes
//! those reads back to HBM.

use gcod_accel::config::AcceleratorConfig;
use gcod_accel::simulator::GcodAccelerator;
use gcod_bench::{harness_gcod_config, print_table, project_split, run_algorithm, DatasetCase};
use gcod_nn::models::ModelKind;
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;

fn main() {
    println!("Ablation: query-based weight forwarding hit rate (GCN)\n");
    let config = harness_gcod_config();
    let mut rows = Vec::new();
    for dataset in ["cora", "pubmed", "nell"] {
        let case = DatasetCase::by_name(dataset);
        let outcome = run_algorithm(&case, &config, 0);
        let split = project_split(&case, &outcome);
        let workload = InferenceWorkload::from_stats(
            &case.profile.name,
            case.profile.nodes,
            split.total_nnz(),
            case.feature_density,
            &case.model_config(ModelKind::Gcn),
            Precision::Fp32,
        );
        for rate in [0.0, 0.3, 0.63, 0.9] {
            let accel_cfg = AcceleratorConfig {
                weight_forwarding_rate: rate,
                ..AcceleratorConfig::vcu128()
            };
            let report = GcodAccelerator::new(accel_cfg).simulate(&workload, &split);
            rows.push(vec![
                dataset.to_string(),
                format!("{:.0}%", rate * 100.0),
                format!("{:.1}", report.off_chip_bytes as f64 / 1.0e6),
                format!("{:.4}", report.latency_ms),
            ]);
        }
    }
    print_table(
        &[
            "dataset",
            "forwarding rate",
            "off-chip (MB)",
            "latency (ms)",
        ],
        &rows,
    );
}
