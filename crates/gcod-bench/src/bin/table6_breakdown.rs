//! Table VI: speedup breakdown of the GCoD accelerator with and without
//! sparsification (SP.) and quantization (Quant.), normalized to PyG-CPU.
//!
//! Paper expectation: the two-pronged accelerator alone gives ~2.29x over
//! AWB-GCN, sparsification another ~1.09x, and quantization another ~2.02x.

use gcod_accel::config::AcceleratorConfig;
use gcod_accel::simulator::GcodAccelerator;
use gcod_baselines::{suite, Platform};
use gcod_bench::{
    fmt_speedup, harness_gcod_config, print_table, project_split, run_algorithm, DatasetCase,
};
use gcod_core::GcodConfig;
use gcod_nn::models::ModelKind;
use gcod_nn::quant::Precision;
use gcod_nn::workload::InferenceWorkload;

fn main() {
    let config = harness_gcod_config();
    // "Without sparsification": the same layout/split but no pruning at all.
    let no_prune_config = GcodConfig {
        prune_ratio: 0.0,
        patch_threshold: 0,
        ..config.clone()
    };

    println!("Table VI: speedup breakdown over PyG-CPU (GCN)\n");
    let mut rows = Vec::new();
    for case in DatasetCase::table6_datasets() {
        let model_cfg = case.model_config(ModelKind::Gcn);
        let full_workload = InferenceWorkload::from_stats(
            &case.profile.name,
            case.profile.nodes,
            case.directed_edges(),
            case.feature_density,
            &model_cfg,
            Precision::Fp32,
        );
        let cpu_latency = suite::reference_platform()
            .simulate(&full_workload)
            .latency_ms;
        let awb_latency = suite::by_name("awb-gcn")
            .expect("awb-gcn")
            .simulate(&full_workload)
            .latency_ms;

        // GCoD accelerator without sparsification.
        let outcome_plain = run_algorithm(&case, &no_prune_config, 0);
        let split_plain = project_split(&case, &outcome_plain);
        let accel = GcodAccelerator::new(AcceleratorConfig::vcu128());
        let plain = accel.simulate(&full_workload, &split_plain);

        // With sparsification: pruned adjacency feeds both the workload and
        // the split.
        let outcome_sp = run_algorithm(&case, &config, 0);
        let split_sp = project_split(&case, &outcome_sp);
        let sp_workload = InferenceWorkload::from_stats(
            &case.profile.name,
            case.profile.nodes,
            split_sp.total_nnz(),
            case.feature_density,
            &model_cfg,
            Precision::Fp32,
        );
        let with_sp = accel.simulate(&sp_workload, &split_sp);

        // With sparsification + quantization.
        let int8_workload = InferenceWorkload::from_stats(
            &case.profile.name,
            case.profile.nodes,
            split_sp.total_nnz(),
            case.feature_density,
            &model_cfg,
            Precision::Int8,
        );
        let with_quant = GcodAccelerator::new(AcceleratorConfig::vcu128_int8())
            .simulate(&int8_workload, &split_sp);

        rows.push(vec![
            case.profile.name.clone(),
            fmt_speedup(cpu_latency / awb_latency),
            fmt_speedup(cpu_latency / plain.latency_ms),
            fmt_speedup(cpu_latency / with_sp.latency_ms),
            fmt_speedup(cpu_latency / with_quant.latency_ms),
            format!("{:.2}", awb_latency / plain.latency_ms),
            format!("{:.2}", plain.latency_ms / with_sp.latency_ms),
            format!("{:.2}", with_sp.latency_ms / with_quant.latency_ms),
        ]);
    }
    print_table(
        &[
            "dataset",
            "awb-gcn",
            "gcod accel",
            "gcod accel w/ sp",
            "gcod accel w/ sp+quant",
            "accel vs awb",
            "sp gain",
            "quant gain",
        ],
        &rows,
    );
}
