//! Table VI: speedup breakdown of the GCoD accelerator with and without
//! sparsification (SP.) and quantization (Quant.), normalized to PyG-CPU.
//!
//! Paper expectation: the two-pronged accelerator alone gives ~2.29x over
//! AWB-GCN, sparsification another ~1.09x, and quantization another ~2.02x.

use gcod_accel::config::AcceleratorConfig;
use gcod_bench::{
    fmt_speedup, harness_gcod_config, print_table, project_split, run_algorithm,
    simulate_accelerator, simulate_baseline, DatasetCase,
};
use gcod_core::GcodConfig;
use gcod_nn::models::ModelKind;
use gcod_nn::quant::Precision;
use gcod_platform::SimRequest;

fn main() {
    let config = harness_gcod_config();
    // "Without sparsification": the same layout/split but no pruning at all.
    let no_prune_config = GcodConfig {
        prune_ratio: 0.0,
        patch_threshold: 0,
        ..config.clone()
    };

    println!("Table VI: speedup breakdown over PyG-CPU (GCN)\n");
    let mut rows = Vec::new();
    for case in DatasetCase::table6_datasets() {
        let baseline_request = case.baseline_request(ModelKind::Gcn);
        let cpu_latency = simulate_baseline("pyg-cpu", &baseline_request).latency_ms;
        let awb_latency = simulate_baseline("awb-gcn", &baseline_request).latency_ms;

        // GCoD accelerator without sparsification: the full workload, split
        // but unpruned.
        let outcome_plain = run_algorithm(&case, &no_prune_config, 0);
        let plain_request = SimRequest::with_split(
            case.full_workload(ModelKind::Gcn, Precision::Fp32),
            project_split(&case, &outcome_plain),
        );
        let plain = simulate_accelerator(AcceleratorConfig::vcu128(), &plain_request);

        // With sparsification: pruned adjacency feeds both the workload and
        // the split.
        let outcome_sp = run_algorithm(&case, &config, 0);
        let with_sp = simulate_accelerator(
            AcceleratorConfig::vcu128(),
            &case.gcod_request(ModelKind::Gcn, Precision::Fp32, &outcome_sp),
        );

        // With sparsification + quantization.
        let with_quant = simulate_accelerator(
            AcceleratorConfig::vcu128_int8(),
            &case.gcod_request(ModelKind::Gcn, Precision::Int8, &outcome_sp),
        );

        rows.push(vec![
            case.profile.name.clone(),
            fmt_speedup(cpu_latency / awb_latency),
            fmt_speedup(cpu_latency / plain.latency_ms),
            fmt_speedup(cpu_latency / with_sp.latency_ms),
            fmt_speedup(cpu_latency / with_quant.latency_ms),
            format!("{:.2}", awb_latency / plain.latency_ms),
            format!("{:.2}", plain.latency_ms / with_sp.latency_ms),
            format!("{:.2}", with_sp.latency_ms / with_quant.latency_ms),
        ]);
    }
    print_table(
        &[
            "dataset",
            "awb-gcn",
            "gcod accel",
            "gcod accel w/ sp",
            "gcod accel w/ sp+quant",
            "accel vs awb",
            "sp gain",
            "quant gain",
        ],
        &rows,
    );
}
