//! Fig. 11: (a) off-chip memory bandwidth requirement of GCoD vs HyGCN and
//! (b) normalized off-chip memory accesses of GCoD vs HyGCN vs AWB-GCN.
//!
//! Paper expectation: GCoD needs on average ~48% of HyGCN's bandwidth (26%
//! for the 8-bit variant) and far fewer off-chip accesses than both
//! baselines, with Reddit showing relatively more accesses because the
//! resource-aware pipeline trades reuse for buffer capacity.

use gcod_bench::{
    harness_gcod_config, print_table, run_algorithm, simulate_all_platforms, DatasetCase,
};
use gcod_nn::models::ModelKind;

fn main() {
    let config = harness_gcod_config();
    let mut bw_rows = Vec::new();
    let mut acc_rows = Vec::new();
    let mut bw_ratio_sum = 0.0;
    let mut bw8_ratio_sum = 0.0;
    let mut count = 0usize;

    for case in DatasetCase::table6_datasets() {
        let outcome = run_algorithm(&case, &config, 0);
        let results = simulate_all_platforms(&case, ModelKind::Gcn, &outcome);
        let get = |name: &str| {
            results
                .iter()
                .find(|r| r.platform == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let hygcn = get("hygcn");
        let awb = get("awb-gcn");
        let gcod = get("gcod");
        let gcod8 = get("gcod-8bit");

        bw_rows.push(vec![
            case.profile.name.clone(),
            format!("{:.1}", hygcn.report.peak_bandwidth_gbps),
            format!("{:.1}", gcod.report.peak_bandwidth_gbps),
            format!("{:.1}", gcod8.report.peak_bandwidth_gbps),
            format!(
                "{:.0}%",
                100.0 * gcod.report.peak_bandwidth_gbps
                    / hygcn.report.peak_bandwidth_gbps.max(1e-9)
            ),
        ]);
        bw_ratio_sum +=
            gcod.report.peak_bandwidth_gbps / hygcn.report.peak_bandwidth_gbps.max(1e-9);
        bw8_ratio_sum +=
            gcod8.report.peak_bandwidth_gbps / hygcn.report.peak_bandwidth_gbps.max(1e-9);
        count += 1;

        let norm = gcod.report.off_chip_accesses.max(1) as f64;
        acc_rows.push(vec![
            case.profile.name.clone(),
            format!("{:.2}", hygcn.report.off_chip_accesses as f64 / norm),
            format!("{:.2}", awb.report.off_chip_accesses as f64 / norm),
            "1.00".to_string(),
            format!("{:.2}", gcod8.report.off_chip_accesses as f64 / norm),
        ]);
    }

    println!("Fig. 11 (a): peak off-chip bandwidth requirement (GB/s), GCN\n");
    print_table(
        &["dataset", "hygcn", "gcod", "gcod-8bit", "gcod/hygcn"],
        &bw_rows,
    );
    println!(
        "\naverage bandwidth ratio: gcod/hygcn = {:.0}%, gcod-8bit/hygcn = {:.0}% (paper: 48% / 26%)\n",
        100.0 * bw_ratio_sum / count as f64,
        100.0 * bw8_ratio_sum / count as f64
    );

    println!("Fig. 11 (b): off-chip memory accesses normalized to GCoD, GCN\n");
    print_table(
        &["dataset", "hygcn", "awb-gcn", "gcod", "gcod-8bit"],
        &acc_rows,
    );
}
