//! Table III: graph dataset statistics.
//!
//! Prints the node/edge/feature/class counts and estimated storage of the six
//! evaluation datasets, plus the adjacency sparsity the paper highlights
//! (e.g. 99.989% for Pubmed).

use gcod_bench::print_table;
use gcod_graph::{DatasetProfile, KNOWN_DATASETS};

fn main() {
    let rows: Vec<Vec<String>> = KNOWN_DATASETS
        .iter()
        .map(|name| {
            let profile = DatasetProfile::by_name(name).expect("known dataset");
            let stats = profile.stats();
            vec![
                profile.name.clone(),
                stats.nodes.to_string(),
                stats.edges.to_string(),
                stats.features.to_string(),
                stats.classes.to_string(),
                format!("{:.0} MB", stats.storage_mb),
                format!("{:.4}%", profile.sparsity() * 100.0),
            ]
        })
        .collect();
    println!("Table III: adopted graph dataset statistics\n");
    print_table(
        &[
            "Dataset",
            "Nodes",
            "Edges",
            "Features",
            "Classes",
            "Storage",
            "Adj. sparsity",
        ],
        &rows,
    );
}
