//! Fig. 4: adjacency matrices before and after GCoD training, with the
//! per-dataset latency reduction and accuracy.
//!
//! Paper expectation: the tuned matrices show dense blocks along the diagonal
//! and visible vacancies off it; latency drops by 7.8x (Cora), 9.2x
//! (CiteSeer) and 3.2x (Pubmed) relative to HyGCN while accuracy is
//! maintained.

use gcod::Experiment;
use gcod_bench::{harness_gcod_config, run_algorithm, simulate_all_platforms, DatasetCase};
use gcod_core::{render_adjacency, GcodConfig};
use gcod_nn::models::ModelKind;

fn main() {
    let perf_config = harness_gcod_config();
    let train_config = GcodConfig {
        num_classes: 2,
        num_subgraphs: 6,
        num_groups: 2,
        prune_ratio: 0.10,
        patch_size: 16,
        patch_threshold: 6,
        pretrain_epochs: 25,
        retrain_epochs: 15,
        ..GcodConfig::default()
    };

    for name in ["cora", "citeseer", "pubmed"] {
        let case = DatasetCase::by_name(name);
        println!("=== {} ===", name);

        // Accuracy + adjacency structure on a trainable replica: the staged
        // experiment exposes both the replica graph and the pipeline result.
        let experiment = Experiment::on(case.profile.clone())
            .scale(0.12 * case.replica_scale())
            .model(ModelKind::Gcn)
            .gcod(train_config.clone())
            .seed(11);
        let graph = experiment.generate().expect("replica");
        let result = experiment.train().expect("gcod pipeline");
        // The pipeline's layout is built on the same graph/config/seed, so it
        // also provides the reordered-only "before" view.
        let before_view = result.layout.apply(&graph);

        println!(
            "before GCoD (reordered only), accuracy {:.1}%:",
            result.baseline_accuracy * 100.0
        );
        println!(
            "{}",
            render_adjacency(before_view.adjacency(), Some(&result.layout), 56)
        );
        println!("after GCoD, accuracy {:.1}%:", result.gcod_accuracy * 100.0);
        println!(
            "{}",
            render_adjacency(result.graph.adjacency(), Some(&result.layout), 56)
        );
        println!(
            "edges: {} -> {} ({:.1}% pruned), sparser-branch share {:.1}%",
            before_view.num_edges(),
            result.graph.num_edges(),
            result.total_prune_ratio() * 100.0,
            result.split.sparser_fraction() * 100.0
        );

        // Latency reduction vs HyGCN at full dataset scale.
        let outcome = run_algorithm(&case, &perf_config, 0);
        let results = simulate_all_platforms(&case, ModelKind::Gcn, &outcome);
        let latency = |p: &str| {
            results
                .iter()
                .find(|r| r.platform == p)
                .expect("platform present")
                .report
                .latency_ms
        };
        println!(
            "latency vs HyGCN: {:.1}x lower (paper: Cora 7.8x, CiteSeer 9.2x, Pubmed 3.2x)\n",
            latency("hygcn") / latency("gcod")
        );
    }
}
