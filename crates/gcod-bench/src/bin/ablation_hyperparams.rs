//! Sec. VI-C ablation: sweep the number of degree classes C (= chunks) and
//! subgraphs S, measuring the speedup over AWB-GCN and the off-chip bandwidth
//! reduction.
//!
//! Paper expectation: across C in {1,2,3,4} and S in {8,12,16,20}, GCoD stays
//! 1.8x-2.8x faster than AWB-GCN and needs 26%-53% less bandwidth.

use gcod_accel::config::AcceleratorConfig;
use gcod_bench::{
    harness_gcod_config, print_table, run_algorithm, simulate_accelerator, simulate_baseline,
    DatasetCase,
};
use gcod_core::GcodConfig;
use gcod_nn::models::ModelKind;
use gcod_nn::quant::Precision;

fn main() {
    println!("Sec. VI-C ablation: classes C x subgraphs S sweep (GCN)\n");
    for dataset in ["cora", "pubmed"] {
        let case = DatasetCase::by_name(dataset);
        let awb = simulate_baseline("awb-gcn", &case.baseline_request(ModelKind::Gcn));

        let mut rows = Vec::new();
        for classes in [1usize, 2, 3, 4] {
            for subgraphs in [8usize, 12, 16, 20] {
                let config = GcodConfig {
                    num_classes: classes,
                    num_subgraphs: subgraphs,
                    num_groups: 2,
                    ..harness_gcod_config()
                };
                let outcome = run_algorithm(&case, &config, 0);
                let request = case.gcod_request(ModelKind::Gcn, Precision::Fp32, &outcome);
                let report = simulate_accelerator(AcceleratorConfig::vcu128(), &request);
                rows.push(vec![
                    format!("C={classes}, S={subgraphs}"),
                    format!("{:.2}", awb.latency_ms / report.latency_ms),
                    format!(
                        "{:.0}%",
                        100.0
                            * (1.0
                                - report.off_chip_bytes as f64 / awb.off_chip_bytes.max(1) as f64)
                    ),
                    format!("{:.3}", report.utilization),
                ]);
            }
        }
        println!("== {dataset} ==");
        print_table(
            &[
                "config",
                "speedup vs awb-gcn",
                "off-chip traffic reduction",
                "utilization",
            ],
            &rows,
        );
        println!();
    }
}
