//! CI smoke driver and row generator for the open-loop serving load
//! generator ([`gcod_bench::load`]).
//!
//! Default (smoke) mode runs a tiny Poisson sweep and asserts the
//! serving-layer invariants the reactor guarantees:
//!
//! * **zero lost tickets** — every accepted submission resolves (the
//!   drain-on-shutdown contract, observed end-to-end under load);
//! * **count conservation** — offered = completed + rejected + lost;
//! * **monotone quantiles** — p50 ≤ p99 ≤ p999 per offered load.
//!
//! `--rows` mode runs the full committed sweep ([`load::OPEN_LOOP_LOADS`] ×
//! [`load::OPEN_LOOP_REQUESTS`] requests) and prints the
//! `BENCH_serve.json`-shaped open-loop rows, ready to append to the
//! committed file (the `bench_gate` binary then re-measures and gates
//! them like every other serve row).
//!
//! Exits non-zero on any violated invariant.

use gcod_bench::load::{self, OpenLoopReport};
use gcod_runtime::Pool;

fn check_invariants(report: &OpenLoopReport) -> Result<(), String> {
    let label = format!("load {:.0} rps", report.offered_rps);
    if report.lost != 0 {
        return Err(format!(
            "{label}: {} lost tickets — accepted submissions must always resolve",
            report.lost
        ));
    }
    let accounted = report.histogram.count() + report.rejected + report.lost;
    if report.offered != accounted {
        return Err(format!(
            "{label}: offered {} != completed {} + rejected {} + lost {}",
            report.offered,
            report.histogram.count(),
            report.rejected,
            report.lost
        ));
    }
    let p50 = report.quantile_ns(0.50);
    let p99 = report.quantile_ns(0.99);
    let p999 = report.quantile_ns(0.999);
    if !(p50 <= p99 && p99 <= p999) {
        return Err(format!(
            "{label}: quantiles not monotone (p50={p50} p99={p99} p999={p999})"
        ));
    }
    if report.histogram.count() > 0 && p50 == 0 {
        return Err(format!("{label}: completed requests but a zero p50"));
    }
    Ok(())
}

fn print_report(report: &OpenLoopReport) {
    println!(
        "  {:>6.0} rps offered | {:>4} completed {:>3} rejected {:>2} lost | \
         achieved {:>7.1} rps | p50 {:>9} ns  p99 {:>9} ns  p999 {:>9} ns",
        report.offered_rps,
        report.histogram.count(),
        report.rejected,
        report.lost,
        report.achieved_rps,
        report.quantile_ns(0.50),
        report.quantile_ns(0.99),
        report.quantile_ns(0.999),
    );
}

fn main() {
    let rows_mode = std::env::args().any(|a| a == "--rows");
    let (loads, requests): (&[f64], usize) = if rows_mode {
        (load::OPEN_LOOP_LOADS, load::OPEN_LOOP_REQUESTS)
    } else {
        // Smoke: small enough for CI, large enough that the tail buckets
        // are populated and a lost wakeup would be caught.
        (&[200.0, 1500.0], 60)
    };

    println!(
        "open-loop load harness: {} loads x {requests} requests (seed 7)",
        loads.len()
    );
    let reports = load::sweep_open_loop(loads, requests, 7);
    let mut failures = Vec::new();
    for report in &reports {
        print_report(report);
        if let Err(message) = check_invariants(report) {
            failures.push(message);
        }
    }

    if rows_mode {
        println!("\nBENCH_serve.json open-loop rows:");
        for row in load::open_loop_summary_rows(&reports, Pool::global().workers()) {
            println!("{row},");
        }
    }

    if failures.is_empty() {
        println!("load harness: all invariants hold");
    } else {
        for failure in &failures {
            eprintln!("load harness FAILURE: {failure}");
        }
        std::process::exit(1);
    }
}
