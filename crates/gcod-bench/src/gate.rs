//! The CI perf-regression gate: compares freshly measured smoke-mode bench
//! medians against the committed repo-root `BENCH_*.json` trajectory.
//!
//! The committed bench summaries (`BENCH_spmm.json`, `BENCH_train.json`,
//! `BENCH_serve.json`, `BENCH_shard.json`) record the cross-PR perf
//! trajectory, but a file
//! nobody reads protects nothing. The `bench_gate` binary re-runs the sweeps
//! of [`crate::sweeps`] in smoke mode and fails CI when any per-benchmark
//! median regressed beyond a tolerance — making CI the guardian of the
//! trajectory.
//!
//! The tolerance is deliberately generous and configurable: `BENCH_GATE_TOL`
//! is the allowed *fractional slowdown* (default [`DEFAULT_TOLERANCE`]), so
//! `tol = 2.0` fails a row only when the fresh median exceeds `3×` the
//! committed one. Noisy shared runners should raise it; regressions an order
//! of magnitude deep still get caught.

use std::fmt::Write as _;

/// Default allowed fractional slowdown (fail above `committed × (1 + tol)`).
pub const DEFAULT_TOLERANCE: f64 = 2.0;

/// Resolves a `BENCH_GATE_TOL`-style setting: unset, empty or unparsable
/// values select [`DEFAULT_TOLERANCE`]; explicit non-negative numbers are
/// honoured as-is.
pub fn tolerance_from(value: Option<&str>) -> f64 {
    value
        .map(str::trim)
        .filter(|v| !v.is_empty())
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&t| t.is_finite() && t >= 0.0)
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// Reads the gate tolerance from the `BENCH_GATE_TOL` environment variable.
pub fn tolerance_from_env() -> f64 {
    tolerance_from(std::env::var("BENCH_GATE_TOL").ok().as_deref())
}

/// Which way a gated metric improves. Wall-clock medians regress upward;
/// relative speedup columns (`speedup_over_naive`, `speedup_over_w1`)
/// regress downward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Smaller measured values are better (latencies, medians).
    #[default]
    LowerIsBetter,
    /// Larger measured values are better (speedup ratios).
    HigherIsBetter,
}

/// One compared benchmark row.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Row key (e.g. `spmm/naive-csr/30000`).
    pub key: String,
    /// The committed trajectory median.
    pub committed: f64,
    /// The freshly measured median.
    pub measured: f64,
    /// Which way this row's metric improves.
    pub direction: Direction,
}

impl GateRow {
    /// The regression factor, oriented so `> 1` always means "worse than
    /// committed": measured/committed for lower-is-better metrics,
    /// committed/measured for higher-is-better ones. A zero denominator
    /// yields 1 when both sides are zero and ∞ otherwise.
    pub fn ratio(&self) -> f64 {
        let (numerator, denominator) = match self.direction {
            Direction::LowerIsBetter => (self.measured, self.committed),
            Direction::HigherIsBetter => (self.committed, self.measured),
        };
        if denominator > 0.0 {
            numerator / denominator
        } else if numerator == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    }
}

/// Outcome of gating one bench file.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Human-readable name of the gated trajectory (e.g. `BENCH_spmm.json`).
    pub name: String,
    /// Every row present in both the committed file and the fresh sweep.
    pub rows: Vec<GateRow>,
    /// Committed keys the fresh sweep did not produce — a stale trajectory
    /// file (counts as failure: re-run the bench and commit the new file).
    pub missing: Vec<String>,
    /// The allowed fractional slowdown.
    pub tolerance: f64,
}

impl GateOutcome {
    /// Rows whose measured median exceeds `committed × (1 + tolerance)`.
    pub fn regressions(&self) -> Vec<&GateRow> {
        self.rows
            .iter()
            .filter(|row| row.ratio() > 1.0 + self.tolerance)
            .collect()
    }

    /// Whether the gate passes: no regressions and no stale committed rows.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty() && self.missing.is_empty()
    }

    /// Renders the per-row delta table (status `ok` / `REGRESSED`), the
    /// missing keys, and the verdict line.
    pub fn render_table(&self) -> String {
        let limit = 1.0 + self.tolerance;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} (tolerance: fail above a {limit:.2}x regression factor)",
            self.name
        );
        let key_width = self
            .rows
            .iter()
            .map(|r| r.key.len())
            .chain(std::iter::once("benchmark".len()))
            .max()
            .unwrap_or(9);
        let _ = writeln!(
            out,
            "  {:key_width$}  {:>14}  {:>14}  {:>7}  status",
            "benchmark", "committed", "measured", "ratio"
        );
        for row in &self.rows {
            let status = if row.ratio() > limit {
                "REGRESSED"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  {:key_width$}  {:>14.1}  {:>14.1}  {:>6.2}x  {status}",
                row.key,
                row.committed,
                row.measured,
                row.ratio()
            );
        }
        for key in &self.missing {
            let _ = writeln!(
                out,
                "  {key}: committed but not measured — stale trajectory file?"
            );
        }
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        let _ = writeln!(
            out,
            "  => {verdict} ({} rows, {} regressed, {} missing)",
            self.rows.len(),
            self.regressions().len(),
            self.missing.len()
        );
        out
    }
}

/// Compares a committed trajectory against freshly measured medians. Rows
/// are matched by key; fresh rows without a committed counterpart are
/// ignored (new benchmarks are additive until their trajectory is
/// committed), committed rows without a fresh counterpart are reported as
/// [`GateOutcome::missing`].
pub fn compare(
    name: &str,
    committed: &[(String, f64)],
    measured: &[(String, f64)],
    tolerance: f64,
    direction: Direction,
) -> GateOutcome {
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (key, committed_value) in committed {
        match measured.iter().find(|(k, _)| k == key) {
            Some((_, measured_value)) => rows.push(GateRow {
                key: key.clone(),
                committed: *committed_value,
                measured: *measured_value,
                direction,
            }),
            None => missing.push(key.clone()),
        }
    }
    GateOutcome {
        name: name.to_string(),
        rows,
        missing,
        tolerance,
    }
}

/// Parses a bench summary JSON (an array of flat objects with string and
/// number fields — the exact shape [`crate::write_bench_summary`] emits)
/// into `(key, value)` rows: the key is `prefix/` plus the named key fields
/// joined with `/`, the value is the named number field.
///
/// This is a purpose-built reader for the workspace's own bench files, not
/// a general JSON parser (the vendored serde shim has no deserializer).
///
/// # Errors
///
/// Returns a description of the first malformed object or missing field.
pub fn parse_bench_rows(
    json: &str,
    prefix: &str,
    key_fields: &[&str],
    value_field: &str,
) -> Result<Vec<(String, f64)>, String> {
    let mut rows = Vec::new();
    for object in split_objects(json)? {
        let fields = parse_flat_object(&object)?;
        let mut key = String::from(prefix);
        for field in key_fields {
            let value = fields
                .iter()
                .find(|(name, _)| name == field)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("row missing key field `{field}`: {object}"))?;
            key.push('/');
            key.push_str(value.trim_matches('"'));
        }
        let value = fields
            .iter()
            .find(|(name, _)| name == value_field)
            .ok_or_else(|| format!("row missing value field `{value_field}`: {object}"))?
            .1
            .parse::<f64>()
            .map_err(|e| format!("non-numeric `{value_field}`: {e}"))?;
        rows.push((key, value));
    }
    Ok(rows)
}

/// Splits a `[ {..}, {..} ]` array into its `{..}` object substrings.
fn split_objects(json: &str) -> Result<Vec<String>, String> {
    let trimmed = json.trim();
    if !trimmed.starts_with('[') || !trimmed.ends_with(']') {
        return Err("bench summary must be a JSON array".to_string());
    }
    let mut objects = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in trimmed.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| "unbalanced braces in bench summary".to_string())?;
                if depth == 0 {
                    let s = start.take().ok_or("unbalanced braces")?;
                    objects.push(trimmed[s..=i].to_string());
                }
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err("unbalanced braces in bench summary".to_string());
    }
    Ok(objects)
}

/// Parses `{"a": 1, "b": "x"}` into `[("a", "1"), ("b", "\"x\"")]`.
fn parse_flat_object(object: &str) -> Result<Vec<(String, String)>, String> {
    let inner = object
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not an object: {object}"))?;
    let mut fields = Vec::new();
    for pair in split_top_level_commas(inner) {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed field `{pair}`"))?;
        fields.push((
            name.trim().trim_matches('"').to_string(),
            value.trim().to_string(),
        ));
    }
    Ok(fields)
}

/// Splits on commas outside quoted strings.
fn split_top_level_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    parts.push(current);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"kernel": "naive-csr", "nodes": 500, "median_ns": 22317, "speedup_over_naive": 1.000},
  {"kernel": "tiled-csr", "nodes": 500, "median_ns": 22016, "speedup_over_naive": 1.014}
]
"#;

    fn rows(values: &[(&str, f64)]) -> Vec<(String, f64)> {
        values.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn parses_committed_bench_rows() {
        let parsed = parse_bench_rows(SAMPLE, "spmm", &["kernel", "nodes"], "median_ns").unwrap();
        assert_eq!(
            parsed,
            rows(&[
                ("spmm/naive-csr/500", 22317.0),
                ("spmm/tiled-csr/500", 22016.0)
            ])
        );
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_bench_rows("not json", "x", &[], "v").is_err());
        assert!(parse_bench_rows("[{\"a\" 1}]", "x", &["a"], "a").is_err());
        assert!(parse_bench_rows(SAMPLE, "spmm", &["missing"], "median_ns").is_err());
        assert!(parse_bench_rows(SAMPLE, "spmm", &["kernel"], "missing").is_err());
        assert!(parse_bench_rows("[{", "x", &[], "v").is_err());
    }

    #[test]
    fn gate_passes_at_parity_and_on_improvements() {
        let committed = rows(&[("a", 100.0), ("b", 50.0)]);
        let measured = rows(&[("a", 100.0), ("b", 10.0), ("new-row", 5.0)]);
        let outcome = compare("test", &committed, &measured, 0.5, Direction::LowerIsBetter);
        assert!(outcome.passed());
        assert!(outcome.regressions().is_empty());
        assert!(outcome.missing.is_empty());
        assert_eq!(outcome.rows.len(), 2, "extra fresh rows are additive");
    }

    #[test]
    fn gate_fails_on_an_injected_regression() {
        // Tolerance 0.5 allows up to 1.5x; inject a 2x slowdown on one row.
        let committed = rows(&[("spmm/naive-csr/500", 100.0), ("spmm/tiled-csr/500", 80.0)]);
        let measured = rows(&[("spmm/naive-csr/500", 200.0), ("spmm/tiled-csr/500", 80.0)]);
        let outcome = compare(
            "BENCH_spmm.json",
            &committed,
            &measured,
            0.5,
            Direction::LowerIsBetter,
        );
        assert!(!outcome.passed());
        let regressed = outcome.regressions();
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].key, "spmm/naive-csr/500");
        assert_eq!(regressed[0].ratio(), 2.0);
        // A slowdown just inside tolerance passes.
        let borderline = rows(&[("spmm/naive-csr/500", 149.0), ("spmm/tiled-csr/500", 80.0)]);
        assert!(compare("x", &committed, &borderline, 0.5, Direction::LowerIsBetter).passed());
    }

    #[test]
    fn gate_fails_on_an_injected_speedup_collapse() {
        // Relative columns regress *downward*: a committed 2x speedup that
        // measures at 0.9x is a 2.22x regression factor — beyond a 0.5
        // tolerance (1.5x limit) — while an improved speedup passes.
        let committed = rows(&[
            ("spmm-rel/tiled-csr/2000", 2.0),
            ("spmm-rel/degree-binned/2000", 1.5),
        ]);
        let collapsed = rows(&[
            ("spmm-rel/tiled-csr/2000", 0.9),
            ("spmm-rel/degree-binned/2000", 1.5),
        ]);
        let outcome = compare(
            "BENCH_spmm.json (relative)",
            &committed,
            &collapsed,
            0.5,
            Direction::HigherIsBetter,
        );
        assert!(!outcome.passed());
        let regressed = outcome.regressions();
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].key, "spmm-rel/tiled-csr/2000");
        assert!((regressed[0].ratio() - 2.0 / 0.9).abs() < 1e-12);
        // A *higher* measured speedup is an improvement, never a regression.
        let improved = rows(&[
            ("spmm-rel/tiled-csr/2000", 4.0),
            ("spmm-rel/degree-binned/2000", 3.0),
        ]);
        assert!(compare("x", &committed, &improved, 0.5, Direction::HigherIsBetter).passed());
        // A measured speedup of zero (kernel now slower than measurable)
        // is an unbounded regression, not a division crash.
        let dead = rows(&[
            ("spmm-rel/tiled-csr/2000", 0.0),
            ("spmm-rel/degree-binned/2000", 1.5),
        ]);
        let outcome = compare("x", &committed, &dead, 0.5, Direction::HigherIsBetter);
        assert!(outcome.regressions()[0].ratio().is_infinite());
    }

    #[test]
    fn stale_committed_rows_fail_the_gate() {
        let committed = rows(&[("a", 100.0), ("gone", 10.0)]);
        let measured = rows(&[("a", 100.0)]);
        let outcome = compare("test", &committed, &measured, 1.0, Direction::LowerIsBetter);
        assert!(!outcome.passed());
        assert_eq!(outcome.missing, vec!["gone".to_string()]);
    }

    #[test]
    fn delta_table_names_the_regressed_rows() {
        let committed = rows(&[("fast", 100.0), ("slow", 100.0)]);
        let measured = rows(&[("fast", 90.0), ("slow", 500.0)]);
        let outcome = compare(
            "BENCH_train.json",
            &committed,
            &measured,
            1.0,
            Direction::LowerIsBetter,
        );
        let table = outcome.render_table();
        assert!(table.contains("BENCH_train.json"));
        assert!(table.contains("REGRESSED"));
        assert!(table.contains("slow"));
        assert!(table.contains("5.00x"));
        assert!(table.contains("FAIL"));
        let ok = compare("t", &committed, &committed, 1.0, Direction::LowerIsBetter).render_table();
        assert!(ok.contains("PASS"));
    }

    #[test]
    fn tolerance_parsing_falls_back_to_the_generous_default() {
        assert_eq!(tolerance_from(None), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("garbage")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("-1")), DEFAULT_TOLERANCE);
        assert_eq!(tolerance_from(Some("4.0")), 4.0);
        assert_eq!(tolerance_from(Some(" 0.25 ")), 0.25);
    }

    #[test]
    fn zero_committed_values_do_not_divide_by_zero() {
        let row = GateRow {
            key: "z".into(),
            committed: 0.0,
            measured: 0.0,
            direction: Direction::LowerIsBetter,
        };
        assert_eq!(row.ratio(), 1.0);
        let row = GateRow {
            key: "z".into(),
            committed: 0.0,
            measured: 5.0,
            direction: Direction::LowerIsBetter,
        };
        assert!(row.ratio().is_infinite());
    }
}
