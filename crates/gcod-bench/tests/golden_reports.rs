//! Golden-report regression tests: the `PerfReport`s behind the
//! `fig9_speedups` and `table6_breakdown` binaries, reproduced at tiny
//! replica scale and compared byte-for-byte against checked-in fixtures —
//! once per SpMM kernel.
//!
//! These pin two properties at once:
//!
//! * the analytical platform models are **deterministic** (a change to the
//!   simulated-perf numbers shows up as a fixture diff, not silently),
//! * kernel selection changes **wall-clock only** — the structural outcome
//!   and every simulated report must be identical for all four kernels.
//!
//! Regenerate the fixtures after an intentional model change with:
//! `GOLDEN_BLESS=1 cargo test -p gcod-bench --test golden_reports`

use gcod::prelude::*;
use gcod_bench::{
    harness_gcod_config, project_split, simulate_accelerator, simulate_all_platforms,
    simulate_baseline, summarize_structural_run, AlgorithmOutcome, DatasetCase,
};
use gcod_nn::kernels::KernelKind;
use std::path::PathBuf;

/// Replica size of the golden runs — small enough that the structural pass
/// costs milliseconds, large enough that the split is non-trivial.
const GOLDEN_REPLICA_NODES: usize = 300;

/// Runs the structural GCoD pass for `case` at tiny scale under `kernel`.
fn tiny_outcome(case: &DatasetCase, kernel: KernelKind) -> AlgorithmOutcome {
    let config = harness_gcod_config();
    let run = Experiment::on(case.profile.clone())
        .scale_to_nodes(GOLDEN_REPLICA_NODES)
        .gcod(config.clone())
        .kernel(kernel)
        .seed(0)
        .tune()
        .expect("structural pass succeeds on paper profiles");
    summarize_structural_run(&run, &config)
}

/// Canonical, byte-stable rendering of one report. `{:?}` on f64 prints the
/// shortest round-trip representation, so any numeric drift — however small
/// — changes the text.
fn render_report(report: &PerfReport) -> String {
    format!(
        "platform={} dataset={} model={} latency_ms={:?} cycles={} off_chip_bytes={} \
         off_chip_accesses={} peak_bandwidth_gbps={:?} utilization={:?} energy_j={:?}\n",
        report.platform,
        report.dataset,
        report.model,
        report.latency_ms,
        report.cycles,
        report.off_chip_bytes,
        report.off_chip_accesses,
        report.peak_bandwidth_gbps,
        report.utilization,
        report.energy_joules(),
    )
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `rendered` against the checked-in fixture; with `GOLDEN_BLESS=1`
/// (re)writes the fixture instead.
fn assert_matches_fixture(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir has a parent"))
            .expect("create fixture dir");
        std::fs::write(&path, rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with GOLDEN_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "golden report drifted from {} — if the model change is intentional, \
         regenerate with GOLDEN_BLESS=1",
        path.display()
    );
}

/// Fig. 9 shape: every platform of the suite simulated on Cora/GCN, from
/// the tiny-scale structural outcome. Byte-stable across all four kernels.
#[test]
fn fig9_style_reports_are_golden_and_kernel_independent() {
    let case = DatasetCase::by_name("cora");
    let mut renderings = Vec::new();
    for kernel in KernelKind::all() {
        let outcome = tiny_outcome(&case, kernel);
        let results = simulate_all_platforms(&case, ModelKind::Gcn, &outcome);
        let rendered: String = results.iter().map(|r| render_report(&r.report)).collect();
        renderings.push((kernel, rendered));
    }
    let (_, reference) = &renderings[0];
    for (kernel, rendered) in &renderings[1..] {
        assert_eq!(
            rendered,
            reference,
            "kernel {} changed the simulated fig9 reports — kernels must affect wall-clock only",
            kernel.name()
        );
    }
    assert_matches_fixture("fig9_cora_gcn.txt", reference);
}

/// Table VI shape: the speedup-breakdown reports (baselines, accelerator
/// plain / with sparsification / with quantization) for Cora. Byte-stable
/// across all four kernels.
#[test]
fn table6_style_reports_are_golden_and_kernel_independent() {
    let case = DatasetCase::by_name("cora");
    let no_prune_config = GcodConfig {
        prune_ratio: 0.0,
        patch_threshold: 0,
        ..harness_gcod_config()
    };
    let mut renderings = Vec::new();
    for kernel in KernelKind::all() {
        let baseline_request = case.baseline_request(ModelKind::Gcn);
        let cpu = simulate_baseline("pyg-cpu", &baseline_request);
        let awb = simulate_baseline("awb-gcn", &baseline_request);

        let no_prune = GcodConfig {
            kernel,
            ..no_prune_config.clone()
        };
        let run_plain = Experiment::on(case.profile.clone())
            .scale_to_nodes(GOLDEN_REPLICA_NODES)
            .gcod(no_prune.clone())
            .seed(0)
            .tune()
            .expect("structural pass succeeds");
        let outcome_plain = summarize_structural_run(&run_plain, &no_prune);
        let plain_request = SimRequest::with_split(
            case.full_workload(ModelKind::Gcn, Precision::Fp32),
            project_split(&case, &outcome_plain),
        );
        let plain = simulate_accelerator(AcceleratorConfig::vcu128(), &plain_request);

        let outcome_sp = tiny_outcome(&case, kernel);
        let with_sp = simulate_accelerator(
            AcceleratorConfig::vcu128(),
            &case.gcod_request(ModelKind::Gcn, Precision::Fp32, &outcome_sp),
        );
        let with_quant = simulate_accelerator(
            AcceleratorConfig::vcu128_int8(),
            &case.gcod_request(ModelKind::Gcn, Precision::Int8, &outcome_sp),
        );

        let rendered: String = [&cpu, &awb, &plain, &with_sp, &with_quant]
            .into_iter()
            .map(render_report)
            .collect();
        renderings.push((kernel, rendered));
    }
    let (_, reference) = &renderings[0];
    for (kernel, rendered) in &renderings[1..] {
        assert_eq!(
            rendered,
            reference,
            "kernel {} changed the simulated table6 reports — kernels must affect wall-clock only",
            kernel.name()
        );
    }
    assert_matches_fixture("table6_cora.txt", reference);
}
