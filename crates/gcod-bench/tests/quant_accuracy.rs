//! Table VII-style accuracy-regression suite for the quantized compute
//! path: a GCN is trained per dataset profile at a fixed seed and tiny
//! replica scale, then evaluated on the test mask at fp32, int16 and int8.
//! The absolute accuracy delta of each quantized precision versus fp32 must
//! stay within the committed per-dataset tolerance table
//! (`tests/fixtures/quant_tolerances.txt`).
//!
//! The paper's Table VII reports that GCoD's 8-bit variant loses no
//! meaningful accuracy; this suite pins the replica-scale equivalent so a
//! quantization regression (a kernel bug, a scale-selection change, an
//! accumulation-width change) shows up as a tolerance violation rather than
//! silently shifting downstream numbers.
//!
//! Everything in the measurement is deterministic — graph generation,
//! Glorot init, training and both forward paths are seeded and
//! bit-reproducible — so the measured drops are exactly reproducible and
//! the tolerances can sit close to the measurements.
//!
//! Regenerate the tolerance table after an intentional numerics change with:
//! `GOLDEN_BLESS=1 cargo test -p gcod-bench --test quant_accuracy`

use gcod_graph::{DatasetProfile, GraphGenerator, KNOWN_DATASETS};
use gcod_nn::metrics::masked_accuracy;
use gcod_nn::models::{GnnModel, ModelConfig};
use gcod_nn::quant::Precision;
use gcod_nn::train::{TrainConfig, Trainer};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Replica size of the accuracy runs — matches the golden-report scale:
/// small enough to train in milliseconds, large enough that test-mask
/// accuracy is a meaningful (non-degenerate) statistic.
const REPLICA_NODES: usize = 300;

/// Training epochs. Enough for the tiny replicas to converge to a stable
/// decision boundary; quantization deltas on a half-trained model are noisy.
const EPOCHS: usize = 60;

/// Margin added on top of the measured |drop| when blessing the tolerance
/// table. Generous relative to quantization effects (int8 deltas measure in
/// the low percent), tight enough that a real regression — e.g. losing a
/// bit of accumulator width — trips the gate.
const BLESS_MARGIN: f64 = 0.02;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/quant_tolerances.txt")
}

/// One measured row: the fp32 baseline accuracy and the quantized accuracy.
struct Measurement {
    dataset: String,
    precision: Precision,
    fp32_accuracy: f64,
    quant_accuracy: f64,
}

impl Measurement {
    fn abs_drop(&self) -> f64 {
        (self.fp32_accuracy - self.quant_accuracy).abs()
    }
}

/// Trains one GCN per dataset at the fixed seed and measures test-mask
/// accuracy at every precision. Cached so both tests share one training
/// sweep (training dominates the suite's runtime).
fn measure_all() -> &'static [Measurement] {
    static MEASUREMENTS: OnceLock<Vec<Measurement>> = OnceLock::new();
    MEASUREMENTS.get_or_init(measure_uncached)
}

fn measure_uncached() -> Vec<Measurement> {
    let mut out = Vec::new();
    for name in KNOWN_DATASETS {
        let profile = DatasetProfile::by_name(name)
            .expect("KNOWN_DATASETS entries resolve")
            .scaled_to_nodes(REPLICA_NODES);
        let graph = GraphGenerator::new(0)
            .generate(&profile)
            .expect("replica generation succeeds");
        let mut model =
            GnnModel::new(ModelConfig::gcn(&graph), 0).expect("model construction succeeds");
        Trainer::new(TrainConfig {
            epochs: EPOCHS,
            ..TrainConfig::default()
        })
        .fit(&mut model, &graph)
        .expect("training succeeds");

        let fp32_logits = model.forward(&graph).expect("fp32 forward");
        let fp32_accuracy = masked_accuracy(&fp32_logits, graph.labels(), graph.test_mask());
        for precision in [Precision::Int16, Precision::Int8] {
            let quantized = model.clone().with_precision(precision);
            let logits = quantized.forward(&graph).expect("quantized forward");
            let quant_accuracy = masked_accuracy(&logits, graph.labels(), graph.test_mask());
            out.push(Measurement {
                dataset: name.to_string(),
                precision,
                fp32_accuracy,
                quant_accuracy,
            });
        }
    }
    out
}

fn render_tolerances(measurements: &[Measurement]) -> String {
    measurements
        .iter()
        .map(|m| {
            format!(
                "dataset={} precision={} max_abs_drop={:.3}\n",
                m.dataset,
                m.precision,
                m.abs_drop() + BLESS_MARGIN
            )
        })
        .collect()
}

fn parse_tolerances(text: &str) -> BTreeMap<(String, String), f64> {
    let mut table = BTreeMap::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let mut dataset = None;
        let mut precision = None;
        let mut tol = None;
        for field in line.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .unwrap_or_else(|| panic!("malformed tolerance field {field:?}"));
            match key {
                "dataset" => dataset = Some(value.to_string()),
                "precision" => precision = Some(value.to_string()),
                "max_abs_drop" => {
                    tol =
                        Some(value.parse::<f64>().unwrap_or_else(|e| {
                            panic!("malformed tolerance value {value:?}: {e}")
                        }));
                }
                other => panic!("unknown tolerance field {other:?}"),
            }
        }
        table.insert(
            (
                dataset.expect("dataset field present"),
                precision.expect("precision field present"),
            ),
            tol.expect("max_abs_drop field present"),
        );
    }
    table
}

/// Every (dataset, precision) pair's int-vs-f32 accuracy delta stays within
/// the committed tolerance; with `GOLDEN_BLESS=1` the table is rewritten
/// from the measurements instead.
#[test]
fn quantized_accuracy_within_committed_tolerances() {
    let measurements = measure_all();
    let path = fixture_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(&path, render_tolerances(measurements)).expect("write tolerance table");
        return;
    }
    let table = parse_tolerances(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing tolerance table {} ({e}); regenerate with GOLDEN_BLESS=1",
            path.display()
        )
    }));
    assert_eq!(
        table.len(),
        measurements.len(),
        "tolerance table rows must match the measured (dataset, precision) pairs; \
         regenerate with GOLDEN_BLESS=1"
    );
    for m in measurements {
        let key = (m.dataset.clone(), m.precision.to_string());
        let tol = *table.get(&key).unwrap_or_else(|| {
            panic!(
                "no committed tolerance for dataset={} precision={}; \
                 regenerate with GOLDEN_BLESS=1",
                m.dataset, m.precision
            )
        });
        assert!(
            m.abs_drop() <= tol,
            "dataset={} precision={}: |accuracy drop| {:.4} exceeds committed tolerance {:.3} \
             (fp32 {:.4} vs {} {:.4}) — if the numerics change is intentional, regenerate \
             with GOLDEN_BLESS=1",
            m.dataset,
            m.precision,
            m.abs_drop(),
            tol,
            m.fp32_accuracy,
            m.precision,
            m.quant_accuracy,
        );
    }
}

/// Int16 must track fp32 at least as closely as int8 in aggregate: summed
/// over the suite, the int16 deltas cannot exceed the int8 deltas. (Per
/// dataset the comparison can flip on a handful of borderline test nodes;
/// the aggregate cannot.)
#[test]
fn int16_tracks_f32_no_worse_than_int8_in_aggregate() {
    let measurements = measure_all();
    let sum_for = |p: Precision| -> f64 {
        measurements
            .iter()
            .filter(|m| m.precision == p)
            .map(Measurement::abs_drop)
            .sum()
    };
    let int16 = sum_for(Precision::Int16);
    let int8 = sum_for(Precision::Int8);
    assert!(
        int16 <= int8 + 1e-12,
        "aggregate int16 accuracy delta {int16:.4} exceeds int8's {int8:.4}"
    );
}
