//! Benchmark of the multilevel balanced partitioner (the METIS stand-in used
//! by GCoD's Step 1) across graph sizes and part counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcod_graph::{DatasetProfile, GraphGenerator, PartitionConfig, Partitioner};

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    for &nodes in &[1_000usize, 4_000] {
        let profile = DatasetProfile::custom("bench", nodes, nodes * 4, 16, 4);
        let graph = GraphGenerator::new(3).generate(&profile).expect("generate");
        for &parts in &[4usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{parts}way"), nodes),
                &nodes,
                |b, _| {
                    b.iter(|| {
                        Partitioner::new(PartitionConfig::k_way(parts))
                            .partition(graph.adjacency())
                            .expect("partition")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
