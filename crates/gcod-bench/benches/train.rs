//! End-to-end training benchmark: wall-clock per epoch of the full GCN
//! training pass (sparse aggregation + dense combination + backward) swept
//! over worker counts × datasets on the persistent `gcod_runtime` pool.
//!
//! Each case trains a fresh 2-layer GCN with the `parallel-csr` aggregation
//! kernel for a fixed epoch budget at an explicit worker-lane count (`w1`,
//! `w2`, and `auto` = the pool's lane count). Worker count is
//! bit-deterministic — every sweep point computes identical logits — so the
//! only thing this bench measures is wall-clock. The case list and fixtures
//! live in [`gcod_bench::sweeps`], shared with the `bench_gate` CI binary.
//!
//! Writes a machine-readable summary to `target/BENCH_train.json` **and**
//! the repo-root `BENCH_train.json` tracked across PRs (override both with
//! the `BENCH_TRAIN_JSON` environment variable), recording the median
//! per-epoch time of each case and its speedup over the single-worker run.
//! On single-core hardware every worker count degrades gracefully to the
//! inline path, so the expected speedup there is ~1.0 (parity); the ≥1.5×
//! epoch speedups show up on multi-core machines. Run the sweep with
//! `cargo bench --bench train`; CI smokes it with
//! `cargo bench --bench train -- --test` (one sample, no JSON).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcod_bench::sweeps::{
    train_graph, train_template, train_trainer, worker_label, TRAIN_DATASETS, TRAIN_EPOCHS,
    TRAIN_WORKER_COUNTS,
};
use gcod_runtime::Pool;

fn bench_train(c: &mut Criterion) {
    // The auto (`workers = 0`) rows resolve to the global pool's lane count.
    // Resolve it exactly once, here, and reuse it for the JSON rows — the
    // execution path resolves 0 through the very same pool, so the recorded
    // `resolved_workers` can never drift from what the training actually ran
    // with (on any core count).
    let resolved_auto_workers = Pool::global().workers();

    let mut group = c.benchmark_group("train");
    group.sample_size(9);
    for &(label, ..) in TRAIN_DATASETS {
        let graph = train_graph(label);
        let trainer = train_trainer();
        // Built once per case: the timed closure clones it (a plain memcpy)
        // so the samples measure the training loop, not weight initialisation.
        let template = train_template(&graph);
        for &workers in TRAIN_WORKER_COUNTS {
            let id = BenchmarkId::new(format!("gcn-{label}"), worker_label(workers));
            group.bench_with_input(id, &workers, |b, &workers| {
                b.iter(|| {
                    let mut model = template.clone().with_workers(workers);
                    trainer.fit(&mut model, &graph).expect("training succeeds")
                });
            });
        }
    }
    group.finish();

    if !c.is_test_mode() {
        gcod_bench::write_bench_summary(
            "BENCH_train.json",
            "BENCH_TRAIN_JSON",
            &render_summary(c, resolved_auto_workers),
        );
    }
}

/// Renders the recorded medians as JSON by hand (the vendored serde shim has
/// no serializer): one entry per dataset × worker count with the per-epoch
/// median and the speedup over the single-worker (`w1`) run. The `auto`
/// rows record `resolved_auto_workers`, the single upfront `Pool::global()`
/// resolution.
fn render_summary(c: &Criterion, resolved_auto_workers: usize) -> String {
    let single_worker_ns = |dataset: &str| {
        let label = format!("train/gcn-{dataset}/w1");
        c.results()
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, d)| d.as_nanos())
    };
    let mut entries = Vec::new();
    for (label, median) in c.results() {
        // Labels are "train/gcn-<dataset>/<workers>".
        let mut parts = label.splitn(3, '/');
        let (Some(_), Some(case), Some(workers)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let Some(dataset) = case.strip_prefix("gcn-") else {
            continue;
        };
        let nodes = TRAIN_DATASETS
            .iter()
            .find(|(l, ..)| *l == dataset)
            .map_or(0, |&(_, n, ..)| n);
        let resolved_workers = if workers == "auto" {
            resolved_auto_workers
        } else {
            workers.trim_start_matches('w').parse().unwrap_or(1)
        };
        let epoch_ms = median.as_nanos() as f64 / TRAIN_EPOCHS as f64 / 1e6;
        let speedup = single_worker_ns(dataset)
            .map(|base| base as f64 / median.as_nanos().max(1) as f64)
            .unwrap_or(1.0);
        entries.push(format!(
            "  {{\"dataset\": \"{dataset}\", \"nodes\": {nodes}, \"workers\": \"{workers}\", \
             \"resolved_workers\": {resolved_workers}, \"epochs\": {TRAIN_EPOCHS}, \
             \"epoch_ms\": {epoch_ms:.3}, \"speedup_over_w1\": {speedup:.3}}}"
        ));
    }
    format!("[\n{}\n]\n", entries.join(",\n"))
}

criterion_group!(benches, bench_train);
criterion_main!(benches);
