//! Sharded-serving benchmark: steady-state request latency of the
//! `gcod-serve` shard router swept over shard count × dataset, plus the
//! machine-independent halo-traffic column.
//!
//! Each case launches thread-mode shard workers (the transport, framing and
//! protocol are identical to process mode — only the spawn differs), warms
//! the cached full forward pass, then times `forward_rows` over a fixed
//! query: one scatter/gather round-trip across every shard socket. The case
//! list and fixtures live in [`gcod_bench::sweeps`], shared with the
//! `bench_gate` CI binary so the gate re-measures exactly this sweep.
//!
//! Writes a machine-readable summary to `target/BENCH_shard.json` **and**
//! the repo-root `BENCH_shard.json` tracked across PRs (override both with
//! the `BENCH_SHARD_JSON` environment variable), recording per-case median
//! latency plus the deterministic `halo_bytes` relayed per full forward —
//! the column the gate holds exactly on any runner. Run with
//! `cargo bench --bench shard`; CI smokes it with
//! `cargo bench --bench shard -- --test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcod_bench::sweeps::{
    shard_halo_byte_rows, shard_query_nodes, shard_router, shard_workload, SHARD_COUNTS,
    SHARD_DATASETS,
};

fn bench_shard(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard");
    group.sample_size(9);
    for &(dataset, nodes) in SHARD_DATASETS {
        let (graph, model) = shard_workload(dataset, nodes);
        let query = shard_query_nodes(graph.num_nodes());
        for &shards in SHARD_COUNTS {
            let sharded = shard_router(&graph, &model, shards);
            sharded.forward_rows(&query).expect("warmup forward");
            group.bench_with_input(BenchmarkId::new(dataset, shards), &shards, |b, _| {
                b.iter(|| sharded.forward_rows(&query).expect("sharded forward"));
            });
            sharded.shutdown().expect("shutdown");
        }
    }
    group.finish();

    if !c.is_test_mode() {
        gcod_bench::write_bench_summary("BENCH_shard.json", "BENCH_SHARD_JSON", &render_summary(c));
    }
}

/// Renders the recorded medians as JSON by hand (the vendored serde shim
/// has no serializer), joining each row with its deterministic halo-bytes
/// column recomputed from the shard plan.
fn render_summary(c: &Criterion) -> String {
    let halo = shard_halo_byte_rows();
    let mut entries = Vec::new();
    for (label, median) in c.results() {
        // Labels are "shard/<dataset>/<shards>".
        let mut parts = label.splitn(3, '/');
        let (Some(_), Some(dataset), Some(shards)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let median_ns = median.as_nanos();
        let per_request_us = median_ns as f64 / 1e3;
        let halo_bytes = halo
            .iter()
            .find(|(key, _)| key == &format!("shard-halo/{dataset}/{shards}"))
            .map_or(0.0, |(_, bytes)| *bytes);
        entries.push(format!(
            "  {{\"dataset\": \"{dataset}\", \"shards\": {shards}, \"median_ns\": {median_ns}, \
             \"per_request_us\": {per_request_us:.3}, \"halo_bytes\": {halo_bytes:.0}}}"
        ));
    }
    format!("[\n{}\n]\n", entries.join(",\n"))
}

criterion_group!(benches, bench_shard);
criterion_main!(benches);
