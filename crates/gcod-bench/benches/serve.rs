//! Serving-layer benchmark: end-to-end submit→wait latency and throughput
//! of the `gcod-serve` front-end swept over fused-batch sizes, the
//! cost-scored backend-routing path, and a fault-recovery case (sever one of
//! two shard workers, time the detect→respawn→replay→answer path).
//!
//! Each classify case submits `batch` compatible requests (same served
//! model) and waits for all tickets; the batcher coalesces them into fused
//! forward passes of at most `batch` requests, so the sweep exposes the
//! batching win directly: per-request latency should fall as the batch
//! grows, because one propagation pass is amortised over the whole batch.
//! The case list and fixtures live in [`gcod_bench::sweeps`], shared with
//! the `bench_gate` CI binary so the gate re-measures exactly this sweep.
//!
//! Writes a machine-readable summary to `target/BENCH_serve.json` **and**
//! the repo-root `BENCH_serve.json` tracked across PRs (override both with
//! the `BENCH_SERVE_JSON` environment variable), recording per-case median
//! latency, per-request latency, throughput and the resolved worker count
//! (one `Pool::global()` resolution, reused for every row). Run with
//! `cargo bench --bench serve`; CI smokes it with
//! `cargo bench --bench serve -- --test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcod_bench::load;
use gcod_bench::sweeps::{
    serve_classify_request, serve_recover_iteration, serve_recover_model, serve_server,
    SERVE_BATCH_SIZES, SERVE_MODEL_NAME, SERVE_RECOVER_SHARDS,
};
use gcod_runtime::Pool;
use gcod_serve::{ServeRequest, SubmitOptions};

fn bench_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve");
    group.sample_size(9);
    for &batch in SERVE_BATCH_SIZES {
        let handle = serve_server(batch).spawn();
        group.bench_with_input(BenchmarkId::new("classify", batch), &batch, |b, &batch| {
            b.iter(|| {
                let tickets: Vec<_> = (0..batch)
                    .map(|i| {
                        handle
                            .submit(
                                serve_classify_request(i),
                                SubmitOptions::default().blocking(),
                            )
                            .expect("server is live")
                    })
                    .collect();
                for ticket in tickets {
                    ticket.wait().expect("classification succeeds");
                }
            });
        });
        handle.shutdown();
    }

    // The backend router: score the full platform suite, dispatch to the
    // cheapest model.
    let handle = serve_server(1).spawn();
    group.bench_with_input(BenchmarkId::new("route-auto", 1usize), &1usize, |b, _| {
        b.iter(|| {
            handle
                .submit(
                    ServeRequest::predict_perf(SERVE_MODEL_NAME),
                    SubmitOptions::default().blocking(),
                )
                .expect("server is live")
                .wait()
                .expect("routing succeeds")
        });
    });
    handle.shutdown();

    // Fault-recovery latency: sever one of two shard workers, then answer a
    // full request — the supervisor detects the dead endpoint, respawns the
    // worker, replays its layer state and gathers. The respawn budget is
    // unbounded so every iteration recovers instead of degrading.
    let (sharded, query) = serve_recover_model();
    group.bench_with_input(
        BenchmarkId::new("recover-kill", SERVE_RECOVER_SHARDS),
        &SERVE_RECOVER_SHARDS,
        |b, _| {
            b.iter(|| serve_recover_iteration(&sharded, &query));
        },
    );
    sharded.shutdown().expect("shutdown");
    group.finish();

    if !c.is_test_mode() {
        gcod_bench::write_bench_summary("BENCH_serve.json", "BENCH_SERVE_JSON", &render_summary(c));
    }
}

/// Renders the recorded medians as JSON by hand (the vendored serde shim has
/// no serializer). The worker count is resolved **once** via the global pool
/// and reused for every row — the same resolution the execution path uses.
/// The open-loop tail-latency sweep ([`gcod_bench::load`]) is appended so a
/// regenerated `BENCH_serve.json` keeps the committed `open-p50`/`open-p99`/
/// `open-p999` rows the gate checks.
fn render_summary(c: &Criterion) -> String {
    let resolved_workers = Pool::global().workers();
    let mut entries = Vec::new();
    for (label, median) in c.results() {
        // Labels are "serve/<case>/<batch>".
        let mut parts = label.splitn(3, '/');
        let (Some(_), Some(case), Some(batch)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        let batch: usize = batch.parse().unwrap_or(1);
        let median_ns = median.as_nanos();
        let per_request_us = median_ns as f64 / batch.max(1) as f64 / 1e3;
        let throughput_rps = if median_ns > 0 {
            batch as f64 / (median_ns as f64 / 1e9)
        } else {
            0.0
        };
        entries.push(format!(
            "  {{\"case\": \"{case}\", \"batch\": {batch}, \"median_ns\": {median_ns}, \
             \"per_request_us\": {per_request_us:.3}, \"throughput_rps\": {throughput_rps:.1}, \
             \"resolved_workers\": {resolved_workers}}}"
        ));
    }
    let open_loop = load::sweep_open_loop(load::OPEN_LOOP_LOADS, load::OPEN_LOOP_REQUESTS, 7);
    entries.extend(load::open_loop_summary_rows(&open_loop, resolved_workers));
    format!("[\n{}\n]\n", entries.join(",\n"))
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
