//! Benchmark of the sparsify + polarize graph-tuning step (GCoD Step 2) and
//! the structural sparsification (Step 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcod_core::{structural_sparsify, GcodConfig, Polarizer, SubgraphLayout};
use gcod_graph::{DatasetProfile, GraphGenerator};

fn bench_polarize(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_tuning");
    group.sample_size(10);
    for &nodes in &[1_000usize, 3_000] {
        let profile = DatasetProfile::custom("bench", nodes, nodes * 4, 16, 4);
        let graph = GraphGenerator::new(5).generate(&profile).expect("generate");
        let config = GcodConfig {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            prune_ratio: 0.1,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&graph, &config, 0).expect("layout");
        let reordered = layout.apply(&graph);

        group.bench_with_input(
            BenchmarkId::new("sparsify_polarize", nodes),
            &nodes,
            |b, _| {
                b.iter(|| {
                    Polarizer::new(config.clone())
                        .tune(reordered.adjacency(), &layout)
                        .expect("tune")
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("structural", nodes), &nodes, |b, _| {
            b.iter(|| structural_sparsify(reordered.adjacency(), &layout, 32, 12));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_polarize);
criterion_main!(benches);
