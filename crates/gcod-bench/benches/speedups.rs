//! End-to-end benchmark of the Fig. 9 pipeline for one dataset/model pair:
//! the GCoD algorithm run on the replica plus the simulation of every
//! platform. This measures the cost of regenerating one column of the
//! speedup figures.

use criterion::{criterion_group, criterion_main, Criterion};
use gcod_bench::{harness_gcod_config, run_algorithm, simulate_all_platforms, DatasetCase};
use gcod_nn::models::ModelKind;

fn bench_speedup_column(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_column");
    group.sample_size(10);
    let case = DatasetCase::by_name("cora");
    let config = harness_gcod_config();

    group.bench_function("algorithm_replica_cora", |b| {
        b.iter(|| run_algorithm(&case, &config, 0));
    });

    let outcome = run_algorithm(&case, &config, 0);
    group.bench_function("simulate_all_platforms_cora_gcn", |b| {
        b.iter(|| simulate_all_platforms(&case, ModelKind::Gcn, &outcome));
    });
    group.finish();
}

criterion_group!(benches, bench_speedup_column);
criterion_main!(benches);
