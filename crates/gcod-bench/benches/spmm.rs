//! Kernel-level benchmark of the aggregation SpMM in both traversal orders
//! (row-wise "gathered" vs column-wise "distributed"), the primitive the
//! GCoD accelerator's branches model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcod_graph::{DatasetProfile, GraphGenerator};
use gcod_nn::sparse_ops::{spmm, spmm_csc};
use gcod_nn::Tensor;

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for &nodes in &[500usize, 2_000, 8_000] {
        let profile = DatasetProfile::custom("bench", nodes, nodes * 5, 16, 4);
        let graph = GraphGenerator::new(1).generate(&profile).expect("generate");
        let csr = graph.adjacency().clone();
        let csc = csr.to_csc();
        let features = Tensor::full(nodes, 16, 0.5);

        group.bench_with_input(BenchmarkId::new("csr_row_wise", nodes), &nodes, |b, _| {
            b.iter(|| spmm(&csr, &features).expect("spmm"));
        });
        group.bench_with_input(
            BenchmarkId::new("csc_column_wise", nodes),
            &nodes,
            |b, _| {
                b.iter(|| spmm_csc(&csc, &features).expect("spmm_csc"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
