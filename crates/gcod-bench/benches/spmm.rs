//! Kernel-level benchmark of the aggregation SpMM: the full
//! [`SpmmKernel`](gcod_nn::kernels::SpmmKernel) suite swept over synthetic
//! datasets of increasing size, plus the column-wise (CSC, "distributed")
//! traversal the AWB-GCN-style engines model.
//!
//! The case list and fixtures live in [`gcod_bench::sweeps`], shared with
//! the `bench_gate` CI binary so the gate re-measures exactly this sweep.
//!
//! Writes a machine-readable summary to `target/BENCH_spmm.json` **and**
//! the repo-root `BENCH_spmm.json` tracked across PRs (override both with
//! the `BENCH_SPMM_JSON` environment variable) recording the median time
//! per kernel × dataset and each kernel's speedup over `naive-csr`. Run the
//! sweep with `cargo bench --bench spmm`; CI smokes it with
//! `cargo bench --bench spmm -- --test` (one sample, no JSON) and gates the
//! committed summary with `bench_gate`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcod_bench::sweeps::{run_spmm, spmm_fixture, spmm_kernel_names, SPMM_DATASETS};

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    for &(nodes, degree, feat) in SPMM_DATASETS {
        let fixture = spmm_fixture(nodes, degree, feat);
        for kernel in spmm_kernel_names() {
            group.bench_with_input(BenchmarkId::new(kernel, nodes), &nodes, |b, _| {
                b.iter(|| run_spmm(&fixture, kernel));
            });
        }
    }
    group.finish();

    if !c.is_test_mode() {
        gcod_bench::write_bench_summary("BENCH_spmm.json", "BENCH_SPMM_JSON", &render_summary(c));
    }
}

/// Renders the recorded medians as JSON by hand — the vendored serde shim
/// has no serializer, and the schema is three flat fields per entry.
fn render_summary(c: &Criterion) -> String {
    let baseline_ns = |nodes: usize| {
        let label = format!("spmm/naive-csr/{nodes}");
        c.results()
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, d)| d.as_nanos())
    };
    let mut entries = Vec::new();
    for (label, median) in c.results() {
        // Labels are "spmm/<kernel>/<nodes>".
        let mut parts = label.splitn(3, '/');
        let (Some(_), Some(kernel), Some(nodes)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let speedup = nodes
            .parse::<usize>()
            .ok()
            .and_then(baseline_ns)
            .map(|base| base as f64 / median.as_nanos().max(1) as f64)
            .unwrap_or(1.0);
        entries.push(format!(
            "  {{\"kernel\": \"{kernel}\", \"nodes\": {nodes}, \"median_ns\": {}, \
             \"speedup_over_naive\": {speedup:.3}}}",
            median.as_nanos()
        ));
    }
    format!("[\n{}\n]\n", entries.join(",\n"))
}

criterion_group!(benches, bench_spmm);
criterion_main!(benches);
