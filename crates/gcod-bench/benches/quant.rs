//! Quantized-inference benchmark: one full GCN forward pass swept over
//! precision {fp32, int16, int8} × dataset size.
//!
//! The fp32 cases time the f32 kernel suite; the int16/int8 cases time the
//! real integer compute path end to end — per-layer activation
//! quantization, integer SpMM + blocked GEMM with widened accumulation, and
//! the layer-boundary dequantization. The case list and fixtures live in
//! [`gcod_bench::sweeps`], shared with the `bench_gate` CI binary so the
//! gate re-measures exactly this sweep.
//!
//! Writes a machine-readable summary to `target/BENCH_quant.json` **and**
//! the repo-root `BENCH_quant.json` tracked across PRs (override both with
//! the `BENCH_QUANT_JSON` environment variable), recording per-case median
//! latency plus the deterministic `bytes_moved_ratio` column — operand
//! bytes at fp32 over operand bytes at the case's precision, the
//! machine-independent number the gate holds exactly on any runner. Run
//! with `cargo bench --bench quant`; CI smokes it with
//! `cargo bench --bench quant -- --test`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gcod_bench::sweeps::{quant_bytes_moved_rows, quant_workload, QUANT_DATASETS};
use gcod_nn::quant::Precision;

fn bench_quant(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant");
    group.sample_size(9);
    for &(nodes, degree, feat) in QUANT_DATASETS {
        let (graph, model) = quant_workload(nodes, degree, feat);
        for precision in Precision::all() {
            let model = model.clone().with_precision(precision);
            group.bench_with_input(BenchmarkId::new(precision.name(), nodes), &nodes, |b, _| {
                b.iter(|| model.forward(&graph).expect("forward"));
            });
        }
    }
    group.finish();

    if !c.is_test_mode() {
        gcod_bench::write_bench_summary("BENCH_quant.json", "BENCH_QUANT_JSON", &render_summary(c));
    }
}

/// Renders the recorded medians as JSON by hand (the vendored serde shim
/// has no serializer), joining each row with its deterministic
/// bytes-moved-ratio column recomputed from the storage accounting.
fn render_summary(c: &Criterion) -> String {
    let ratios = quant_bytes_moved_rows();
    let mut entries = Vec::new();
    for (label, median) in c.results() {
        // Labels are "quant/<precision>/<nodes>".
        let mut parts = label.splitn(3, '/');
        let (Some(_), Some(precision), Some(nodes)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        let median_ns = median.as_nanos();
        let per_forward_us = median_ns as f64 / 1e3;
        let bytes_moved_ratio = ratios
            .iter()
            .find(|(key, _)| key == &format!("quant-bytes/{precision}/{nodes}"))
            .map_or(0.0, |(_, ratio)| *ratio);
        entries.push(format!(
            "  {{\"precision\": \"{precision}\", \"nodes\": {nodes}, \"median_ns\": {median_ns}, \
             \"per_forward_us\": {per_forward_us:.3}, \
             \"bytes_moved_ratio\": {bytes_moved_ratio:.6}}}"
        ));
    }
    format!("[\n{}\n]\n", entries.join(",\n"))
}

criterion_group!(benches, bench_quant);
criterion_main!(benches);
