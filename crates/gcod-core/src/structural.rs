//! Step 3: patch-based structural sparsification.
//!
//! After polarization the off-diagonal region still contains scattered
//! non-zeros. GCoD prunes entire patches whose non-zero count falls below a
//! threshold η (10–30 in the paper), producing the "vacancies" visible in
//! Fig. 4 and letting the sparser-branch hardware skip whole columns. Patches
//! that overlap the block-diagonal subgraphs are never pruned — those carry
//! the accuracy-critical community structure the denser branch processes.

use crate::SubgraphLayout;
use gcod_graph::{CooMatrix, CsrMatrix, PatchGrid};
use serde::{Deserialize, Serialize};

/// Outcome summary of structural sparsification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructuralReport {
    /// Patch side length used.
    pub patch_size: usize,
    /// Threshold η.
    pub threshold: u32,
    /// Number of patches pruned.
    pub patches_pruned: usize,
    /// Directed non-zeros removed.
    pub nnz_removed: usize,
    /// Directed non-zeros before.
    pub nnz_before: usize,
    /// Directed non-zeros after.
    pub nnz_after: usize,
    /// Structural sparsity gained (`nnz_removed / nnz_before`); the paper
    /// reports 5–15%.
    pub structural_sparsity: f64,
}

/// Prunes off-diagonal patches with fewer than `threshold` non-zeros.
///
/// `adj` must already be in the layout's node order. Symmetry is preserved by
/// pruning mirrored patches together: an entry is removed if *either* its
/// patch or the transposed patch is below the threshold.
pub fn structural_sparsify(
    adj: &CsrMatrix,
    layout: &SubgraphLayout,
    patch_size: usize,
    threshold: u32,
) -> (CsrMatrix, StructuralReport) {
    let grid = PatchGrid::compute(adj, patch_size);
    let n = adj.rows();

    // A patch is protected when it intersects any subgraph's diagonal block.
    let mut protected = vec![false; grid.grid_rows() * grid.grid_cols()];
    for info in layout.subgraphs() {
        let pr_start = info.start / patch_size;
        let pr_end = (info.start + info.len)
            .div_ceil(patch_size)
            .min(grid.grid_rows());
        for pr in pr_start..pr_end {
            for pc in pr_start..pr_end {
                if pc < grid.grid_cols() {
                    protected[pr * grid.grid_cols() + pc] = true;
                }
            }
        }
    }

    // Decide per patch whether it dies.
    let mut prune = vec![false; protected.len()];
    let mut patches_pruned = 0usize;
    for (pr, pc, count) in grid.iter() {
        let idx = pr * grid.grid_cols() + pc;
        if !protected[idx] && count > 0 && count < threshold {
            prune[idx] = true;
            patches_pruned += 1;
        }
    }
    // Symmetrise the decision: prune (i,j) entries whenever either (pr,pc) or
    // (pc,pr) is marked, so the adjacency stays symmetric.
    let is_pruned = |r: usize, c: usize| -> bool {
        let pr = r / patch_size;
        let pc = c / patch_size;
        prune[pr * grid.grid_cols() + pc] || prune[pc * grid.grid_cols() + pr]
    };

    let nnz_before = adj.nnz();
    let mut coo = CooMatrix::with_capacity(n, n, nnz_before);
    for (r, c, v) in adj.iter() {
        if !is_pruned(r, c) {
            coo.push(r, c, v).expect("indices already valid");
        }
    }
    let pruned_adj = coo.to_csr();
    let nnz_after = pruned_adj.nnz();
    let report = StructuralReport {
        patch_size,
        threshold,
        patches_pruned,
        nnz_removed: nnz_before - nnz_after,
        nnz_before,
        nnz_after,
        structural_sparsity: if nnz_before > 0 {
            (nnz_before - nnz_after) as f64 / nnz_before as f64
        } else {
            0.0
        },
    };
    (pruned_adj, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GcodConfig, SubgraphLayout};
    use gcod_graph::{DatasetProfile, Graph, GraphGenerator};

    fn setup() -> (Graph, SubgraphLayout) {
        let g = GraphGenerator::new(31)
            .generate(&DatasetProfile::custom("str", 300, 1200, 8, 4))
            .unwrap();
        let cfg = GcodConfig {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        let permuted = layout.apply(&g);
        (permuted, layout)
    }

    #[test]
    fn removes_sparse_off_diagonal_patches() {
        let (g, layout) = setup();
        let (pruned, report) = structural_sparsify(g.adjacency(), &layout, 16, 8);
        assert!(report.nnz_after <= report.nnz_before);
        assert_eq!(report.nnz_before - report.nnz_after, report.nnz_removed);
        assert_eq!(pruned.nnz(), report.nnz_after);
        assert!(report.structural_sparsity < 0.6, "should not gut the graph");
    }

    #[test]
    fn higher_threshold_removes_more() {
        let (g, layout) = setup();
        let (_, low) = structural_sparsify(g.adjacency(), &layout, 16, 3);
        let (_, high) = structural_sparsify(g.adjacency(), &layout, 16, 30);
        assert!(high.nnz_removed >= low.nnz_removed);
    }

    #[test]
    fn zero_threshold_is_a_noop() {
        let (g, layout) = setup();
        let (pruned, report) = structural_sparsify(g.adjacency(), &layout, 16, 0);
        assert_eq!(pruned.nnz(), g.num_edges());
        assert_eq!(report.patches_pruned, 0);
        assert_eq!(report.structural_sparsity, 0.0);
    }

    #[test]
    fn diagonal_blocks_are_protected() {
        let (g, layout) = setup();
        let before_diag = layout.diagonal_nnz();
        let (pruned, _) = structural_sparsify(g.adjacency(), &layout, 16, 1000);
        // Count remaining intra-subgraph edges.
        let mut after_diag = 0usize;
        for info in layout.subgraphs() {
            after_diag += pruned.block_nnz(
                info.start,
                info.start + info.len,
                info.start,
                info.start + info.len,
            );
        }
        assert_eq!(
            after_diag, before_diag,
            "block-diagonal edges must never be structurally pruned"
        );
    }

    #[test]
    fn result_stays_symmetric() {
        let (g, layout) = setup();
        let (pruned, _) = structural_sparsify(g.adjacency(), &layout, 16, 10);
        for (r, c, v) in pruned.iter() {
            assert_eq!(pruned.get(c, r), v, "asymmetry at ({r},{c})");
        }
    }
}
