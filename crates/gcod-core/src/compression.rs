//! GCN compression baselines of Table VII.
//!
//! The paper compares GCoD's accuracy against four compression baselines:
//! Random Pruning (RP), the SGCN graph sparsifier, quantization-aware
//! training (QAT) and Degree-Quant. Each is reproduced here in the form the
//! comparison needs — the same graph/model/training substrate with the
//! baseline's graph- or weight-level transformation applied — so the relative
//! accuracy ordering (GCoD ≥ vanilla ≥ smart pruning ≥ random pruning) can be
//! measured end-to-end.

use crate::Result;
use gcod_graph::{CooMatrix, Graph};
use gcod_nn::models::{GnnModel, ModelConfig, ModelKind};
use gcod_nn::quant::quantized_forward;
use gcod_nn::train::{TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A compression baseline from Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CompressionMethod {
    /// No compression: the vanilla model.
    Vanilla,
    /// Random pruning of a fraction of the edges.
    RandomPruning {
        /// Fraction of undirected edges removed uniformly at random.
        ratio: f64,
    },
    /// SGCN-style sparsification: removes the lowest-importance edges, where
    /// importance is the symmetric-normalized edge weight (edges between
    /// high-degree nodes go first).
    Sgcn {
        /// Fraction of undirected edges removed.
        ratio: f64,
    },
    /// Quantization-aware training: weights round-tripped through INT8 at
    /// evaluation time.
    Qat,
    /// Degree-Quant: INT8 quantization that protects high-degree nodes by
    /// evaluating them in full precision (modelled as INT8 evaluation with
    /// full-precision fallback for the top-degree decile, which keeps the
    /// accuracy above plain QAT).
    DegreeQuant,
}

impl CompressionMethod {
    /// Short name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            CompressionMethod::Vanilla => "vanilla",
            CompressionMethod::RandomPruning { .. } => "rp",
            CompressionMethod::Sgcn { .. } => "sgcn",
            CompressionMethod::Qat => "qat",
            CompressionMethod::DegreeQuant => "degree-quant",
        }
    }
}

/// Result of evaluating one compression method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionOutcome {
    /// Which method.
    pub method: String,
    /// Test accuracy achieved.
    pub test_accuracy: f64,
    /// Number of directed edges the training graph retained.
    pub edges_retained: usize,
    /// Whether evaluation happened at INT8.
    pub quantized: bool,
}

/// Trains `model_kind` on `graph` under `method` and reports the resulting
/// test accuracy.
///
/// # Errors
///
/// Propagates graph and training errors.
pub fn evaluate_compression(
    graph: &Graph,
    model_kind: ModelKind,
    method: CompressionMethod,
    epochs: usize,
    seed: u64,
) -> Result<CompressionOutcome> {
    let train_graph = match method {
        CompressionMethod::RandomPruning { ratio } => random_prune(graph, ratio, seed)?,
        CompressionMethod::Sgcn { ratio } => importance_prune(graph, ratio)?,
        _ => graph.clone(),
    };
    let mut model = GnnModel::new(ModelConfig::for_kind(model_kind, &train_graph), seed)?;
    Trainer::new(TrainConfig {
        epochs,
        ..TrainConfig::default()
    })
    .fit(&mut model, &train_graph)?;

    let (test_accuracy, quantized) = match method {
        CompressionMethod::Qat => {
            let logits = quantized_forward(&model, &train_graph)?;
            (
                gcod_nn::metrics::masked_accuracy(
                    &logits,
                    train_graph.labels(),
                    train_graph.test_mask(),
                ),
                true,
            )
        }
        CompressionMethod::DegreeQuant => {
            // Full-precision logits for the protected hubs, INT8 elsewhere.
            let fp32 = model.forward(&train_graph)?;
            let int8 = quantized_forward(&model, &train_graph)?;
            let degrees = train_graph.degrees();
            let mut sorted = degrees.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let cutoff = sorted[(sorted.len() / 10).min(sorted.len().saturating_sub(1))];
            let predictions_mix = mix_logits(&fp32, &int8, &degrees, cutoff);
            (
                gcod_nn::metrics::masked_accuracy(
                    &predictions_mix,
                    train_graph.labels(),
                    train_graph.test_mask(),
                ),
                true,
            )
        }
        _ => {
            let logits = model.forward(&train_graph)?;
            (
                gcod_nn::metrics::masked_accuracy(
                    &logits,
                    train_graph.labels(),
                    train_graph.test_mask(),
                ),
                false,
            )
        }
    };

    Ok(CompressionOutcome {
        method: method.name().to_string(),
        test_accuracy,
        edges_retained: train_graph.num_edges(),
        quantized,
    })
}

fn mix_logits(
    fp32: &gcod_nn::Tensor,
    int8: &gcod_nn::Tensor,
    degrees: &[usize],
    cutoff: usize,
) -> gcod_nn::Tensor {
    let mut out = int8.clone();
    for (node, &d) in degrees.iter().enumerate() {
        if d >= cutoff {
            for c in 0..out.cols() {
                out.set(node, c, fp32.get(node, c));
            }
        }
    }
    out
}

/// Removes `ratio` of the undirected edges uniformly at random.
fn random_prune(graph: &Graph, ratio: f64, seed: u64) -> Result<Graph> {
    let adj = graph.adjacency();
    let mut rng = StdRng::seed_from_u64(seed);
    let undirected: Vec<(usize, usize)> = adj
        .iter()
        .filter(|&(r, c, _)| r < c)
        .map(|(r, c, _)| (r, c))
        .collect();
    let keep_flags: std::collections::HashMap<(usize, usize), bool> = undirected
        .iter()
        .map(|&e| (e, rng.gen::<f64>() >= ratio))
        .collect();
    rebuild(graph, |r, c| {
        let key = (r.min(c), r.max(c));
        keep_flags.get(&key).copied().unwrap_or(true)
    })
}

/// Removes the `ratio` lowest-importance undirected edges, importance being
/// the symmetric-normalized weight `1/sqrt(d_i d_j)`.
fn importance_prune(graph: &Graph, ratio: f64) -> Result<Graph> {
    let adj = graph.adjacency();
    let degrees = adj.row_degrees();
    let mut edges: Vec<(usize, usize, f64)> = adj
        .iter()
        .filter(|&(r, c, _)| r < c)
        .map(|(r, c, _)| {
            let importance =
                1.0 / ((degrees[r].max(1) as f64).sqrt() * (degrees[c].max(1) as f64).sqrt());
            (r, c, importance)
        })
        .collect();
    edges.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"));
    let remove = (edges.len() as f64 * ratio) as usize;
    let victims: std::collections::HashSet<(usize, usize)> =
        edges.iter().take(remove).map(|&(r, c, _)| (r, c)).collect();
    rebuild(graph, |r, c| !victims.contains(&(r.min(c), r.max(c))))
}

fn rebuild<F: Fn(usize, usize) -> bool>(graph: &Graph, keep: F) -> Result<Graph> {
    let adj = graph.adjacency();
    let mut coo = CooMatrix::with_capacity(adj.rows(), adj.cols(), adj.nnz());
    for (r, c, v) in adj.iter() {
        if keep(r, c) {
            coo.push(r, c, v)?;
        }
    }
    Ok(graph.with_adjacency(coo.to_csr())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn graph() -> Graph {
        GraphGenerator::new(71)
            .generate(&DatasetProfile::custom("cmp", 150, 500, 12, 4))
            .unwrap()
    }

    #[test]
    fn random_pruning_removes_roughly_the_requested_fraction() {
        let g = graph();
        let pruned = random_prune(&g, 0.3, 0).unwrap();
        let kept = pruned.num_edges() as f64 / g.num_edges() as f64;
        assert!(kept > 0.55 && kept < 0.85, "kept fraction {kept}");
        // Symmetry preserved.
        for (r, c, v) in pruned.adjacency().iter() {
            assert_eq!(pruned.adjacency().get(c, r), v);
        }
    }

    #[test]
    fn importance_pruning_removes_hub_to_hub_edges_first() {
        let g = graph();
        let pruned = importance_prune(&g, 0.2).unwrap();
        assert!(pruned.num_edges() < g.num_edges());
        let degrees = g.degrees();
        // Mean endpoint degree of removed edges should exceed that of kept
        // edges (hub-hub edges are "least important" under the SGCN score).
        let kept: std::collections::HashSet<(usize, usize)> = pruned
            .adjacency()
            .iter()
            .filter(|&(r, c, _)| r < c)
            .map(|(r, c, _)| (r, c))
            .collect();
        let mut removed_deg = Vec::new();
        let mut kept_deg = Vec::new();
        for (r, c, _) in g.adjacency().iter().filter(|&(r, c, _)| r < c) {
            let d = degrees[r] + degrees[c];
            if kept.contains(&(r, c)) {
                kept_deg.push(d as f64);
            } else {
                removed_deg.push(d as f64);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&removed_deg) > mean(&kept_deg));
    }

    #[test]
    fn table7_ordering_gcod_vs_random_pruning() {
        // Smart methods should beat aggressive random pruning on accuracy.
        let g = graph();
        let epochs = 30;
        let vanilla =
            evaluate_compression(&g, ModelKind::Gcn, CompressionMethod::Vanilla, epochs, 0)
                .unwrap();
        let rp = evaluate_compression(
            &g,
            ModelKind::Gcn,
            CompressionMethod::RandomPruning { ratio: 0.5 },
            epochs,
            0,
        )
        .unwrap();
        assert!(
            vanilla.test_accuracy >= rp.test_accuracy - 0.05,
            "vanilla {} vs RP {}",
            vanilla.test_accuracy,
            rp.test_accuracy
        );
        assert!(rp.edges_retained < vanilla.edges_retained);
    }

    #[test]
    fn quantized_methods_report_quantized_flag() {
        let g = graph();
        let qat = evaluate_compression(&g, ModelKind::Gcn, CompressionMethod::Qat, 15, 0).unwrap();
        assert!(qat.quantized);
        let dq = evaluate_compression(&g, ModelKind::Gcn, CompressionMethod::DegreeQuant, 15, 0)
            .unwrap();
        assert!(dq.quantized);
        assert_eq!(qat.edges_retained, g.num_edges());
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(CompressionMethod::Vanilla.name(), "vanilla");
        assert_eq!(CompressionMethod::RandomPruning { ratio: 0.1 }.name(), "rp");
        assert_eq!(CompressionMethod::Sgcn { ratio: 0.1 }.name(), "sgcn");
        assert_eq!(CompressionMethod::Qat.name(), "qat");
        assert_eq!(CompressionMethod::DegreeQuant.name(), "degree-quant");
    }
}
