//! Adjacency-matrix visualization (Fig. 4).
//!
//! The paper visualises the adjacency matrices before and after GCoD
//! training, with green lines separating subgraph classes and red lines
//! separating groups. Terminals don't do green and red dots well, so this
//! module renders a density heat-map with ASCII shades plus `|`/`+` rulers at
//! the class and group boundaries, which conveys the same structure (dense
//! diagonal blocks, sparse off-diagonal mass, vacancies after structural
//! pruning).

use crate::SubgraphLayout;
use gcod_graph::{CsrMatrix, PatchGrid};

/// Characters from empty to dense.
const SHADES: [char; 6] = [' ', '.', ':', '+', '#', '@'];

/// Renders an adjacency matrix as an ASCII density map of roughly
/// `resolution × resolution` characters. Pass the layout to draw subgraph
/// boundary rulers; pass `None` for a plain heat-map.
pub fn render_adjacency(
    adj: &CsrMatrix,
    layout: Option<&SubgraphLayout>,
    resolution: usize,
) -> String {
    let n = adj.rows().max(1);
    let resolution = resolution.clamp(4, 160).min(n);
    let cell = n.div_ceil(resolution);
    let grid = PatchGrid::compute(adj, cell);
    let max = grid.max_count().max(1) as f64;

    // Boundary positions (in node space) where a subgraph starts.
    let boundaries: Vec<usize> = layout
        .map(|l| {
            l.subgraphs()
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect()
        })
        .unwrap_or_default();
    let is_boundary = |node: usize| boundaries.iter().any(|&b| b / cell == node / cell && b > 0);

    let mut out = String::with_capacity((grid.grid_rows() + 2) * (grid.grid_cols() + 2));
    for pr in 0..grid.grid_rows() {
        for pc in 0..grid.grid_cols() {
            let count = grid.count(pr, pc) as f64;
            let shade = if count == 0.0 {
                SHADES[0]
            } else {
                let level = ((count / max).sqrt() * (SHADES.len() - 1) as f64).ceil() as usize;
                SHADES[level.clamp(1, SHADES.len() - 1)]
            };
            // Overlay a ruler at subgraph boundaries.
            if is_boundary(pc * cell) && shade == ' ' {
                out.push('|');
            } else {
                out.push(shade);
            }
        }
        out.push('\n');
    }
    out
}

/// Summary line accompanying a Fig. 4 panel: node count, edge count, density
/// and the share of mass on the block diagonal.
pub fn describe_adjacency(adj: &CsrMatrix, layout: &SubgraphLayout) -> String {
    let diag: usize = layout
        .subgraphs()
        .iter()
        .map(|s| adj.block_nnz(s.start, s.start + s.len, s.start, s.start + s.len))
        .sum();
    let frac = if adj.nnz() > 0 {
        diag as f64 / adj.nnz() as f64
    } else {
        0.0
    };
    format!(
        "{} nodes, {} nnz, density {:.5}%, block-diagonal share {:.1}%",
        adj.rows(),
        adj.nnz(),
        adj.density() * 100.0,
        frac * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GcodConfig, SubgraphLayout};
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn setup() -> (gcod_graph::Graph, SubgraphLayout) {
        let g = GraphGenerator::new(61)
            .generate(&DatasetProfile::custom("viz", 200, 800, 8, 4))
            .unwrap();
        let cfg = GcodConfig {
            num_classes: 2,
            num_subgraphs: 6,
            num_groups: 2,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        (layout.apply(&g), layout)
    }

    #[test]
    fn render_produces_requested_resolution() {
        let (g, layout) = setup();
        let art = render_adjacency(g.adjacency(), Some(&layout), 40);
        let lines: Vec<&str> = art.lines().collect();
        assert!(!lines.is_empty());
        assert!(lines.len() <= 41);
        // All rows have equal width.
        let width = lines[0].chars().count();
        assert!(lines.iter().all(|l| l.chars().count() == width));
    }

    #[test]
    fn denser_matrix_renders_darker() {
        let (g, _) = setup();
        let art_sparse = render_adjacency(g.adjacency(), None, 30);
        // A fully dense matrix of the same size.
        let mut coo = gcod_graph::CooMatrix::new(50, 50);
        for r in 0..50 {
            for c in 0..50 {
                if r != c {
                    coo.push(r, c, 1.0).unwrap();
                }
            }
        }
        let art_dense = render_adjacency(&coo.to_csr(), None, 30);
        let darkness = |s: &str| s.chars().filter(|&c| c == '@' || c == '#').count();
        assert!(darkness(&art_dense) > darkness(&art_sparse));
    }

    #[test]
    fn describe_mentions_counts() {
        let (g, layout) = setup();
        let line = describe_adjacency(g.adjacency(), &layout);
        assert!(line.contains("200 nodes"));
        assert!(line.contains("nnz"));
        assert!(line.contains('%'));
    }

    #[test]
    fn render_handles_tiny_matrices() {
        let adj = gcod_graph::CsrMatrix::identity(3);
        let art = render_adjacency(&adj, None, 80);
        assert!(!art.is_empty());
    }
}
