//! GCoD hyper-parameters.

use crate::{GcodError, Result};
use gcod_nn::kernels::KernelKind;
use gcod_nn::quant::Precision;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the GCoD split-and-conquer algorithm.
///
/// The two knobs the paper's ablation sweeps (Sec. VI-C) are the number of
/// degree classes `C` ([`GcodConfig::num_classes`], which equals the number
/// of denser-branch sub-accelerators) and the total number of subgraphs `S`
/// ([`GcodConfig::num_subgraphs`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcodConfig {
    /// Number of degree classes `C` (one hardware chunk per class). The
    /// paper sweeps 1–4 and defaults to 2.
    pub num_classes: usize,
    /// Total number of subgraphs `S` across all classes. The paper sweeps
    /// {8, 12, 16, 20}.
    pub num_subgraphs: usize,
    /// Number of groups `G` the subgraphs are distributed over.
    pub num_groups: usize,
    /// Explicit degree-partition thresholds `\hat d_1 .. \hat d_{C-1}`; when
    /// `None` the thresholds are chosen from degree quantiles so classes are
    /// roughly node-balanced.
    pub degree_thresholds: Option<Vec<usize>>,
    /// Target fraction of edges to prune in the sparsify step (the paper
    /// matches SGCN's 10% without accuracy loss).
    pub prune_ratio: f64,
    /// Weight of the polarization term `L_pola` relative to the sparsity
    /// term when scoring edges.
    pub polarization_weight: f64,
    /// Number of outer sparsify/polarize iterations (the ADMM outer loop;
    /// each iteration prunes a slice of the target ratio and is followed by a
    /// retraining pass in the full pipeline).
    pub tune_iterations: usize,
    /// Patch side length for structural sparsification.
    pub patch_size: usize,
    /// Structural-sparsification threshold η: off-diagonal patches with fewer
    /// non-zeros are removed entirely (the paper uses 10–30).
    pub patch_threshold: u32,
    /// Epochs of GCN pretraining on the partitioned graph (Step 1).
    pub pretrain_epochs: usize,
    /// Epochs of each GCN retraining pass (Steps 2–3).
    pub retrain_epochs: usize,
    /// Enable the early-bird early stopping of Sec. IV-B2: pretraining stops
    /// once the important-edge mask stabilises, cutting training cost.
    pub early_bird: bool,
    /// Early-bird mask-distance threshold (fraction of the edge mask allowed
    /// to change between consecutive checks before training is considered
    /// converged enough to stop).
    pub early_bird_tolerance: f64,
    /// SpMM kernel every GCN trained by the pipeline aggregates with. All
    /// kernels are bit-for-bit identical, so this changes training
    /// wall-clock only — never accuracies, splits or simulated-perf results.
    pub kernel: KernelKind,
    /// Worker lanes every GCN trained by the pipeline runs its parallel
    /// kernels (SpMM and dense GEMM) with: 0 selects the global
    /// `gcod_runtime` pool's lane count (`GCOD_WORKERS` /
    /// `available_parallelism`). Like the kernel, bit-deterministic — worker
    /// count changes wall-clock only.
    pub workers: usize,
    /// Numeric precision every GCN built by the pipeline evaluates with.
    /// Unlike `kernel`/`workers` this DOES change numerics: at
    /// [`Precision::Int8`]/[`Precision::Int16`] inference (`forward`,
    /// accuracy evaluation) runs the integer compute path, while training
    /// gradients always stay f32 (post-training quantization).
    pub precision: Precision,
}

impl Default for GcodConfig {
    fn default() -> Self {
        Self {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            degree_thresholds: None,
            prune_ratio: 0.10,
            polarization_weight: 0.5,
            tune_iterations: 3,
            patch_size: 32,
            patch_threshold: 20,
            pretrain_epochs: 60,
            retrain_epochs: 30,
            early_bird: true,
            early_bird_tolerance: 0.02,
            kernel: KernelKind::default(),
            workers: 0,
            precision: Precision::Fp32,
        }
    }
}

impl GcodConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`GcodError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.num_classes == 0 {
            return Err(GcodError::InvalidConfig {
                context: "num_classes must be at least 1".to_string(),
            });
        }
        if self.num_groups == 0 {
            return Err(GcodError::InvalidConfig {
                context: "num_groups must be at least 1".to_string(),
            });
        }
        if self.num_subgraphs < self.num_classes {
            return Err(GcodError::InvalidConfig {
                context: format!(
                    "num_subgraphs ({}) must be at least num_classes ({})",
                    self.num_subgraphs, self.num_classes
                ),
            });
        }
        if !(0.0..1.0).contains(&self.prune_ratio) {
            return Err(GcodError::InvalidConfig {
                context: format!("prune_ratio {} must lie in [0, 1)", self.prune_ratio),
            });
        }
        if self.tune_iterations == 0 {
            return Err(GcodError::InvalidConfig {
                context: "tune_iterations must be at least 1".to_string(),
            });
        }
        if self.patch_size == 0 {
            return Err(GcodError::InvalidConfig {
                context: "patch_size must be positive".to_string(),
            });
        }
        if let Some(thresholds) = &self.degree_thresholds {
            if thresholds.len() + 1 != self.num_classes {
                return Err(GcodError::InvalidConfig {
                    context: format!(
                        "degree_thresholds needs {} entries for {} classes, got {}",
                        self.num_classes - 1,
                        self.num_classes,
                        thresholds.len()
                    ),
                });
            }
            if thresholds.windows(2).any(|w| w[0] >= w[1]) {
                return Err(GcodError::InvalidConfig {
                    context: "degree_thresholds must be strictly increasing".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Number of subgraphs assigned to each class (evenly split, remainder to
    /// the first classes).
    pub fn subgraphs_per_class(&self) -> Vec<usize> {
        let base = self.num_subgraphs / self.num_classes;
        let extra = self.num_subgraphs % self.num_classes;
        (0..self.num_classes)
            .map(|c| base + usize::from(c < extra))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(GcodConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_zero_classes_and_groups() {
        let cfg = GcodConfig {
            num_classes: 0,
            ..GcodConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = GcodConfig {
            num_groups: 0,
            ..GcodConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_fewer_subgraphs_than_classes() {
        let cfg = GcodConfig {
            num_classes: 4,
            num_subgraphs: 2,
            ..GcodConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_bad_prune_ratio() {
        let cfg = GcodConfig {
            prune_ratio: 1.0,
            ..GcodConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_inconsistent_thresholds() {
        let cfg = GcodConfig {
            num_classes: 3,
            degree_thresholds: Some(vec![5]),
            ..GcodConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = GcodConfig {
            num_classes: 3,
            degree_thresholds: Some(vec![8, 5]),
            ..GcodConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = GcodConfig {
            num_classes: 3,
            degree_thresholds: Some(vec![5, 8]),
            ..GcodConfig::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn subgraphs_per_class_distributes_remainder() {
        let cfg = GcodConfig {
            num_classes: 3,
            num_subgraphs: 8,
            ..GcodConfig::default()
        };
        assert_eq!(cfg.subgraphs_per_class(), vec![3, 3, 2]);
        let total: usize = cfg.subgraphs_per_class().iter().sum();
        assert_eq!(total, 8);
    }
}
