//! Denser/sparser workload extraction.
//!
//! The GCoD accelerator's two branches consume two different views of the
//! tuned adjacency matrix (Fig. 1 and Fig. 6):
//!
//! * the **denser branch** processes the block-diagonal subgraphs, one
//!   hardware chunk per degree class, with COO/dense inputs,
//! * the **sparser branch** processes everything off the block diagonal,
//!   stored in CSC so whole columns can be consumed (and structurally empty
//!   columns skipped).
//!
//! [`SplitWorkload::extract`] performs that split for a reordered, tuned
//! adjacency matrix.

use crate::SubgraphLayout;
use gcod_graph::{CooMatrix, CscMatrix, CsrMatrix};
use serde::{Deserialize, Serialize};

/// One block-diagonal dense block (a subgraph) of the denser workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DenseBlock {
    /// Degree class (= hardware chunk) the block belongs to.
    pub class: usize,
    /// Group the subgraph was assigned to.
    pub group: usize,
    /// First node position of the block.
    pub start: usize,
    /// Number of nodes in the block.
    pub len: usize,
    /// Non-zeros inside the block.
    pub nnz: usize,
}

impl DenseBlock {
    /// Density of the block.
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.nnz as f64 / (self.len * self.len) as f64
        }
    }
}

/// The two-level workload split the accelerator consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SplitWorkload {
    /// Block-diagonal dense blocks (denser branch), in layout order.
    pub blocks: Vec<DenseBlock>,
    /// Off-diagonal remainder (sparser branch), CSC format.
    pub sparser: CscMatrix,
    /// Total non-zeros in the denser branch.
    pub denser_nnz: usize,
    /// Total non-zeros in the sparser branch.
    pub sparser_nnz: usize,
    /// Number of degree classes (hardware chunks).
    pub num_classes: usize,
}

impl SplitWorkload {
    /// Splits a reordered adjacency matrix into denser blocks and the sparser
    /// remainder according to `layout`.
    pub fn extract(adj: &CsrMatrix, layout: &SubgraphLayout) -> Self {
        let n = adj.rows();
        // Map node position -> subgraph index (or MAX).
        let mut block_of = vec![usize::MAX; n];
        for (idx, info) in layout.subgraphs().iter().enumerate() {
            for pos in info.range() {
                if pos < n {
                    block_of[pos] = idx;
                }
            }
        }

        let mut block_nnz = vec![0usize; layout.subgraphs().len()];
        let mut sparser_coo = CooMatrix::with_capacity(n, n, adj.nnz() / 2);
        for (r, c, v) in adj.iter() {
            if block_of[r] != usize::MAX && block_of[r] == block_of[c] {
                block_nnz[block_of[r]] += 1;
            } else {
                sparser_coo
                    .push(r, c, v)
                    .expect("indices already validated by the adjacency matrix");
            }
        }

        let blocks: Vec<DenseBlock> = layout
            .subgraphs()
            .iter()
            .enumerate()
            .map(|(idx, info)| DenseBlock {
                class: info.class,
                group: info.group,
                start: info.start,
                len: info.len,
                nnz: block_nnz[idx],
            })
            .collect();
        let denser_nnz: usize = block_nnz.iter().sum();
        let sparser = sparser_coo.to_csc();
        let sparser_nnz = sparser.nnz();
        Self {
            blocks,
            sparser,
            denser_nnz,
            sparser_nnz,
            num_classes: layout.num_classes(),
        }
    }

    /// Total non-zeros across both branches.
    pub fn total_nnz(&self) -> usize {
        self.denser_nnz + self.sparser_nnz
    }

    /// Fraction of the non-zeros handled by the sparser branch. The paper
    /// quotes around 30% for Cora after GCoD training.
    pub fn sparser_fraction(&self) -> f64 {
        if self.total_nnz() == 0 {
            0.0
        } else {
            self.sparser_nnz as f64 / self.total_nnz() as f64
        }
    }

    /// Blocks belonging to one class (the workload of one hardware chunk).
    pub fn blocks_of_class(&self, class: usize) -> Vec<&DenseBlock> {
        self.blocks.iter().filter(|b| b.class == class).collect()
    }

    /// Non-zeros per class (used for proportional resource allocation in the
    /// accelerator).
    pub fn nnz_per_class(&self) -> Vec<usize> {
        let mut per_class = vec![0usize; self.num_classes];
        for block in &self.blocks {
            per_class[block.class] += block.nnz;
        }
        per_class
    }

    /// Number of structurally empty columns in the sparser branch (skipped
    /// entirely by the hardware).
    pub fn skippable_columns(&self) -> usize {
        self.sparser.empty_columns().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GcodConfig, Polarizer, SubgraphLayout};
    use gcod_graph::{DatasetProfile, Graph, GraphGenerator};

    fn setup() -> (Graph, SubgraphLayout, GcodConfig) {
        let g = GraphGenerator::new(41)
            .generate(&DatasetProfile::custom("wl", 300, 1200, 8, 4))
            .unwrap();
        let cfg = GcodConfig {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        let permuted = layout.apply(&g);
        (permuted, layout, cfg)
    }

    #[test]
    fn split_conserves_every_nonzero() {
        let (g, layout, _) = setup();
        let split = SplitWorkload::extract(g.adjacency(), &layout);
        assert_eq!(split.total_nnz(), g.num_edges());
        assert_eq!(split.blocks.len(), layout.subgraphs().len());
    }

    #[test]
    fn sparser_matrix_excludes_block_diagonal_entries() {
        let (g, layout, _) = setup();
        let split = SplitWorkload::extract(g.adjacency(), &layout);
        for info in layout.subgraphs() {
            for (r, c, _) in split.sparser.iter() {
                let r_in = info.range().contains(&r);
                let c_in = info.range().contains(&c);
                assert!(!(r_in && c_in), "sparser branch holds a diagonal entry");
            }
        }
    }

    #[test]
    fn class_nnz_sums_to_denser_total() {
        let (g, layout, cfg) = setup();
        let split = SplitWorkload::extract(g.adjacency(), &layout);
        let per_class = split.nnz_per_class();
        assert_eq!(per_class.len(), cfg.num_classes);
        assert_eq!(per_class.iter().sum::<usize>(), split.denser_nnz);
        for (class, &class_nnz) in per_class.iter().enumerate().take(cfg.num_classes) {
            let blocks_sum: usize = split.blocks_of_class(class).iter().map(|b| b.nnz).sum();
            assert_eq!(blocks_sum, class_nnz);
        }
    }

    #[test]
    fn polarized_graph_shifts_mass_to_denser_branch() {
        let (g, layout, mut cfg) = setup();
        let before = SplitWorkload::extract(g.adjacency(), &layout);
        cfg.prune_ratio = 0.3;
        cfg.polarization_weight = 1.5;
        let (tuned, _) = Polarizer::new(cfg).tune(g.adjacency(), &layout).unwrap();
        let after = SplitWorkload::extract(&tuned, &layout);
        assert!(
            after.sparser_fraction() <= before.sparser_fraction(),
            "polarization should shrink the sparser branch share: {} -> {}",
            before.sparser_fraction(),
            after.sparser_fraction()
        );
    }

    #[test]
    fn block_density_exceeds_global_density() {
        let (g, layout, _) = setup();
        let split = SplitWorkload::extract(g.adjacency(), &layout);
        let global = g.num_edges() as f64 / (g.num_nodes() as f64 * g.num_nodes() as f64);
        let avg_block: f64 = split.blocks.iter().map(DenseBlock::density).sum::<f64>()
            / split.blocks.len().max(1) as f64;
        assert!(
            avg_block > global,
            "blocks should be denser than the whole matrix ({avg_block} vs {global})"
        );
    }

    #[test]
    fn skippable_columns_counted() {
        let (g, layout, _) = setup();
        let split = SplitWorkload::extract(g.adjacency(), &layout);
        assert!(split.skippable_columns() <= g.num_nodes());
    }
}
