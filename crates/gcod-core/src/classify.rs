//! Step 1a: degree-based subgraph classification.
//!
//! "We cluster nodes with similar degrees into the same class" (Sec. IV-B1).
//! Classes are defined by a degree-partition list `0 = d̂_0 < … < d̂_C = ∞`;
//! node `i` falls into class `c` when `d̂_{c-1} ≤ d_i < d̂_c`. When no explicit
//! thresholds are given, quantiles of the degree distribution are used so the
//! classes are roughly node-balanced (hubs end up in the last class).

use crate::{GcodConfig, Result};
use gcod_graph::CsrMatrix;
use serde::{Deserialize, Serialize};

/// Assignment of every node to a degree class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeClasses {
    thresholds: Vec<usize>,
    class_of: Vec<u32>,
    num_classes: usize,
}

impl DegreeClasses {
    /// Classifies the nodes of `adj` into `config.num_classes` degree
    /// classes.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn compute(adj: &CsrMatrix, config: &GcodConfig) -> Result<Self> {
        config.validate()?;
        let degrees = adj.row_degrees();
        let thresholds = match &config.degree_thresholds {
            Some(t) => t.clone(),
            None => quantile_thresholds(&degrees, config.num_classes),
        };
        let class_of = degrees
            .iter()
            .map(|&d| class_for_degree(d, &thresholds) as u32)
            .collect();
        Ok(Self {
            thresholds,
            class_of,
            num_classes: config.num_classes,
        })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The degree thresholds separating the classes (`C - 1` values).
    pub fn thresholds(&self) -> &[usize] {
        &self.thresholds
    }

    /// Class index of every node.
    pub fn class_of(&self) -> &[u32] {
        &self.class_of
    }

    /// Class index of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn class(&self, node: usize) -> usize {
        self.class_of[node] as usize
    }

    /// Node indices of each class, in ascending node order.
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut members = vec![Vec::new(); self.num_classes];
        for (node, &c) in self.class_of.iter().enumerate() {
            members[c as usize].push(node);
        }
        members
    }

    /// Node count per class.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_classes];
        for &c in &self.class_of {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Degree thresholds taken from quantiles of the degree distribution so the
/// classes hold a similar number of nodes.
fn quantile_thresholds(degrees: &[usize], num_classes: usize) -> Vec<usize> {
    if num_classes <= 1 || degrees.is_empty() {
        return Vec::new();
    }
    let mut sorted = degrees.to_vec();
    sorted.sort_unstable();
    let mut thresholds = Vec::with_capacity(num_classes - 1);
    for c in 1..num_classes {
        let idx = (c * sorted.len()) / num_classes;
        let mut t = sorted[idx.min(sorted.len() - 1)];
        // Thresholds must be strictly increasing; nudge duplicates upward so
        // heavily repeated degrees (very common in power-law graphs) do not
        // collapse two classes into one.
        if let Some(&last) = thresholds.last() {
            if t <= last {
                t = last + 1;
            }
        }
        thresholds.push(t);
    }
    thresholds
}

fn class_for_degree(degree: usize, thresholds: &[usize]) -> usize {
    for (c, &t) in thresholds.iter().enumerate() {
        if degree < t {
            return c;
        }
    }
    thresholds.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{CooMatrix, DatasetProfile, GraphGenerator};

    fn hub_graph() -> CsrMatrix {
        // Node 0 is a hub with degree 6, the rest have degree 1 or 2.
        let mut coo = CooMatrix::new(8, 8);
        for i in 1..7 {
            coo.push(0, i, 1.0).unwrap();
            coo.push(i, 0, 1.0).unwrap();
        }
        coo.push(6, 7, 1.0).unwrap();
        coo.push(7, 6, 1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn explicit_thresholds_are_respected() {
        let adj = hub_graph();
        let config = GcodConfig {
            num_classes: 2,
            degree_thresholds: Some(vec![3]),
            ..GcodConfig::default()
        };
        let classes = DegreeClasses::compute(&adj, &config).unwrap();
        assert_eq!(classes.class(0), 1, "the hub has degree 6 >= 3");
        assert_eq!(classes.class(1), 0, "leaf nodes fall below the threshold");
        assert_eq!(classes.num_classes(), 2);
    }

    #[test]
    fn quantile_thresholds_balance_class_sizes() {
        let g = GraphGenerator::new(2)
            .generate(&DatasetProfile::custom("c", 300, 900, 4, 4))
            .unwrap();
        let config = GcodConfig {
            num_classes: 3,
            ..GcodConfig::default()
        };
        let classes = DegreeClasses::compute(g.adjacency(), &config).unwrap();
        let sizes = classes.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 300);
        // No class should be empty and no class should dominate entirely.
        assert!(sizes.iter().all(|&s| s > 0), "sizes {sizes:?}");
        assert!(*sizes.iter().max().unwrap() < 280, "sizes {sizes:?}");
    }

    #[test]
    fn higher_class_means_higher_degree() {
        let g = GraphGenerator::new(3)
            .generate(&DatasetProfile::custom("d", 200, 800, 4, 4))
            .unwrap();
        let config = GcodConfig {
            num_classes: 2,
            ..GcodConfig::default()
        };
        let classes = DegreeClasses::compute(g.adjacency(), &config).unwrap();
        let degrees = g.degrees();
        let avg = |class: usize| {
            let members: Vec<usize> = classes.members().into_iter().nth(class).unwrap();
            members.iter().map(|&m| degrees[m]).sum::<usize>() as f64 / members.len().max(1) as f64
        };
        assert!(avg(1) > avg(0), "class 1 should contain the hubs");
    }

    #[test]
    fn single_class_puts_everything_together() {
        let adj = hub_graph();
        let config = GcodConfig {
            num_classes: 1,
            num_subgraphs: 2,
            num_groups: 1,
            ..GcodConfig::default()
        };
        let classes = DegreeClasses::compute(&adj, &config).unwrap();
        assert!(classes.class_of().iter().all(|&c| c == 0));
        assert!(classes.thresholds().is_empty());
    }

    #[test]
    fn members_partition_the_nodes() {
        let adj = hub_graph();
        let config = GcodConfig {
            num_classes: 2,
            ..GcodConfig::default()
        };
        let classes = DegreeClasses::compute(&adj, &config).unwrap();
        let total: usize = classes.members().iter().map(Vec::len).sum();
        assert_eq!(total, adj.rows());
    }
}
