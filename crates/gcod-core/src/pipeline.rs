//! The three-step GCoD training pipeline (Fig. 3).
//!
//! 1. **Pretrain** the GCN on the partitioned (reordered) graph — optionally
//!    with early-bird early stopping (Sec. IV-B2),
//! 2. **Tune** the graph: sparsify + polarize, then retrain to recover
//!    accuracy,
//! 3. **Structurally sparsify** the adjacency patches, then retrain again.
//!
//! The pipeline returns everything downstream consumers need: the tuned
//! graph, the layout, the denser/sparser workload split, per-step reports and
//! the accuracy before/after (Table VII's GCoD rows), plus a training-cost
//! estimate in epoch-equivalents (the paper reports 0.7×–1.1× the standard
//! training cost).

use crate::polarize::{PolarizeReport, Polarizer};
use crate::structural::{structural_sparsify, StructuralReport};
use crate::workload::SplitWorkload;
use crate::{GcodConfig, Result, SubgraphLayout};
use gcod_graph::Graph;
use gcod_nn::models::{GnnModel, ModelConfig, ModelKind};
use gcod_nn::train::{TrainConfig, Trainer};
use serde::{Deserialize, Serialize};

/// Training-cost accounting in epoch-equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainingCost {
    /// Epochs spent in Step 1 (pretraining).
    pub pretrain_epochs: usize,
    /// Epochs spent retraining after Step 2.
    pub tune_retrain_epochs: usize,
    /// Epochs spent retraining after Step 3.
    pub structural_retrain_epochs: usize,
    /// Epochs a standard (non-GCoD) training run would use, for the relative
    /// overhead comparison.
    pub standard_epochs: usize,
}

impl TrainingCost {
    /// Total GCoD epochs.
    pub fn total(&self) -> usize {
        self.pretrain_epochs + self.tune_retrain_epochs + self.structural_retrain_epochs
    }

    /// GCoD training cost relative to standard training (the paper reports
    /// 0.7×–1.1×).
    pub fn relative_overhead(&self) -> f64 {
        if self.standard_epochs == 0 {
            0.0
        } else {
            self.total() as f64 / self.standard_epochs as f64
        }
    }
}

/// Everything produced by a GCoD training run.
#[derive(Debug, Clone)]
pub struct GcodResult {
    /// The reordered, sparsified, polarized graph (node order = layout
    /// order).
    pub graph: Graph,
    /// The split-and-conquer layout (classes, subgraphs, groups,
    /// permutation).
    pub layout: SubgraphLayout,
    /// The denser/sparser workload split of the final adjacency matrix.
    pub split: SplitWorkload,
    /// The trained model (on the tuned graph).
    pub model: GnnModel,
    /// Test accuracy of the baseline model trained on the untouched graph.
    pub baseline_accuracy: f64,
    /// Test accuracy after the full GCoD pipeline.
    pub gcod_accuracy: f64,
    /// Report of the sparsify + polarize step.
    pub polarize_report: PolarizeReport,
    /// Report of the structural sparsification step.
    pub structural_report: StructuralReport,
    /// Training-cost accounting.
    pub training_cost: TrainingCost,
    /// Epoch at which the early-bird criterion fired (None when disabled or
    /// never triggered).
    pub early_bird_epoch: Option<usize>,
}

impl GcodResult {
    /// Overall edge reduction relative to the original graph.
    pub fn total_prune_ratio(&self) -> f64 {
        let before = self.polarize_report.nnz_before;
        let after = self.structural_report.nnz_after;
        if before == 0 {
            0.0
        } else {
            1.0 - after as f64 / before as f64
        }
    }

    /// Accuracy delta of GCoD over the vanilla baseline (positive = GCoD is
    /// better, which Table VII reports for every dataset).
    pub fn accuracy_delta(&self) -> f64 {
        self.gcod_accuracy - self.baseline_accuracy
    }
}

/// Orchestrates the three-step GCoD training flow.
#[derive(Debug, Clone)]
pub struct GcodPipeline {
    config: GcodConfig,
}

impl GcodPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: GcodConfig) -> Self {
        Self { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &GcodConfig {
        &self.config
    }

    /// Runs the full pipeline for `model_kind` on `graph`.
    ///
    /// # Errors
    ///
    /// Propagates configuration, partitioning and training errors.
    pub fn run(&self, graph: &Graph, model_kind: ModelKind, seed: u64) -> Result<GcodResult> {
        self.config.validate()?;

        // Baseline: standard training on the untouched graph, used for the
        // accuracy comparison and the relative-cost accounting.
        let standard_epochs = self.config.pretrain_epochs + 2 * self.config.retrain_epochs;
        let mut baseline_model = GnnModel::new(ModelConfig::for_kind(model_kind, graph), seed)?
            .with_kernel(self.config.kernel)
            .with_workers(self.config.workers)
            .with_precision(self.config.precision);
        let baseline_report = Trainer::new(TrainConfig {
            epochs: standard_epochs,
            ..TrainConfig::default()
        })
        .fit(&mut baseline_model, graph)?;

        // Step 1: partition + reorder, then pretrain on the partitioned graph.
        let layout = SubgraphLayout::build(graph, &self.config, seed)?;
        let reordered = layout.apply(graph);
        let mut model = GnnModel::new(ModelConfig::for_kind(model_kind, &reordered), seed)?
            .with_kernel(self.config.kernel)
            .with_workers(self.config.workers)
            .with_precision(self.config.precision);
        let (pretrain_epochs, early_bird_epoch) = self.pretrain(&mut model, &reordered, seed)?;

        // Step 2: sparsify + polarize the adjacency, retrain to recover.
        let polarizer = Polarizer::new(self.config.clone());
        let (tuned_adj, polarize_report) = polarizer.tune(reordered.adjacency(), &layout)?;
        let tuned_graph = reordered.with_adjacency(tuned_adj)?;
        Trainer::new(TrainConfig {
            epochs: self.config.retrain_epochs,
            ..TrainConfig::default()
        })
        .fit(&mut model, &tuned_graph)?;

        // Step 3: structural sparsification, retrain again.
        let (structural_adj, structural_report) = structural_sparsify(
            tuned_graph.adjacency(),
            &layout,
            self.config.patch_size,
            self.config.patch_threshold,
        );
        let final_graph = tuned_graph.with_adjacency(structural_adj)?;
        let final_report = Trainer::new(TrainConfig {
            epochs: self.config.retrain_epochs,
            ..TrainConfig::default()
        })
        .fit(&mut model, &final_graph)?;

        let split = SplitWorkload::extract(final_graph.adjacency(), &layout);
        Ok(GcodResult {
            graph: final_graph,
            layout,
            split,
            model,
            baseline_accuracy: baseline_report.final_test_accuracy,
            gcod_accuracy: final_report.final_test_accuracy,
            polarize_report,
            structural_report,
            training_cost: TrainingCost {
                pretrain_epochs,
                tune_retrain_epochs: self.config.retrain_epochs,
                structural_retrain_epochs: self.config.retrain_epochs,
                standard_epochs,
            },
            early_bird_epoch,
        })
    }

    /// Step 1 pretraining with optional early-bird stopping.
    ///
    /// The early-bird criterion of Sec. IV-B2 watches the set of "important"
    /// connections; when that mask stops changing between checks the winning
    /// subnetwork has emerged and pretraining stops. The importance mask here
    /// is the top-half of edges ranked by the trained model's first-layer
    /// feature agreement — a cheap proxy with the same fixed-point behaviour.
    fn pretrain(
        &self,
        model: &mut GnnModel,
        graph: &Graph,
        _seed: u64,
    ) -> Result<(usize, Option<usize>)> {
        if !self.config.early_bird {
            Trainer::new(TrainConfig {
                epochs: self.config.pretrain_epochs,
                ..TrainConfig::default()
            })
            .fit(model, graph)?;
            return Ok((self.config.pretrain_epochs, None));
        }
        // Train in slices, checking mask drift between consecutive slices.
        let slice = (self.config.pretrain_epochs / 5).max(1);
        let trainer = Trainer::new(TrainConfig {
            epochs: slice,
            ..TrainConfig::default()
        });
        let mut previous_mask: Option<Vec<bool>> = None;
        let mut epochs_run = 0usize;
        let mut fired_at = None;
        while epochs_run < self.config.pretrain_epochs {
            trainer.fit(model, graph)?;
            epochs_run += slice;
            let mask = important_edge_mask(model, graph)?;
            if let Some(prev) = &previous_mask {
                let changed = prev.iter().zip(&mask).filter(|(a, b)| a != b).count();
                let drift = changed as f64 / mask.len().max(1) as f64;
                if drift <= self.config.early_bird_tolerance {
                    fired_at = Some(epochs_run);
                    break;
                }
            }
            previous_mask = Some(mask);
        }
        Ok((epochs_run, fired_at))
    }
}

/// Boolean mask over the undirected edges marking the top-50% by endpoint
/// logit agreement under the current model. Used only for the early-bird
/// drift criterion.
fn important_edge_mask(model: &GnnModel, graph: &Graph) -> Result<Vec<bool>> {
    let logits = model.forward(graph)?;
    let predictions = logits.argmax_rows();
    let mut scores: Vec<(usize, f64)> = Vec::new();
    let mut idx = 0usize;
    for (r, c, _) in graph.adjacency().iter() {
        if r < c {
            // Edges joining nodes the model currently assigns to the same
            // class are the ones graph tuning would keep.
            let score = if predictions[r] == predictions[c] {
                1.0
            } else {
                0.0
            };
            scores.push((idx, score));
            idx += 1;
        }
    }
    let keep = scores.len() / 2;
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].1.partial_cmp(&scores[a].1).expect("finite"));
    let mut mask = vec![false; scores.len()];
    for &i in order.iter().take(keep) {
        mask[i] = true;
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn graph() -> Graph {
        GraphGenerator::new(51)
            .generate(&DatasetProfile::custom("pipe", 200, 700, 16, 4))
            .unwrap()
    }

    fn fast_config() -> GcodConfig {
        GcodConfig {
            num_classes: 2,
            num_subgraphs: 6,
            num_groups: 2,
            pretrain_epochs: 15,
            retrain_epochs: 10,
            prune_ratio: 0.1,
            patch_size: 16,
            patch_threshold: 6,
            ..GcodConfig::default()
        }
    }

    #[test]
    fn full_pipeline_produces_consistent_result() {
        let g = graph();
        let result = GcodPipeline::new(fast_config())
            .run(&g, ModelKind::Gcn, 0)
            .unwrap();
        // The tuned graph must have fewer or equal edges.
        assert!(result.graph.num_edges() <= g.num_edges());
        assert!(result.total_prune_ratio() >= 0.0);
        // The workload split covers the whole tuned adjacency.
        assert_eq!(result.split.total_nnz(), result.graph.num_edges());
        // Reports chain together: structural step starts from the polarize output.
        assert_eq!(
            result.structural_report.nnz_before,
            result.polarize_report.nnz_after
        );
    }

    #[test]
    fn accuracy_stays_close_to_baseline() {
        let g = graph();
        let result = GcodPipeline::new(fast_config())
            .run(&g, ModelKind::Gcn, 1)
            .unwrap();
        // Table VII: GCoD matches or improves accuracy. On tiny synthetic
        // graphs we allow a modest drop but no collapse.
        assert!(
            result.gcod_accuracy >= result.baseline_accuracy - 0.15,
            "GCoD {} vs baseline {}",
            result.gcod_accuracy,
            result.baseline_accuracy
        );
        assert!(result.gcod_accuracy > 0.3);
    }

    #[test]
    fn early_bird_reduces_pretraining_epochs() {
        let g = graph();
        let mut cfg = fast_config();
        cfg.pretrain_epochs = 40;
        cfg.early_bird = true;
        cfg.early_bird_tolerance = 0.2; // generous so it fires on a tiny graph
        let with_eb = GcodPipeline::new(cfg.clone())
            .run(&g, ModelKind::Gcn, 2)
            .unwrap();
        cfg.early_bird = false;
        let without = GcodPipeline::new(cfg).run(&g, ModelKind::Gcn, 2).unwrap();
        assert!(
            with_eb.training_cost.pretrain_epochs <= without.training_cost.pretrain_epochs,
            "early bird should not train longer"
        );
        assert!(without.early_bird_epoch.is_none());
    }

    #[test]
    fn training_cost_is_comparable_to_standard() {
        let g = graph();
        let result = GcodPipeline::new(fast_config())
            .run(&g, ModelKind::Gcn, 3)
            .unwrap();
        let overhead = result.training_cost.relative_overhead();
        assert!(
            overhead > 0.3 && overhead < 1.5,
            "relative overhead {overhead} outside the plausible band"
        );
        assert_eq!(
            result.training_cost.total(),
            result.training_cost.pretrain_epochs
                + result.training_cost.tune_retrain_epochs
                + result.training_cost.structural_retrain_epochs
        );
    }

    #[test]
    fn kernel_choice_does_not_change_pipeline_results() {
        let g = graph();
        let run_with = |kernel| {
            let cfg = GcodConfig {
                kernel,
                ..fast_config()
            };
            GcodPipeline::new(cfg).run(&g, ModelKind::Gcn, 7).unwrap()
        };
        let naive = run_with(gcod_nn::kernels::KernelKind::NaiveCsr);
        let parallel = run_with(gcod_nn::kernels::KernelKind::ParallelCsr);
        assert_eq!(naive.baseline_accuracy, parallel.baseline_accuracy);
        assert_eq!(naive.gcod_accuracy, parallel.gcod_accuracy);
        assert_eq!(naive.split.total_nnz(), parallel.split.total_nnz());
        assert_eq!(naive.graph.num_edges(), parallel.graph.num_edges());
    }

    #[test]
    fn worker_count_does_not_change_pipeline_results() {
        let g = graph();
        let run_with = |workers| {
            let cfg = GcodConfig {
                workers,
                kernel: gcod_nn::kernels::KernelKind::ParallelCsr,
                ..fast_config()
            };
            GcodPipeline::new(cfg).run(&g, ModelKind::Gcn, 9).unwrap()
        };
        let one = run_with(1);
        let two = run_with(2);
        let auto = run_with(0);
        assert_eq!(one.baseline_accuracy, two.baseline_accuracy);
        assert_eq!(one.gcod_accuracy, two.gcod_accuracy);
        assert_eq!(one.gcod_accuracy, auto.gcod_accuracy);
        assert_eq!(one.split.total_nnz(), auto.split.total_nnz());
        assert_eq!(one.graph.num_edges(), two.graph.num_edges());
    }

    #[test]
    fn pipeline_rejects_invalid_config() {
        let g = graph();
        let cfg = GcodConfig {
            num_classes: 0,
            ..fast_config()
        };
        assert!(GcodPipeline::new(cfg).run(&g, ModelKind::Gcn, 0).is_err());
    }

    #[test]
    fn works_for_graphsage_too() {
        let g = graph();
        let result = GcodPipeline::new(fast_config())
            .run(&g, ModelKind::GraphSage, 4)
            .unwrap();
        assert!(result.gcod_accuracy > 0.25);
    }
}
