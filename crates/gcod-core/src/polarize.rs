//! Step 2: sparsify and polarize graph tuning.
//!
//! The paper minimises `L_graph(A) = L_GCN(A) + L_SP(A) + L_pola(A)` with
//! ADMM, where `L_SP` drives the adjacency toward a target pruning ratio and
//! `L_pola = 1/M · Σ |i − j|` pulls the surviving non-zeros toward the
//! diagonal (i.e. into the block-diagonal subgraphs created by the layout).
//!
//! This reproduction replaces the ADMM solver with an equivalent
//! projection-based scheme: every outer iteration scores each edge with
//!
//! * a **task-importance proxy** — the symmetric-normalized weight
//!   `1/√(d_i d_j)`, which is the magnitude the GCN actually multiplies with
//!   and which the SGCN-style sparsifiers use as their primary signal,
//! * a **polarization penalty** proportional to the (normalized) distance of
//!   the entry from the block diagonal of the current layout, and
//!
//! then removes the lowest-scoring slice of edges (the projection step of
//! ADMM onto the sparsity constraint). Symmetry is preserved by scoring and
//! pruning undirected edges as units. The observable outcome matches the
//! paper's: the target ratio of edges disappears, and the ones that go first
//! are the far-off-diagonal ones, polarizing the matrix into denser diagonal
//! blocks plus a lighter off-diagonal remainder.

use crate::{GcodConfig, Result, SubgraphLayout};
use gcod_graph::{CooMatrix, CsrMatrix};
use serde::{Deserialize, Serialize};

/// Outcome summary of the sparsify + polarize step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolarizeReport {
    /// Directed non-zeros before tuning.
    pub nnz_before: usize,
    /// Directed non-zeros after tuning.
    pub nnz_after: usize,
    /// Fraction of edges removed.
    pub achieved_prune_ratio: f64,
    /// Fraction of the remaining non-zeros that lie inside the block-diagonal
    /// subgraphs before tuning.
    pub diagonal_fraction_before: f64,
    /// Same fraction after tuning (polarization pushes this up).
    pub diagonal_fraction_after: f64,
    /// Mean normalized off-diagonal distance of the non-zeros before tuning
    /// (the `L_pola` value, Eq. 4).
    pub polarization_loss_before: f64,
    /// `L_pola` after tuning.
    pub polarization_loss_after: f64,
    /// Number of outer iterations executed.
    pub iterations: usize,
}

/// The sparsify + polarize optimiser.
#[derive(Debug, Clone)]
pub struct Polarizer {
    config: GcodConfig,
}

impl Polarizer {
    /// Creates a polarizer with the given GCoD configuration.
    pub fn new(config: GcodConfig) -> Self {
        Self { config }
    }

    /// Tunes the (already reordered) adjacency matrix: prunes
    /// `config.prune_ratio` of the undirected edges, preferring to remove
    /// far-off-diagonal ones, over `config.tune_iterations` projection steps.
    ///
    /// Returns the tuned matrix and a report. The input matrix must be in the
    /// layout's node order (i.e. already permuted).
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn tune(
        &self,
        adj: &CsrMatrix,
        layout: &SubgraphLayout,
    ) -> Result<(CsrMatrix, PolarizeReport)> {
        self.config.validate()?;
        let n = adj.rows();
        let block_of = block_index(n, layout);
        let degrees = adj.row_degrees();

        let nnz_before = adj.nnz();
        let diag_before = diagonal_fraction(adj, &block_of);
        let pola_before = polarization_loss(adj);

        // Collect undirected edges (i < j) with their scores.
        let mut current = adj.clone();
        let total_undirected = undirected_edges(adj).len();
        let to_remove_total = (total_undirected as f64 * self.config.prune_ratio).floor() as usize;
        let iterations = self.config.tune_iterations;
        let mut removed = 0usize;

        for iter in 0..iterations {
            let mut edges = undirected_edges(&current);
            if edges.is_empty() {
                break;
            }
            // Score every undirected edge; lower score = pruned first.
            for edge in &mut edges {
                let (i, j) = (edge.0, edge.1);
                let importance =
                    1.0 / ((degrees[i].max(1) as f64).sqrt() * (degrees[j].max(1) as f64).sqrt());
                let cross_block = if block_of[i] == block_of[j] { 0.0 } else { 1.0 };
                let distance = i.abs_diff(j) as f64 / n.max(1) as f64;
                edge.3 =
                    importance - self.config.polarization_weight * (cross_block * 0.5 + distance);
            }
            // How many undirected edges to remove this iteration (even split of
            // the total budget across iterations, remainder in the last one).
            let budget = if iter + 1 == iterations {
                to_remove_total.saturating_sub(removed)
            } else {
                to_remove_total / iterations
            };
            if budget == 0 {
                continue;
            }
            edges.sort_by(|a, b| a.3.partial_cmp(&b.3).expect("scores are finite"));
            let victims: std::collections::HashSet<(usize, usize)> = edges
                .iter()
                .take(budget)
                .map(|&(i, j, _, _)| (i, j))
                .collect();
            removed += victims.len();
            let mut coo = CooMatrix::with_capacity(n, n, current.nnz());
            for (r, c, v) in current.iter() {
                let key = (r.min(c), r.max(c));
                if !victims.contains(&key) {
                    coo.push(r, c, v).expect("indices already valid");
                }
            }
            current = coo.to_csr();
        }

        let report = PolarizeReport {
            nnz_before,
            nnz_after: current.nnz(),
            achieved_prune_ratio: if nnz_before > 0 {
                1.0 - current.nnz() as f64 / nnz_before as f64
            } else {
                0.0
            },
            diagonal_fraction_before: diag_before,
            diagonal_fraction_after: diagonal_fraction(&current, &block_of),
            polarization_loss_before: pola_before,
            polarization_loss_after: polarization_loss(&current),
            iterations,
        };
        Ok((current, report))
    }
}

/// Subgraph-block index of every node position (usize::MAX for positions not
/// covered by any subgraph, which cannot happen for a complete layout).
fn block_index(n: usize, layout: &SubgraphLayout) -> Vec<usize> {
    let mut block_of = vec![usize::MAX; n];
    for (idx, info) in layout.subgraphs().iter().enumerate() {
        for pos in info.range() {
            if pos < n {
                block_of[pos] = idx;
            }
        }
    }
    block_of
}

/// Fraction of non-zeros whose endpoints share a subgraph block.
fn diagonal_fraction(adj: &CsrMatrix, block_of: &[usize]) -> f64 {
    if adj.nnz() == 0 {
        return 0.0;
    }
    let intra = adj
        .iter()
        .filter(|&(r, c, _)| block_of[r] != usize::MAX && block_of[r] == block_of[c])
        .count();
    intra as f64 / adj.nnz() as f64
}

/// `L_pola = 1/M · Σ |i − j|`, normalized by the matrix dimension so values
/// are comparable across graph sizes.
fn polarization_loss(adj: &CsrMatrix) -> f64 {
    if adj.nnz() == 0 {
        return 0.0;
    }
    let n = adj.rows().max(1) as f64;
    let total: f64 = adj.iter().map(|(r, c, _)| r.abs_diff(c) as f64).sum();
    total / (adj.nnz() as f64 * n)
}

/// Undirected edge list `(i, j, value, score)` with `i < j`.
fn undirected_edges(adj: &CsrMatrix) -> Vec<(usize, usize, f32, f64)> {
    adj.iter()
        .filter(|&(r, c, _)| r < c)
        .map(|(r, c, v)| (r, c, v, 0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SubgraphLayout;
    use gcod_graph::{DatasetProfile, Graph, GraphGenerator};

    fn setup() -> (Graph, SubgraphLayout, GcodConfig) {
        let g = GraphGenerator::new(23)
            .generate(&DatasetProfile::custom("pol", 250, 1000, 8, 4))
            .unwrap();
        let cfg = GcodConfig {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            prune_ratio: 0.10,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        let permuted = layout.apply(&g);
        (permuted, layout, cfg)
    }

    #[test]
    fn prunes_close_to_the_target_ratio() {
        let (g, layout, cfg) = setup();
        let (tuned, report) = Polarizer::new(cfg.clone())
            .tune(g.adjacency(), &layout)
            .unwrap();
        assert!(report.achieved_prune_ratio >= cfg.prune_ratio * 0.8);
        assert!(report.achieved_prune_ratio <= cfg.prune_ratio * 1.2 + 0.01);
        assert_eq!(tuned.nnz(), report.nnz_after);
        assert!(tuned.nnz() < g.num_edges());
    }

    #[test]
    fn result_stays_symmetric() {
        let (g, layout, cfg) = setup();
        let (tuned, _) = Polarizer::new(cfg).tune(g.adjacency(), &layout).unwrap();
        for (r, c, v) in tuned.iter() {
            assert_eq!(tuned.get(c, r), v, "asymmetric after pruning at ({r},{c})");
        }
    }

    #[test]
    fn polarization_improves_diagonal_fraction() {
        let (g, layout, mut cfg) = setup();
        cfg.prune_ratio = 0.3;
        cfg.polarization_weight = 1.0;
        let (_, report) = Polarizer::new(cfg).tune(g.adjacency(), &layout).unwrap();
        assert!(
            report.diagonal_fraction_after >= report.diagonal_fraction_before,
            "diagonal fraction fell: {} -> {}",
            report.diagonal_fraction_before,
            report.diagonal_fraction_after
        );
        assert!(
            report.polarization_loss_after <= report.polarization_loss_before + 1e-9,
            "L_pola increased"
        );
    }

    #[test]
    fn zero_prune_ratio_keeps_everything() {
        let (g, layout, mut cfg) = setup();
        cfg.prune_ratio = 0.0;
        let (tuned, report) = Polarizer::new(cfg).tune(g.adjacency(), &layout).unwrap();
        assert_eq!(tuned.nnz(), g.num_edges());
        assert_eq!(report.achieved_prune_ratio, 0.0);
    }

    #[test]
    fn heavier_polarization_weight_removes_more_cross_block_edges() {
        let (g, layout, cfg) = setup();
        let run = |weight: f64| {
            let mut c = cfg.clone();
            c.prune_ratio = 0.3;
            c.polarization_weight = weight;
            let (_, report) = Polarizer::new(c).tune(g.adjacency(), &layout).unwrap();
            report.diagonal_fraction_after
        };
        let weak = run(0.0);
        let strong = run(2.0);
        assert!(
            strong >= weak,
            "stronger polarization should keep more diagonal mass ({weak} vs {strong})"
        );
    }

    #[test]
    fn report_counts_are_consistent() {
        let (g, layout, cfg) = setup();
        let (_, report) = Polarizer::new(cfg).tune(g.adjacency(), &layout).unwrap();
        assert_eq!(report.nnz_before, g.num_edges());
        assert!(report.nnz_after <= report.nnz_before);
        assert!(report.iterations >= 1);
    }
}
