//! Error type for the GCoD algorithm crate.

use std::fmt;

/// Errors produced by the GCoD training pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GcodError {
    /// The configuration is internally inconsistent.
    InvalidConfig {
        /// Which field is wrong and why.
        context: String,
    },
    /// An underlying graph operation failed.
    Graph(gcod_graph::GraphError),
    /// An underlying model/training operation failed.
    Nn(gcod_nn::NnError),
}

impl fmt::Display for GcodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcodError::InvalidConfig { context } => write!(f, "invalid GCoD config: {context}"),
            GcodError::Graph(e) => write!(f, "graph error: {e}"),
            GcodError::Nn(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for GcodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GcodError::Graph(e) => Some(e),
            GcodError::Nn(e) => Some(e),
            GcodError::InvalidConfig { .. } => None,
        }
    }
}

impl From<gcod_graph::GraphError> for GcodError {
    fn from(e: gcod_graph::GraphError) -> Self {
        GcodError::Graph(e)
    }
}

impl From<gcod_nn::NnError> for GcodError {
    fn from(e: gcod_nn::NnError) -> Self {
        GcodError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_graph_errors() {
        let err: GcodError = gcod_graph::GraphError::EmptyGraph.into();
        assert!(err.to_string().contains("graph error"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn config_error_displays_context() {
        let err = GcodError::InvalidConfig {
            context: "groups must divide subgraphs".to_string(),
        };
        assert!(err.to_string().contains("groups must divide"));
    }
}
