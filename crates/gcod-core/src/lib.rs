//! The GCoD split-and-conquer training algorithm (the paper's primary
//! contribution, Sec. IV).
//!
//! GCoD resolves the accuracy-vs-regularity dilemma of GCN acceleration by
//! *polarizing* the graph adjacency matrix during training: nodes are
//! clustered into degree classes, each class is partitioned into
//! workload-balanced subgraphs, subgraphs are spread over groups, and a
//! regularized graph-tuning step concentrates the edge mass inside the
//! resulting block-diagonal structure while pruning a target fraction of
//! edges. The outcome is an adjacency matrix with exactly two kinds of
//! workload — a **denser** block-diagonal part and a **sparser** off-diagonal
//! remainder — which the dedicated two-pronged accelerator in `gcod-accel`
//! exploits.
//!
//! The crate is organised along the three steps of Fig. 3:
//!
//! 1. [`classify`] + [`layout`]: degree classes, balanced subgraph
//!    partitioning (METIS stand-in), group distribution and the induced node
//!    reordering (Step 1),
//! 2. [`polarize`]: sparsify + polarize graph tuning (Step 2),
//! 3. [`structural`]: patch-based structural sparsification (Step 3),
//!
//! with [`pipeline`] orchestrating pretraining, tuning and retraining
//! (including the early-bird early-stopping variant of Sec. IV-B2),
//! [`workload`] extracting the denser/sparser split consumed by the
//! accelerator, [`visualize`] rendering Fig. 4-style adjacency views, and
//! [`compression`] implementing the baselines of Table VII.
//!
//! # Example
//!
//! ```
//! use gcod_core::{GcodConfig, GcodPipeline};
//! use gcod_graph::{DatasetProfile, GraphGenerator};
//! use gcod_nn::models::ModelKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = GraphGenerator::new(0).generate(&DatasetProfile::cora().scaled(0.03))?;
//! let config = GcodConfig { pretrain_epochs: 10, retrain_epochs: 10, ..GcodConfig::default() };
//! let result = GcodPipeline::new(config).run(&graph, ModelKind::Gcn, 0)?;
//! assert!(result.split.denser_nnz + result.split.sparser_nnz > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod classify;
pub mod compression;
mod config;
mod error;
pub mod layout;
pub mod pipeline;
pub mod polarize;
pub mod structural;
pub mod visualize;
pub mod workload;

pub use classify::DegreeClasses;
pub use compression::{CompressionMethod, CompressionOutcome};
pub use config::GcodConfig;
pub use error::GcodError;
pub use layout::{SubgraphInfo, SubgraphLayout};
pub use pipeline::{GcodPipeline, GcodResult, TrainingCost};
pub use polarize::{PolarizeReport, Polarizer};
pub use structural::{structural_sparsify, StructuralReport};
pub use visualize::render_adjacency;
pub use workload::{DenseBlock, SplitWorkload};

/// Result alias for the GCoD algorithm crate.
pub type Result<T> = std::result::Result<T, GcodError>;
