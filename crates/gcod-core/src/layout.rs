//! Step 1b: subgraph partitioning, group distribution and node reordering.
//!
//! Within every degree class, the induced subgraph is split into
//! workload-balanced subgraphs (METIS in the paper, the multilevel
//! partitioner from `gcod-graph` here). The subgraphs of each class are then
//! distributed round-robin over `G` groups. Finally the nodes are laid out so
//! that groups are contiguous index ranges and, inside a group, the
//! subgraphs of class 0 come first, then class 1, … — the layout of Fig. 2,
//! which turns intra-subgraph edges into block-diagonal mass.

use crate::{DegreeClasses, GcodConfig, Result};
use gcod_graph::{CsrMatrix, Graph, PartitionConfig, Partitioner, Permutation};
use serde::{Deserialize, Serialize};

/// One subgraph produced by the split-and-conquer layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubgraphInfo {
    /// Degree class this subgraph belongs to (also the hardware chunk that
    /// will process it).
    pub class: usize,
    /// Group this subgraph is assigned to.
    pub group: usize,
    /// First node position (in the reordered graph) of this subgraph.
    pub start: usize,
    /// Number of nodes in this subgraph.
    pub len: usize,
    /// Number of intra-subgraph directed edges (the denser workload of this
    /// block).
    pub internal_nnz: usize,
}

impl SubgraphInfo {
    /// Node range of the subgraph in the reordered graph.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// The full split-and-conquer layout: node ordering plus subgraph metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubgraphLayout {
    permutation: Permutation,
    subgraphs: Vec<SubgraphInfo>,
    num_classes: usize,
    num_groups: usize,
}

impl SubgraphLayout {
    /// Builds the layout for `graph` under `config`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and partitioning errors.
    pub fn build(graph: &Graph, config: &GcodConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let classes = DegreeClasses::compute(graph.adjacency(), config)?;
        Self::build_with_classes(graph.adjacency(), &classes, config, seed)
    }

    /// Builds the layout from an already-computed degree classification.
    ///
    /// # Errors
    ///
    /// Propagates partitioning errors.
    pub fn build_with_classes(
        adj: &CsrMatrix,
        classes: &DegreeClasses,
        config: &GcodConfig,
        seed: u64,
    ) -> Result<Self> {
        let per_class = config.subgraphs_per_class();
        let members = classes.members();

        // Partition each class into its share of subgraphs, balanced by edge
        // count (node weight = degree, which the partitioner's balance
        // constraint approximates through node weights of the induced
        // subgraph).
        let mut class_subgraphs: Vec<Vec<Vec<usize>>> = Vec::with_capacity(members.len());
        for (class_idx, class_nodes) in members.iter().enumerate() {
            let wanted = per_class[class_idx].max(1);
            if class_nodes.is_empty() {
                class_subgraphs.push(Vec::new());
                continue;
            }
            if class_nodes.len() <= wanted {
                // Degenerate: one node per subgraph.
                class_subgraphs.push(class_nodes.iter().map(|&n| vec![n]).collect());
                continue;
            }
            let induced = adj.submatrix(class_nodes, class_nodes);
            let parts = wanted.min(class_nodes.len());
            let partition = Partitioner::new(PartitionConfig {
                parts,
                seed,
                ..PartitionConfig::default()
            })
            .partition(&induced)?;
            let mut subgraphs: Vec<Vec<usize>> = vec![Vec::new(); parts];
            for (local, &part) in partition.assignment().iter().enumerate() {
                subgraphs[part as usize].push(class_nodes[local]);
            }
            subgraphs.retain(|s| !s.is_empty());
            class_subgraphs.push(subgraphs);
        }

        // Distribute the subgraphs of each class round-robin over the groups,
        // then lay the nodes out group-major, class-minor (Fig. 2 (a)).
        let num_groups = config.num_groups;
        // assignment[group][class] = list of subgraphs (each a node list)
        let mut assignment: Vec<Vec<Vec<Vec<usize>>>> =
            vec![vec![Vec::new(); classes.num_classes()]; num_groups];
        for (class_idx, subgraphs) in class_subgraphs.into_iter().enumerate() {
            for (i, subgraph) in subgraphs.into_iter().enumerate() {
                assignment[i % num_groups][class_idx].push(subgraph);
            }
        }

        let mut order: Vec<usize> = Vec::with_capacity(adj.rows());
        let mut infos: Vec<SubgraphInfo> = Vec::new();
        for (group_idx, group) in assignment.iter().enumerate() {
            for (class_idx, subgraphs) in group.iter().enumerate() {
                for subgraph in subgraphs {
                    let start = order.len();
                    order.extend_from_slice(subgraph);
                    infos.push(SubgraphInfo {
                        class: class_idx,
                        group: group_idx,
                        start,
                        len: subgraph.len(),
                        internal_nnz: 0,
                    });
                }
            }
        }
        let permutation = Permutation::from_order(&order)?;

        // Count intra-subgraph edges in the *reordered* matrix.
        let permuted = adj.permute_symmetric(&permutation);
        for info in &mut infos {
            info.internal_nnz = permuted.block_nnz(
                info.start,
                info.start + info.len,
                info.start,
                info.start + info.len,
            );
        }

        Ok(Self {
            permutation,
            subgraphs: infos,
            num_classes: classes.num_classes(),
            num_groups,
        })
    }

    /// The node permutation (old index → new index).
    pub fn permutation(&self) -> &Permutation {
        &self.permutation
    }

    /// The subgraphs in layout order.
    pub fn subgraphs(&self) -> &[SubgraphInfo] {
        &self.subgraphs
    }

    /// Number of degree classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Subgraphs belonging to one class (across all groups) — the workload of
    /// one hardware chunk.
    pub fn subgraphs_of_class(&self, class: usize) -> Vec<&SubgraphInfo> {
        self.subgraphs.iter().filter(|s| s.class == class).collect()
    }

    /// Applies the layout's permutation to a graph.
    pub fn apply(&self, graph: &Graph) -> Graph {
        graph.permute(&self.permutation)
    }

    /// Total intra-subgraph (block-diagonal) non-zeros.
    pub fn diagonal_nnz(&self) -> usize {
        self.subgraphs.iter().map(|s| s.internal_nnz).sum()
    }

    /// Coefficient of variation of per-class subgraph edge counts; low values
    /// mean the workload is balanced, which is the property the denser branch
    /// relies on.
    pub fn workload_balance(&self, class: usize) -> f64 {
        let sizes: Vec<f64> = self
            .subgraphs_of_class(class)
            .iter()
            .map(|s| s.internal_nnz as f64)
            .collect();
        if sizes.len() < 2 {
            return 0.0;
        }
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = sizes.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / sizes.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator, GraphStats};

    fn graph() -> Graph {
        GraphGenerator::new(11)
            .generate(&DatasetProfile::custom("layout", 300, 1200, 8, 4))
            .unwrap()
    }

    fn config() -> GcodConfig {
        GcodConfig {
            num_classes: 2,
            num_subgraphs: 8,
            num_groups: 2,
            pretrain_epochs: 1,
            retrain_epochs: 1,
            ..GcodConfig::default()
        }
    }

    #[test]
    fn layout_covers_all_nodes_exactly_once() {
        let g = graph();
        let layout = SubgraphLayout::build(&g, &config(), 0).unwrap();
        let covered: usize = layout.subgraphs().iter().map(|s| s.len).sum();
        assert_eq!(covered, g.num_nodes());
        // Ranges must be contiguous and non-overlapping.
        let mut cursor = 0;
        for s in layout.subgraphs() {
            assert_eq!(s.start, cursor);
            cursor += s.len;
        }
        assert_eq!(cursor, g.num_nodes());
    }

    #[test]
    fn groups_and_classes_are_within_bounds() {
        let g = graph();
        let cfg = config();
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        for s in layout.subgraphs() {
            assert!(s.class < cfg.num_classes);
            assert!(s.group < cfg.num_groups);
        }
        assert_eq!(layout.num_classes(), cfg.num_classes);
        assert_eq!(layout.num_groups(), cfg.num_groups);
    }

    #[test]
    fn every_class_has_subgraphs() {
        let g = graph();
        let layout = SubgraphLayout::build(&g, &config(), 0).unwrap();
        for class in 0..layout.num_classes() {
            assert!(
                !layout.subgraphs_of_class(class).is_empty(),
                "class {class} has no subgraphs"
            );
        }
    }

    #[test]
    fn reordering_increases_diagonal_mass() {
        let g = graph();
        let layout = SubgraphLayout::build(&g, &config(), 0).unwrap();
        let before = GraphStats::compute(g.adjacency()).diagonal_mass;
        let permuted = layout.apply(&g);
        let after = GraphStats::compute(permuted.adjacency()).diagonal_mass;
        assert!(
            after > before * 0.9,
            "diagonal mass should not collapse: {before} -> {after}"
        );
        // The block-diagonal (intra-subgraph) edges should be a substantial
        // share of the whole matrix for a community-structured graph.
        let frac = layout.diagonal_nnz() as f64 / g.num_edges() as f64;
        assert!(frac > 0.3, "block-diagonal fraction {frac}");
    }

    #[test]
    fn permutation_round_trips_labels() {
        let g = graph();
        let layout = SubgraphLayout::build(&g, &config(), 0).unwrap();
        let permuted = layout.apply(&g);
        let inv = layout.permutation().inverse();
        for new in 0..g.num_nodes() {
            let old = inv.apply(new);
            assert_eq!(permuted.labels()[new], g.labels()[old]);
        }
    }

    #[test]
    fn workload_balance_is_reasonable() {
        let g = graph();
        let layout = SubgraphLayout::build(&g, &config(), 0).unwrap();
        for class in 0..layout.num_classes() {
            let cv = layout.workload_balance(class);
            assert!(cv < 1.5, "class {class} coefficient of variation {cv}");
        }
    }

    #[test]
    fn single_class_single_group_layout() {
        let g = graph();
        let cfg = GcodConfig {
            num_classes: 1,
            num_subgraphs: 4,
            num_groups: 1,
            ..GcodConfig::default()
        };
        let layout = SubgraphLayout::build(&g, &cfg, 0).unwrap();
        assert!(layout.subgraphs().len() >= 2);
        assert!(layout
            .subgraphs()
            .iter()
            .all(|s| s.class == 0 && s.group == 0));
    }
}
