//! Inference workload descriptors.
//!
//! The accelerator and baseline platform models do not run the actual
//! numerics — they need to know, for every layer, how much aggregation work
//! (SpMM against the adjacency), how much combination work (dense matmul
//! against the weights) and how many bytes of each operand the layer touches.
//! [`InferenceWorkload::build`] derives that from a graph and a model
//! configuration, which is exactly the information the paper's Table IV +
//! Table III pairs define.

use crate::models::ModelConfig;
use crate::quant::Precision;
use gcod_graph::Graph;
use serde::{Deserialize, Serialize};

/// Work and data-volume of a single layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerWorkload {
    /// Layer index.
    pub index: usize,
    /// Number of nodes (rows of the feature matrix).
    pub nodes: usize,
    /// Input feature dimension of this layer.
    pub in_dim: usize,
    /// Output feature dimension of this layer.
    pub out_dim: usize,
    /// Non-zeros of the adjacency matrix used for aggregation.
    pub adjacency_nnz: usize,
    /// MACs of the aggregation SpMM (`nnz × out_dim` under the
    /// combination-first ordering used by AWB-GCN and GCoD).
    pub aggregation_macs: u64,
    /// MACs of the combination dense matmul (`nodes × in_dim × out_dim`,
    /// discounted by feature sparsity for the first layer).
    pub combination_macs: u64,
    /// Bytes of the input feature matrix.
    pub input_feature_bytes: u64,
    /// Bytes of the combined (`X·W`) intermediate matrix.
    pub intermediate_bytes: u64,
    /// Bytes of the output feature matrix.
    pub output_feature_bytes: u64,
    /// Bytes of the weight matrix.
    pub weight_bytes: u64,
    /// Bytes of the adjacency structure (CSR: indices + pointers + values).
    pub adjacency_bytes: u64,
}

impl LayerWorkload {
    /// Total MAC count of the layer.
    pub fn total_macs(&self) -> u64 {
        self.aggregation_macs + self.combination_macs
    }
}

/// Work and data-volume of a full model inference on one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceWorkload {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Numeric precision of features/weights.
    pub precision: Precision,
    /// Per-layer workloads.
    pub layers: Vec<LayerWorkload>,
    /// Density of the input feature matrix (fraction of non-zero entries);
    /// citation-graph features are sparse bag-of-words vectors.
    pub feature_density: f64,
}

impl InferenceWorkload {
    /// Builds the workload for running `config` on `graph` at `precision`.
    pub fn build(graph: &Graph, config: &ModelConfig, precision: Precision) -> Self {
        Self::build_with_adjacency_nnz(graph, config, precision, graph.num_edges())
    }

    /// Same as [`InferenceWorkload::build`] but with an explicit adjacency
    /// non-zero count — used after GCoD pruning, where the pruned edge count
    /// differs from the original graph's.
    pub fn build_with_adjacency_nnz(
        graph: &Graph,
        config: &ModelConfig,
        precision: Precision,
        adjacency_nnz: usize,
    ) -> Self {
        Self::from_stats(
            graph.name(),
            graph.num_nodes(),
            adjacency_nnz,
            estimate_feature_density(graph),
            config,
            precision,
        )
    }

    /// Builds a workload purely from dataset statistics, without materialising
    /// the graph. This is how the benchmark harness models the paper's
    /// full-size datasets (e.g. Reddit with 229 M directed edges), whose
    /// adjacency matrices would be wasteful to instantiate just to count
    /// work: only `nodes`, `adjacency_nnz` and the input feature density
    /// matter to the platform models.
    pub fn from_stats(
        dataset: &str,
        nodes: usize,
        adjacency_nnz: usize,
        feature_density: f64,
        config: &ModelConfig,
        precision: Precision,
    ) -> Self {
        let bytes = precision.bytes() as u64;
        let feature_density = feature_density.clamp(0.001, 1.0);
        let layers = config
            .layer_dims()
            .iter()
            .enumerate()
            .map(|(index, &(in_dim, out_dim))| {
                // The combination-first ordering (Fig. 7) multiplies X·W first,
                // so aggregation operates on out_dim-wide rows.
                let aggregation_macs = adjacency_nnz as u64 * out_dim as u64;
                // The first layer's feature matrix is sparse; later layers are
                // dense activations.
                let density = if index == 0 { feature_density } else { 1.0 };
                let combination_macs =
                    (nodes as f64 * in_dim as f64 * out_dim as f64 * density) as u64;
                LayerWorkload {
                    index,
                    nodes,
                    in_dim,
                    out_dim,
                    adjacency_nnz,
                    aggregation_macs,
                    combination_macs,
                    input_feature_bytes: nodes as u64 * in_dim as u64 * bytes,
                    intermediate_bytes: nodes as u64 * out_dim as u64 * bytes,
                    output_feature_bytes: nodes as u64 * out_dim as u64 * bytes,
                    weight_bytes: in_dim as u64 * out_dim as u64 * bytes,
                    adjacency_bytes: adjacency_nnz as u64 * (4 + bytes) + (nodes as u64 + 1) * 8,
                }
            })
            .collect();
        Self {
            dataset: dataset.to_string(),
            model: config.kind.name().to_string(),
            precision,
            layers,
            feature_density,
        }
    }

    /// Total MACs across layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(LayerWorkload::total_macs).sum()
    }

    /// Total aggregation MACs.
    pub fn aggregation_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.aggregation_macs).sum()
    }

    /// Total combination MACs.
    pub fn combination_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.combination_macs).sum()
    }

    /// Total bytes of weights.
    pub fn weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// Bytes of the largest intermediate feature matrix (what an accelerator
    /// would have to buffer between phases).
    pub fn peak_intermediate_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.intermediate_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Total floating point operations (2 per MAC), matching the FLOPs
    /// numbers the paper's introduction quotes.
    pub fn total_flops(&self) -> u64 {
        self.total_macs() * 2
    }
}

fn estimate_feature_density(graph: &Graph) -> f64 {
    let total = graph.features().len();
    if total == 0 {
        return 1.0;
    }
    // Sample at most ~200k entries to keep this cheap for Reddit-scale
    // graphs.
    let stride = (total / 200_000).max(1);
    let mut nonzero = 0usize;
    let mut sampled = 0usize;
    let mut idx = 0usize;
    while idx < total {
        if graph.features()[idx].abs() > 1e-6 {
            nonzero += 1;
        }
        sampled += 1;
        idx += stride;
    }
    (nonzero as f64 / sampled as f64).clamp(0.001, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelConfig;
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn graph() -> Graph {
        GraphGenerator::new(7)
            .generate(&DatasetProfile::custom("w", 100, 400, 32, 5))
            .unwrap()
    }

    #[test]
    fn workload_layer_count_matches_model() {
        let g = graph();
        let cfg = ModelConfig::gin(&g);
        let w = InferenceWorkload::build(&g, &cfg, Precision::Fp32);
        assert_eq!(w.layers.len(), 3);
        assert_eq!(w.model, "gin");
        assert_eq!(w.dataset, "w");
    }

    #[test]
    fn aggregation_macs_scale_with_edges() {
        let g = graph();
        let cfg = ModelConfig::gcn(&g);
        let w = InferenceWorkload::build(&g, &cfg, Precision::Fp32);
        let expected_first: u64 = g.num_edges() as u64 * cfg.layer_dims()[0].1 as u64;
        assert_eq!(w.layers[0].aggregation_macs, expected_first);
    }

    #[test]
    fn pruned_adjacency_reduces_aggregation_work() {
        let g = graph();
        let cfg = ModelConfig::gcn(&g);
        let full = InferenceWorkload::build(&g, &cfg, Precision::Fp32);
        let pruned = InferenceWorkload::build_with_adjacency_nnz(
            &g,
            &cfg,
            Precision::Fp32,
            g.num_edges() / 2,
        );
        assert!(pruned.aggregation_macs() < full.aggregation_macs());
        assert_eq!(pruned.combination_macs(), full.combination_macs());
    }

    #[test]
    fn int8_halves_or_better_the_byte_counts() {
        let g = graph();
        let cfg = ModelConfig::gcn(&g);
        let fp32 = InferenceWorkload::build(&g, &cfg, Precision::Fp32);
        let int8 = InferenceWorkload::build(&g, &cfg, Precision::Int8);
        assert!(int8.weight_bytes() * 2 <= fp32.weight_bytes());
        assert!(int8.peak_intermediate_bytes() * 2 <= fp32.peak_intermediate_bytes());
        // MAC counts do not change with precision.
        assert_eq!(int8.total_macs(), fp32.total_macs());
    }

    #[test]
    fn flops_double_macs() {
        let g = graph();
        let w = InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32);
        assert_eq!(w.total_flops(), w.total_macs() * 2);
    }

    #[test]
    fn reddit_scale_gcn_flops_are_in_the_billions() {
        // The paper quotes ~19 GFLOPs for a 2-layer GCN on Reddit. We build
        // the workload from the full-size profile without generating the
        // graph (statistics only matter here).
        let profile = DatasetProfile::reddit();
        let small = GraphGenerator::new(0)
            .generate(&profile.scaled(0.0004))
            .unwrap();
        let mut cfg = ModelConfig::gcn(&small);
        cfg.input_dim = profile.feature_dim;
        cfg.hidden_dim = 64;
        let w = InferenceWorkload::build_with_adjacency_nnz(
            &small,
            &cfg,
            Precision::Fp32,
            profile.edges * 2,
        );
        // Aggregation over 229M directed edges × 64 features alone is ~15 G
        // MACs; assert the order of magnitude.
        assert!(w.total_flops() > 10_000_000_000u64);
    }

    #[test]
    fn gat_heads_widen_the_combination() {
        let g = graph();
        let gcn = InferenceWorkload::build(&g, &ModelConfig::gcn(&g), Precision::Fp32);
        let gat = InferenceWorkload::build(&g, &ModelConfig::gat(&g), Precision::Fp32);
        assert!(gat.layers[0].out_dim > gcn.layers[0].out_dim);
    }
}
