//! Masked softmax cross-entropy loss (Eq. 2 of the paper).

use crate::{Result, Tensor};
use gcod_graph::NodeMask;

/// Value and gradient of the masked cross-entropy loss.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the masked nodes.
    pub loss: f32,
    /// Gradient w.r.t. the logits (zero outside the mask).
    pub grad_logits: Tensor,
}

/// Computes the masked softmax cross-entropy loss and its gradient.
///
/// `logits` is `N × C`, `labels` holds one class id per node, and only nodes
/// selected by `mask` contribute (the semi-supervised setting of Eq. 2).
///
/// # Errors
///
/// Returns a shape error if `labels.len()` differs from the number of logit
/// rows.
pub fn masked_cross_entropy(
    logits: &Tensor,
    labels: &[u32],
    mask: &NodeMask,
) -> Result<LossOutput> {
    if labels.len() != logits.rows() {
        return Err(crate::NnError::ShapeMismatch {
            context: format!(
                "labels length {} != logits rows {}",
                labels.len(),
                logits.rows()
            ),
        });
    }
    let probs = logits.softmax_rows();
    let mut grad = Tensor::zeros(logits.rows(), logits.cols());
    let count = mask.count().max(1) as f32;
    let mut loss = 0.0f32;
    for node in mask.iter() {
        let label = labels[node] as usize;
        let p = probs.get(node, label).max(1e-12);
        loss -= p.ln();
        // d(loss)/d(logit) = (softmax - one_hot) / count
        for c in 0..logits.cols() {
            let delta = if c == label { 1.0 } else { 0.0 };
            grad.set(node, c, (probs.get(node, c) - delta) / count);
        }
    }
    Ok(LossOutput {
        loss: loss / count,
        grad_logits: grad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        // Logits strongly favour the correct class.
        let logits = Tensor::from_vec(2, 2, vec![10.0, -10.0, -10.0, 10.0]).unwrap();
        let labels = vec![0, 1];
        let mask = NodeMask::from_indices(2, &[0, 1]);
        let out = masked_cross_entropy(&logits, &labels, &mask).unwrap();
        assert!(out.loss < 1e-3);
    }

    #[test]
    fn wrong_prediction_has_high_loss() {
        let logits = Tensor::from_vec(1, 2, vec![-5.0, 5.0]).unwrap();
        let out = masked_cross_entropy(&logits, &[0], &NodeMask::from_indices(1, &[0])).unwrap();
        assert!(out.loss > 5.0);
    }

    #[test]
    fn gradient_is_zero_outside_mask() {
        let logits = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.5, 0.5, 0.0, 1.0]).unwrap();
        let mask = NodeMask::from_indices(3, &[1]);
        let out = masked_cross_entropy(&logits, &[0, 1, 0], &mask).unwrap();
        assert_eq!(out.grad_logits.row(0), &[0.0, 0.0]);
        assert_eq!(out.grad_logits.row(2), &[0.0, 0.0]);
        assert!(out.grad_logits.row(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        // softmax - one_hot always sums to zero per row.
        let logits = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let mask = NodeMask::from_indices(2, &[0, 1]);
        let out = masked_cross_entropy(&logits, &[2, 0], &mask).unwrap();
        for r in 0..2 {
            let sum: f32 = out.grad_logits.row(r).iter().sum();
            assert!(sum.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(2, 3, vec![0.3, -0.2, 0.9, 1.5, 0.1, -0.4]).unwrap();
        let labels = vec![1u32, 0u32];
        let mask = NodeMask::from_indices(2, &[0, 1]);
        let base = masked_cross_entropy(&logits, &labels, &mask).unwrap();
        let eps = 1e-3f32;
        for (r, c) in [(0usize, 0usize), (1, 2)] {
            let mut plus = logits.clone();
            plus.set(r, c, logits.get(r, c) + eps);
            let lp = masked_cross_entropy(&plus, &labels, &mask).unwrap().loss;
            let mut minus = logits.clone();
            minus.set(r, c, logits.get(r, c) - eps);
            let lm = masked_cross_entropy(&minus, &labels, &mask).unwrap().loss;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = base.grad_logits.get(r, c);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "({r},{c}): {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn label_length_mismatch_is_rejected() {
        let logits = Tensor::zeros(3, 2);
        let mask = NodeMask::new(3);
        assert!(masked_cross_entropy(&logits, &[0, 1], &mask).is_err());
    }
}
