//! Minimal neural-network substrate for the GCoD reproduction.
//!
//! The paper trains five GCN variants (GCN, GIN, GAT, GraphSAGE, ResGCN)
//! with PyTorch Geometric / DGL. Those frameworks do not exist in Rust, so
//! this crate provides the pieces the GCoD algorithm actually needs, built
//! from scratch:
//!
//! * a row-major dense [`Tensor`] with the matrix ops GCNs use
//!   (matmul, transpose, row softmax, ReLU, elementwise arithmetic),
//! * sparse-dense multiplication ([`spmm`]) against the CSR adjacency,
//!   behind a selectable kernel suite ([`kernels`]): the reference scalar
//!   loop, a cache-tiled kernel, a row-range-parallel kernel and a
//!   degree-binned dispatch kernel — all bit-for-bit identical, selected
//!   per run via [`kernels::KernelKind`] (see the [`kernels`] module docs
//!   for how selection flows through training and the `gcod` facade),
//! * Glorot initialisation ([`init`]),
//! * the model zoo ([`models`]) covering Table IV of the paper,
//! * manual-gradient training for the two-layer GCN (the model the GCoD
//!   graph-tuning loss is formulated on), with an [`optim::Adam`] optimiser
//!   and cross-entropy loss,
//! * a real int8/int16 compute path ([`quant`] for storage and the
//!   [`QuantizedModel`] runner, [`qkernels`] for the integer SpMM/GEMM
//!   kernels with widened-integer accumulation) backing the GCoD (8-bit)
//!   variant — selectable per model via [`models::GnnModel::with_precision`],
//! * workload descriptors ([`workload`]) that feed the accelerator and
//!   baseline platform models.
//!
//! # Example
//!
//! ```
//! use gcod_graph::{DatasetProfile, GraphGenerator};
//! use gcod_nn::models::{GnnModel, ModelConfig};
//! use gcod_nn::train::{TrainConfig, Trainer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = GraphGenerator::new(0).generate(&DatasetProfile::cora().scaled(0.03))?;
//! let mut model = GnnModel::new(ModelConfig::gcn(&graph), 0)?;
//! let report = Trainer::new(TrainConfig { epochs: 30, ..TrainConfig::default() })
//!     .fit(&mut model, &graph)?;
//! assert!(report.final_train_accuracy > 0.3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod qkernels;
pub mod quant;
pub mod sampling;
pub mod sparse_ops;
mod tensor;
pub mod train;
pub mod workload;

pub use error::NnError;
pub use kernels::{KernelKind, SpmmKernel};
pub use qkernels::QuantSpmmKernel;
pub use quant::{Precision, QuantizedModel, QuantizedTensor};
pub use sparse_ops::spmm;
pub use tensor::Tensor;

/// Below this many multiply-accumulates, the parallel kernels (dense matmul
/// and `ParallelCsr` SpMM alike) stay on the calling thread instead of
/// submitting to the [`gcod_runtime::Pool`]: a pool submission costs a queue
/// lock and a wake-up (single-digit microseconds), which dominates products
/// smaller than this. One shared constant so the dense and sparse cut-offs
/// cannot drift apart when the pool's dispatch cost is retuned.
pub(crate) const POOL_DISPATCH_MIN_MACS: u64 = 1 << 16;

/// Result alias for the neural-network substrate.
pub type Result<T> = std::result::Result<T, NnError>;
