//! Integer SpMM and GEMM kernels for the quantized compute path.
//!
//! These are the compute half of [`crate::quant`]: the storage types hold
//! int8/int16 payloads behind symmetric scales, and the kernels here
//! multiply those payloads directly — products and sums stay in a widened
//! integer accumulator (`i32` for int8, `i64` for int16) and only the final
//! per-element accumulator is converted to f32 and scaled. Dequantization
//! therefore happens **once per operator**, at the output boundary, never
//! inside the accumulation loop.
//!
//! ## Exactness contract
//!
//! Integer addition is associative and commutative, so — unlike the f32
//! kernel suite, whose bit-identity rests on every schedule preserving
//! ascending-column accumulation order — the quantized kernels are
//! bit-exact against the scalar references for *any* traversal order,
//! worker count or tile geometry. The differential harness in
//! `tests/quant_differential.rs` pins this: [`ParallelQuantSpmm`] against
//! [`quant_spmm_reference`], and [`quant_matmul_blocked`] at every block
//! geometry against [`quant_matmul_reference`].
//!
//! ## Overflow bounds
//!
//! * int8: `|a·b| ≤ 127² = 16 129`, so an `i32` accumulator is safe for
//!   rows/inner-dimensions up to ~133 000 terms — far beyond any row degree
//!   or hidden width in the evaluated datasets.
//! * int16: `|a·b| ≤ 32 767² ≈ 1.07e9` overflows `i32` after two terms, so
//!   the int16 path accumulates in `i64` (safe to ~8.6e9 terms).
//!
//! The final `acc as f32 * scale` conversion rounds once, deterministically,
//! per output element — identical on every schedule.

use crate::quant::QuantizedTensor;
use crate::sparse_ops;
use crate::{NnError, Result, Tensor};
use gcod_graph::{QuantValues, QuantizedCsr};
use gcod_runtime::Pool;

/// Rows of the right-hand operand one blocked integer-GEMM pass streams;
/// same geometry rationale as the f32 `Tensor::matmul` blocking.
const QUANT_K_BLOCK: usize = 64;

/// Output columns one blocked integer-GEMM pass touches before moving on.
const QUANT_COL_BLOCK: usize = 1024;

/// An integer element type the quantized kernels can compute on, paired
/// with its widened accumulator.
trait QuantInt: Copy + Send + Sync {
    /// The widened accumulator (`i32` for i8, `i64` for i16).
    type Acc: Copy + Send;

    /// The zero accumulator.
    const ZERO: Self::Acc;

    /// `acc + a * b` in the widened domain.
    fn mul_acc(acc: Self::Acc, a: Self, b: Self) -> Self::Acc;

    /// Converts a finished accumulator to f32 and applies the combined
    /// scale. One deterministic rounding per output element.
    fn acc_to_f32(acc: Self::Acc, scale: f32) -> f32;
}

impl QuantInt for i8 {
    type Acc = i32;
    const ZERO: i32 = 0;

    #[inline]
    fn mul_acc(acc: i32, a: i8, b: i8) -> i32 {
        acc + a as i32 * b as i32
    }

    #[inline]
    fn acc_to_f32(acc: i32, scale: f32) -> f32 {
        acc as f32 * scale
    }
}

impl QuantInt for i16 {
    type Acc = i64;
    const ZERO: i64 = 0;

    #[inline]
    fn mul_acc(acc: i64, a: i16, b: i16) -> i64 {
        acc + a as i64 * b as i64
    }

    #[inline]
    fn acc_to_f32(acc: i64, scale: f32) -> f32 {
        acc as f32 * scale
    }
}

fn check_quant_spmm_shapes(kernel: &str, a: &QuantizedCsr, x: &QuantizedTensor) -> Result<()> {
    if a.cols() != x.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "quant-spmm[{kernel}]: adjacency {}x{} × features {}x{}",
                a.rows(),
                a.cols(),
                x.rows(),
                x.cols()
            ),
        });
    }
    if a.width() != x.width() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "quant-spmm[{kernel}]: adjacency is {} but features are {}",
                a.width().name(),
                x.width().name()
            ),
        });
    }
    Ok(())
}

/// Accumulates one CSR row into `acc` (one slot per feature column) in the
/// widened integer domain.
#[inline]
fn quant_row_into_acc<T: QuantInt>(
    cols: &[u32],
    vals: &[T],
    x_vals: &[T],
    x_cols: usize,
    acc: &mut [T::Acc],
) {
    for (&c, &v) in cols.iter().zip(vals) {
        let x_row = &x_vals[c as usize * x_cols..(c as usize + 1) * x_cols];
        for (slot, &xv) in acc.iter_mut().zip(x_row) {
            *slot = T::mul_acc(*slot, v, xv);
        }
    }
}

fn spmm_typed<T: QuantInt>(
    a: &QuantizedCsr,
    a_vals: &[T],
    x_vals: &[T],
    x_cols: usize,
    scale: f32,
) -> Tensor {
    let mut out = Tensor::zeros(a.rows(), x_cols);
    if x_cols == 0 {
        return out;
    }
    let mut acc = vec![T::ZERO; x_cols];
    for r in 0..a.rows() {
        acc.fill(T::ZERO);
        let range = a.row_range(r);
        quant_row_into_acc(
            &a.indices()[range.clone()],
            &a_vals[range],
            x_vals,
            x_cols,
            &mut acc,
        );
        for (o, &slot) in out.row_mut(r).iter_mut().zip(acc.iter()) {
            *o = T::acc_to_f32(slot, scale);
        }
    }
    out
}

/// The scalar fixed-point SpMM oracle: one row at a time, non-zeros in
/// ascending column order, a widened integer accumulator per output element,
/// one dequantizing conversion at the end of each row.
///
/// Every [`QuantSpmmKernel`] must be bit-exact against this — and because
/// the accumulation is *integer*, that exactness holds for any schedule,
/// not just order-preserving ones.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when `a.cols() != x.rows()` or the
/// operand widths differ.
pub fn quant_spmm_reference(a: &QuantizedCsr, x: &QuantizedTensor) -> Result<Tensor> {
    check_quant_spmm_shapes("reference", a, x)?;
    let scale = a.scale() * x.scale();
    Ok(match (a.values(), x.values()) {
        (QuantValues::I8(av), QuantValues::I8(xv)) => spmm_typed(a, av, xv, x.cols(), scale),
        (QuantValues::I16(av), QuantValues::I16(xv)) => spmm_typed(a, av, xv, x.cols(), scale),
        _ => unreachable!("width equality checked above"),
    })
}

/// A sparse × dense multiplication kernel over quantized operands:
/// `A · X` with `A` a [`QuantizedCsr`] and `X` a [`QuantizedTensor`] of the
/// same width. The result is the dequantized f32 product.
///
/// Implementations must be bit-exact against [`quant_spmm_reference`] at
/// every worker count — the integer accumulation contract (see the module
/// docs) makes that a property of the arithmetic, not of the schedule.
pub trait QuantSpmmKernel: std::fmt::Debug + Send + Sync {
    /// Stable kernel name used in reports and benchmark labels.
    fn name(&self) -> &'static str;

    /// Computes `A · X`, dequantized to f32.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `A.cols() != X.rows()` or the
    /// operand widths differ.
    fn spmm(&self, a: &QuantizedCsr, x: &QuantizedTensor) -> Result<Tensor>;
}

/// The scalar quantized SpMM kernel: [`quant_spmm_reference`] behind the
/// kernel trait. Every [`crate::kernels::KernelKind`] except `ParallelCsr`
/// maps here on the quantized path (the tiled/degree-binned schedules have
/// no quantized analogue yet; see ROADMAP).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveQuantSpmm;

impl QuantSpmmKernel for NaiveQuantSpmm {
    fn name(&self) -> &'static str {
        "quant-naive"
    }

    fn spmm(&self, a: &QuantizedCsr, x: &QuantizedTensor) -> Result<Tensor> {
        quant_spmm_reference(a, x)
    }
}

/// Row-range-parallel quantized SpMM over the persistent
/// [`gcod_runtime::Pool`], mirroring the f32 `ParallelCsr` kernel: output
/// rows are partitioned into contiguous ranges balanced by non-zero count,
/// each worker accumulates its rows in a private widened-integer buffer and
/// writes the dequantized f32 row into its output chunk.
#[derive(Debug, Clone, Copy)]
pub struct ParallelQuantSpmm {
    /// Parallel lanes; 0 (the default) selects the global pool's lane count.
    pub workers: usize,
    /// MAC count below which `spmm` stays on the calling thread (same
    /// rationale and default as the f32 `ParallelCsr`); 0 forces the pooled
    /// path on any size, which the differential tests use.
    pub scalar_cutoff_macs: u64,
}

impl Default for ParallelQuantSpmm {
    fn default() -> Self {
        Self {
            workers: 0,
            scalar_cutoff_macs: crate::POOL_DISPATCH_MIN_MACS,
        }
    }
}

impl ParallelQuantSpmm {
    /// A parallel quantized kernel with an explicit worker count (0 = auto).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }

    /// Explicit worker count *and* scalar cut-off (0 = always pooled).
    pub fn with_workers_and_cutoff(workers: usize, scalar_cutoff_macs: u64) -> Self {
        Self {
            workers,
            scalar_cutoff_macs,
        }
    }

    fn effective_workers(&self, rows: usize) -> usize {
        Pool::global()
            .effective_workers(self.workers)
            .clamp(1, rows.max(1))
    }

    fn spmm_typed_parallel<T: QuantInt>(
        &self,
        a: &QuantizedCsr,
        a_vals: &[T],
        x_vals: &[T],
        x_cols: usize,
        scale: f32,
        workers: usize,
    ) -> Tensor {
        let rows = a.rows();
        let mut out = Tensor::zeros(rows, x_cols);
        let indptr = a.indptr();
        let indices = a.indices();
        Pool::global().parallel_for_ranges(
            rows,
            out.data_mut(),
            workers,
            |r| indptr[r + 1] - indptr[r],
            |range, chunk| {
                let mut acc = vec![T::ZERO; x_cols];
                for (local, r) in range.enumerate() {
                    acc.fill(T::ZERO);
                    let (start, end) = (indptr[r] as usize, indptr[r + 1] as usize);
                    quant_row_into_acc(
                        &indices[start..end],
                        &a_vals[start..end],
                        x_vals,
                        x_cols,
                        &mut acc,
                    );
                    let out_row = &mut chunk[local * x_cols..(local + 1) * x_cols];
                    for (o, &slot) in out_row.iter_mut().zip(acc.iter()) {
                        *o = T::acc_to_f32(slot, scale);
                    }
                }
            },
        );
        out
    }
}

impl QuantSpmmKernel for ParallelQuantSpmm {
    fn name(&self) -> &'static str {
        "quant-parallel"
    }

    fn spmm(&self, a: &QuantizedCsr, x: &QuantizedTensor) -> Result<Tensor> {
        check_quant_spmm_shapes(self.name(), a, x)?;
        let rows = a.rows();
        let cols = x.cols();
        let workers = self.effective_workers(rows);
        let too_small = sparse_ops::spmm_macs(a.nnz(), cols) < self.scalar_cutoff_macs;
        if workers <= 1 || rows == 0 || cols == 0 || too_small {
            return quant_spmm_reference(a, x);
        }
        let scale = a.scale() * x.scale();
        Ok(match (a.values(), x.values()) {
            (QuantValues::I8(av), QuantValues::I8(xv)) => {
                self.spmm_typed_parallel(a, av, xv, cols, scale, workers)
            }
            (QuantValues::I16(av), QuantValues::I16(xv)) => {
                self.spmm_typed_parallel(a, av, xv, cols, scale, workers)
            }
            _ => unreachable!("width equality checked above"),
        })
    }
}

/// Instantiates the quantized SpMM kernel matching a f32 [`KernelKind`]
/// selection: `ParallelCsr` maps to [`ParallelQuantSpmm`] with the given
/// worker count, every other kind to the scalar [`NaiveQuantSpmm`] (the
/// tiled and degree-binned schedules have no quantized analogue yet).
///
/// [`KernelKind`]: crate::kernels::KernelKind
pub fn quant_kernel_for(
    kind: crate::kernels::KernelKind,
    workers: usize,
) -> Box<dyn QuantSpmmKernel> {
    match kind {
        crate::kernels::KernelKind::ParallelCsr => {
            Box::new(ParallelQuantSpmm::with_workers(workers))
        }
        _ => Box::new(NaiveQuantSpmm),
    }
}

fn check_quant_matmul_shapes(a: &QuantizedTensor, b: &QuantizedTensor) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "quant-matmul: {}x{} × {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    if a.width() != b.width() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "quant-matmul: left is {} but right is {}",
                a.width().name(),
                b.width().name()
            ),
        });
    }
    Ok(())
}

/// The scalar fixed-point GEMM oracle: the plain i-k-j loop with a widened
/// integer accumulator row, dequantized once per output element.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when the inner dimensions or operand
/// widths differ.
pub fn quant_matmul_reference(a: &QuantizedTensor, b: &QuantizedTensor) -> Result<Tensor> {
    check_quant_matmul_shapes(a, b)?;
    let scale = a.scale() * b.scale();
    let (m, inner, n) = (a.rows(), a.cols(), b.cols());
    Ok(match (a.values(), b.values()) {
        (QuantValues::I8(av), QuantValues::I8(bv)) => matmul_ref_typed(av, bv, m, inner, n, scale),
        (QuantValues::I16(av), QuantValues::I16(bv)) => {
            matmul_ref_typed(av, bv, m, inner, n, scale)
        }
        _ => unreachable!("width equality checked above"),
    })
}

fn matmul_ref_typed<T: QuantInt>(
    a: &[T],
    b: &[T],
    m: usize,
    inner: usize,
    n: usize,
    scale: f32,
) -> Tensor {
    let mut out = Tensor::zeros(m, n);
    if m == 0 || inner == 0 || n == 0 {
        return out;
    }
    let mut acc = vec![T::ZERO; n];
    for i in 0..m {
        acc.fill(T::ZERO);
        for k in 0..inner {
            let av = a[i * inner + k];
            let b_row = &b[k * n..(k + 1) * n];
            for (slot, &bv) in acc.iter_mut().zip(b_row) {
                *slot = T::mul_acc(*slot, av, bv);
            }
        }
        for (o, &slot) in out.row_mut(i).iter_mut().zip(acc.iter()) {
            *o = T::acc_to_f32(slot, scale);
        }
    }
    out
}

/// Blocked, pool-parallel quantized GEMM with the default block geometry.
/// Small products stay on the calling thread (same cut-off as the f32
/// `Tensor::matmul_with`); results are bit-exact against
/// [`quant_matmul_reference`] for every worker count.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when the inner dimensions or operand
/// widths differ.
pub fn quant_matmul(a: &QuantizedTensor, b: &QuantizedTensor, workers: usize) -> Result<Tensor> {
    let macs = a.rows() as u64 * a.cols() as u64 * b.cols() as u64;
    let workers = if macs < crate::POOL_DISPATCH_MIN_MACS {
        1
    } else {
        workers
    };
    quant_matmul_blocked(a, b, workers, QUANT_K_BLOCK, QUANT_COL_BLOCK)
}

/// Fully explicit blocked quantized GEMM: `workers` parallel lanes (0 = pool
/// default), `k_block` rows of `b` per inner pass and `col_block` output
/// columns per tile (0 = the whole axis as one block). An explicit worker
/// count is honoured unconditionally so tests can drive the pooled path on
/// tiny fixtures.
///
/// Each worker accumulates its row range in a private widened-integer buffer
/// across all k/column tiles, converting to f32 only after the last tile —
/// so any block geometry is bit-exact against [`quant_matmul_reference`]
/// by integer associativity, not by order preservation.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when the inner dimensions or operand
/// widths differ.
pub fn quant_matmul_blocked(
    a: &QuantizedTensor,
    b: &QuantizedTensor,
    workers: usize,
    k_block: usize,
    col_block: usize,
) -> Result<Tensor> {
    check_quant_matmul_shapes(a, b)?;
    let scale = a.scale() * b.scale();
    let (m, inner, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Tensor::zeros(m, n);
    if m == 0 || inner == 0 || n == 0 {
        return Ok(out);
    }
    let k_block = if k_block == 0 { inner } else { k_block };
    let col_block = if col_block == 0 { n } else { col_block };
    let workers = Pool::global().effective_workers(workers);
    match (a.values(), b.values()) {
        (QuantValues::I8(av), QuantValues::I8(bv)) => matmul_blocked_typed(
            av, bv, inner, n, scale, workers, k_block, col_block, &mut out,
        ),
        (QuantValues::I16(av), QuantValues::I16(bv)) => matmul_blocked_typed(
            av, bv, inner, n, scale, workers, k_block, col_block, &mut out,
        ),
        _ => unreachable!("width equality checked above"),
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn matmul_blocked_typed<T: QuantInt>(
    a: &[T],
    b: &[T],
    inner: usize,
    n: usize,
    scale: f32,
    workers: usize,
    k_block: usize,
    col_block: usize,
    out: &mut Tensor,
) {
    let m = out.rows();
    Pool::global().parallel_for_ranges(
        m,
        out.data_mut(),
        workers,
        |_| 1,
        |rows, chunk| {
            // Integer accumulators for this worker's whole row range: tiles
            // add into it in any order, one f32 conversion at the very end.
            let mut acc = vec![T::ZERO; rows.len() * n];
            for j0 in (0..n).step_by(col_block) {
                let j1 = (j0 + col_block).min(n);
                for k0 in (0..inner).step_by(k_block) {
                    let k1 = (k0 + k_block).min(inner);
                    for (local, i) in rows.clone().enumerate() {
                        let a_row = &a[i * inner + k0..i * inner + k1];
                        let acc_row = &mut acc[local * n + j0..local * n + j1];
                        let b_rows = b[k0 * n..k1 * n].chunks_exact(n);
                        for (&av, b_row) in a_row.iter().zip(b_rows) {
                            for (slot, &bv) in acc_row.iter_mut().zip(&b_row[j0..j1]) {
                                *slot = T::mul_acc(*slot, av, bv);
                            }
                        }
                    }
                }
            }
            for (o, &slot) in chunk.iter_mut().zip(acc.iter()) {
                *o = T::acc_to_f32(slot, scale);
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantizedTensor;
    use gcod_graph::{CooMatrix, CsrMatrix, QuantWidth};

    fn skewed_matrix(rows: usize, cols: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for r in 0..rows {
            // Every 8th row is a hub touching many columns.
            let degree = if r % 8 == 0 { cols.min(24) } else { 3 };
            for d in 0..degree {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let c = (state as usize + d) % cols;
                let v = ((state % 255) as f32 - 127.0) / 64.0;
                let _ = coo.push(r, c, v);
            }
        }
        coo.to_csr()
    }

    fn patterned(rows: usize, cols: usize, salt: u64) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                ((h % 2048) as f32 - 1024.0) / 256.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data).unwrap()
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn parallel_quant_spmm_is_bit_exact_at_every_worker_count() {
        let m = skewed_matrix(41, 29);
        let x = patterned(29, 13, 7);
        for width in [QuantWidth::I8, QuantWidth::I16] {
            let a_q = gcod_graph::QuantizedCsr::quantize(&m, width);
            let x_q = QuantizedTensor::quantize(&x, width);
            let reference = quant_spmm_reference(&a_q, &x_q).unwrap();
            for workers in [0usize, 1, 2, 3, 5] {
                let kernel = ParallelQuantSpmm::with_workers_and_cutoff(workers, 0);
                let out = kernel.spmm(&a_q, &x_q).unwrap();
                assert_eq!(
                    bits(&out),
                    bits(&reference),
                    "{} workers, {}",
                    workers,
                    width.name()
                );
            }
        }
    }

    #[test]
    fn blocked_quant_matmul_is_bit_exact_for_every_geometry() {
        let a = patterned(23, 17, 1);
        let b = patterned(17, 11, 2);
        for width in [QuantWidth::I8, QuantWidth::I16] {
            let a_q = QuantizedTensor::quantize(&a, width);
            let b_q = QuantizedTensor::quantize(&b, width);
            let reference = quant_matmul_reference(&a_q, &b_q).unwrap();
            for workers in [0usize, 1, 2, 4] {
                let out = quant_matmul(&a_q, &b_q, workers).unwrap();
                assert_eq!(bits(&out), bits(&reference), "{workers}w {}", width.name());
            }
            for (kb, jb) in [(1, 1), (3, 5), (0, 0), (17, 11), (100, 100)] {
                let out = quant_matmul_blocked(&a_q, &b_q, 2, kb, jb).unwrap();
                assert_eq!(
                    bits(&out),
                    bits(&reference),
                    "blocks {kb}x{jb} {}",
                    width.name()
                );
            }
        }
    }

    #[test]
    fn quant_spmm_tracks_f32_spmm_within_quantization_error() {
        let m = skewed_matrix(32, 32);
        let x = patterned(32, 8, 3);
        let f32_out = sparse_ops::spmm(&m, &x).unwrap();
        let a_q = gcod_graph::QuantizedCsr::quantize(&m, QuantWidth::I16);
        let x_q = QuantizedTensor::quantize(&x, QuantWidth::I16);
        let q_out = quant_spmm_reference(&a_q, &x_q).unwrap();
        let rel = f32_out.sub(&q_out).unwrap().norm() / f32_out.norm().max(1e-9);
        assert!(rel < 1e-3, "int16 spmm drifts {rel} from f32");
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let m = skewed_matrix(8, 8);
        let x = patterned(8, 4, 5);
        let a8 = gcod_graph::QuantizedCsr::quantize(&m, QuantWidth::I8);
        let x16 = QuantizedTensor::quantize(&x, QuantWidth::I16);
        assert!(quant_spmm_reference(&a8, &x16).is_err());
        assert!(NaiveQuantSpmm.spmm(&a8, &x16).is_err());
        let a_t8 = QuantizedTensor::quantize(&x, QuantWidth::I8);
        assert!(quant_matmul_reference(&a_t8, &x16).is_err());
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let m = skewed_matrix(6, 9);
        let x = patterned(5, 4, 1);
        let a_q = gcod_graph::QuantizedCsr::quantize(&m, QuantWidth::I8);
        let x_q = QuantizedTensor::quantize(&x, QuantWidth::I8);
        assert!(quant_spmm_reference(&a_q, &x_q).is_err());
        assert!(ParallelQuantSpmm::default().spmm(&a_q, &x_q).is_err());
        let b_q = QuantizedTensor::quantize(&patterned(3, 4, 2), QuantWidth::I8);
        assert!(quant_matmul_reference(&x_q, &b_q).is_err());
        assert!(quant_matmul(&x_q, &b_q, 2).is_err());
    }

    #[test]
    fn degenerate_shapes_are_handled() {
        let empty = CsrMatrix::zeros(0, 0);
        let a_q = gcod_graph::QuantizedCsr::quantize(&empty, QuantWidth::I8);
        let x_q = QuantizedTensor::quantize(&Tensor::zeros(0, 4), QuantWidth::I8);
        assert_eq!(quant_spmm_reference(&a_q, &x_q).unwrap().shape(), (0, 4));
        let a_t = QuantizedTensor::quantize(&Tensor::zeros(2, 0), QuantWidth::I16);
        let b_t = QuantizedTensor::quantize(&Tensor::zeros(0, 3), QuantWidth::I16);
        let out = quant_matmul_reference(&a_t, &b_t).unwrap();
        assert_eq!(out.shape(), (2, 3));
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn kernel_kind_mapping_routes_parallel_only() {
        use crate::kernels::KernelKind;
        assert_eq!(
            quant_kernel_for(KernelKind::ParallelCsr, 2).name(),
            "quant-parallel"
        );
        for kind in [
            KernelKind::NaiveCsr,
            KernelKind::TiledCsr,
            KernelKind::DegreeBinned,
        ] {
            assert_eq!(quant_kernel_for(kind, 2).name(), "quant-naive");
        }
    }
}
