//! Sparse-dense operations: the aggregation-phase kernels.
//!
//! GCN inference is dominated by the SpMM `Â · X` (aggregation) followed by
//! the dense `X · W` (combination). This module implements the sparse side in
//! both traversal orders discussed in the paper's Fig. 5/Fig. 7:
//! row-wise ("gathered") and column-wise ("distributed"). The numerical
//! result is identical; both exist so the accelerator models can count work
//! per dataflow and the tests can cross-check them against each other.

use crate::{NnError, Result, Tensor};
use gcod_graph::{CscMatrix, CsrMatrix};

/// Sparse × dense multiplication `A · X` walking `A` row by row
/// (gathered aggregation).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when `A.cols() != X.rows()`.
pub fn spmm(a: &CsrMatrix, x: &Tensor) -> Result<Tensor> {
    if a.cols() != x.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "spmm: adjacency {}x{} × features {}x{}",
                a.rows(),
                a.cols(),
                x.rows(),
                x.cols()
            ),
        });
    }
    let mut out = Tensor::zeros(a.rows(), x.cols());
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        accumulate_row_segment(cols, vals, x, out.row_mut(r));
    }
    Ok(out)
}

/// Accumulates one CSR row segment into `out_row` — the scalar inner loop
/// (non-zero outer, feature inner) shared by [`spmm`], the parallel
/// kernel's workers and the degree-binned kernel's sparser branch in
/// [`crate::kernels`]. Accumulation order over the segment's non-zeros is
/// their slice order (ascending columns within a CSR row); kernels with
/// their own loop nest (tiled buckets, the register-blocked denser branch)
/// must preserve that per-element order and say why at their definition.
#[inline]
pub(crate) fn accumulate_row_segment(cols: &[u32], vals: &[f32], x: &Tensor, out_row: &mut [f32]) {
    for (&c, &v) in cols.iter().zip(vals) {
        let x_row = x.row(c as usize);
        for (o, &xv) in out_row.iter_mut().zip(x_row) {
            *o += v * xv;
        }
    }
}

/// Sparse × dense multiplication `A · X` walking `A` column by column
/// (distributed aggregation): each column of `A` scatters one row of `X`
/// into the rows of the output, matching the dataflow of the AWB-GCN and
/// GCoD sparser-branch engines.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when `A.rows()` (of the logical
/// matrix) disagrees with `X`.
pub fn spmm_csc(a: &CscMatrix, x: &Tensor) -> Result<Tensor> {
    if a.cols() != x.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "spmm_csc: adjacency {}x{} × features {}x{}",
                a.rows(),
                a.cols(),
                x.rows(),
                x.cols()
            ),
        });
    }
    let mut out = Tensor::zeros(a.rows(), x.cols());
    for col in 0..a.cols() {
        let (rows, vals) = a.col(col);
        if rows.is_empty() {
            continue; // structurally-empty columns are skipped entirely
        }
        let x_row = x.row(col).to_vec();
        for (&r, &v) in rows.iter().zip(vals) {
            let out_row = out.row_mut(r as usize);
            for (o, &xv) in out_row.iter_mut().zip(&x_row) {
                *o += v * xv;
            }
        }
    }
    Ok(out)
}

/// Multiplies the transpose of a sparse matrix with a dense matrix:
/// `Aᵀ · X`. Needed by the manual backward pass of GCN layers
/// (the adjacency is symmetric for undirected graphs, but the general form
/// keeps the gradient code honest).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] when `A.rows() != X.rows()`.
pub fn spmm_transpose(a: &CsrMatrix, x: &Tensor) -> Result<Tensor> {
    if a.rows() != x.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "spmm_transpose: adjacency {}x{} (transposed) × features {}x{}",
                a.rows(),
                a.cols(),
                x.rows(),
                x.cols()
            ),
        });
    }
    let mut out = Tensor::zeros(a.cols(), x.cols());
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        let x_row = x.row(r).to_vec();
        for (&c, &v) in cols.iter().zip(vals) {
            let out_row = out.row_mut(c as usize);
            for (o, &xv) in out_row.iter_mut().zip(&x_row) {
                *o += v * xv;
            }
        }
    }
    Ok(out)
}

/// Number of multiply-accumulate operations an SpMM performs:
/// one MAC per stored non-zero per feature column.
pub fn spmm_macs(nnz: usize, feature_cols: usize) -> u64 {
    nnz as u64 * feature_cols as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::CooMatrix;

    fn small_adj() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 4);
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3), (0, 3)] {
            coo.push(a, b, 1.0).unwrap();
            coo.push(b, a, 1.0).unwrap();
        }
        coo.to_csr()
    }

    fn features() -> Tensor {
        Tensor::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, 2.0, -1.0, 3.0]).unwrap()
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let adj = small_adj();
        let x = features();
        // Build the dense version of the adjacency matrix.
        let mut dense = Tensor::zeros(4, 4);
        for (r, c, v) in adj.iter() {
            dense.set(r, c, v);
        }
        let expected = dense.matmul(&x).unwrap();
        let got = spmm(&adj, &x).unwrap();
        for (a, b) in got.data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn csc_and_csr_spmm_agree() {
        let adj = small_adj();
        let x = features();
        let row_wise = spmm(&adj, &x).unwrap();
        let col_wise = spmm_csc(&adj.to_csc(), &x).unwrap();
        for (a, b) in row_wise.data().iter().zip(col_wise.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_spmm_agrees_with_explicit_transpose() {
        let adj = small_adj();
        let x = features();
        let via_helper = spmm_transpose(&adj, &x).unwrap();
        let via_transpose = spmm(&adj.transpose(), &x).unwrap();
        for (a, b) in via_helper.data().iter().zip(via_transpose.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let adj = small_adj();
        let wrong = Tensor::zeros(3, 2);
        assert!(spmm(&adj, &wrong).is_err());
        assert!(spmm_csc(&adj.to_csc(), &wrong).is_err());
        assert!(spmm_transpose(&adj, &wrong).is_err());
    }

    #[test]
    fn macs_counter() {
        assert_eq!(spmm_macs(10, 16), 160);
        assert_eq!(spmm_macs(0, 16), 0);
    }

    #[test]
    fn empty_columns_are_skipped() {
        // Column 2 has no entries; results must still be correct.
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0).unwrap();
        coo.push(2, 0, 1.0).unwrap();
        let csc = coo.to_csc();
        let x = Tensor::from_vec(3, 1, vec![1.0, 10.0, 100.0]).unwrap();
        let out = spmm_csc(&csc, &x).unwrap();
        assert_eq!(out.data(), &[20.0, 0.0, 1.0]);
    }
}
