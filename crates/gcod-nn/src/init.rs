//! Weight initialisation.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Glorot/Xavier uniform initialisation: samples from
/// `U(-limit, limit)` with `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// The limit matches the initialisation used by the reference GCN
/// implementation the paper builds on.
pub fn glorot_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let limit = (6.0 / (rows + cols) as f64).sqrt();
    let data = (0..rows * cols)
        .map(|_| ((rng.gen::<f64>() * 2.0 - 1.0) * limit) as f32)
        .collect();
    Tensor::from_vec(rows, cols, data).expect("length matches by construction")
}

/// Zero initialisation (used for biases).
pub fn zeros(rows: usize, cols: usize) -> Tensor {
    Tensor::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glorot_respects_limit() {
        let w = glorot_uniform(64, 32, 0);
        let limit = (6.0f64 / 96.0).sqrt() as f32;
        assert!(w.data().iter().all(|&v| v.abs() <= limit));
    }

    #[test]
    fn glorot_is_seeded() {
        assert_eq!(glorot_uniform(8, 8, 1), glorot_uniform(8, 8, 1));
        assert_ne!(glorot_uniform(8, 8, 1), glorot_uniform(8, 8, 2));
    }

    #[test]
    fn glorot_is_roughly_centred() {
        let w = glorot_uniform(100, 100, 3);
        assert!(w.mean().abs() < 0.01);
    }

    #[test]
    fn zeros_shape() {
        let b = zeros(1, 16);
        assert_eq!(b.shape(), (1, 16));
        assert!(b.data().iter().all(|&v| v == 0.0));
    }
}
