//! First-order optimisers.
//!
//! The paper trains all models with Adam (lr = 0.01) for 400 epochs; SGD is
//! provided as well for the ablation tests of the training pipeline.

use crate::Tensor;

/// Adam optimiser with bias-corrected first and second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    weight_decay: f32,
    step: u64,
    first_moments: Vec<Tensor>,
    second_moments: Vec<Tensor>,
}

impl Adam {
    /// Creates an Adam optimiser with the paper's default learning rate 0.01.
    pub fn new(learning_rate: f32) -> Self {
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.0,
            step: 0,
            first_moments: Vec::new(),
            second_moments: Vec::new(),
        }
    }

    /// Adds decoupled weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Current step counter.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// Applies one update step. `params` and `grads` must be parallel slices
    /// with matching shapes; moment buffers are created lazily on the first
    /// call.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or a shape changes between
    /// calls.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.first_moments.is_empty() {
            self.first_moments = grads
                .iter()
                .map(|g| Tensor::zeros(g.rows(), g.cols()))
                .collect();
            self.second_moments = self.first_moments.clone();
        }
        self.step += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((param, grad), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.first_moments.iter_mut().zip(&mut self.second_moments))
        {
            assert_eq!(
                param.shape(),
                grad.shape(),
                "parameter/gradient shape mismatch"
            );
            let pdata = param.data_mut();
            let gdata = grad.data();
            let mdata = m.data_mut();
            let vdata = v.data_mut();
            for i in 0..pdata.len() {
                let g = gdata[i] + self.weight_decay * pdata[i];
                mdata[i] = self.beta1 * mdata[i] + (1.0 - self.beta1) * g;
                vdata[i] = self.beta2 * vdata[i] + (1.0 - self.beta2) * g * g;
                let m_hat = mdata[i] / bias1;
                let v_hat = vdata[i] / bias2;
                pdata[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(learning_rate: f32) -> Self {
        Self { learning_rate }
    }

    /// Applies one update step.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()`.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        for (param, grad) in params.iter_mut().zip(grads) {
            let pdata = param.data_mut();
            for (p, &g) in pdata.iter_mut().zip(grad.data()) {
                *p -= self.learning_rate * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimises f(x) = (x - 3)^2 with gradient 2(x - 3).
    fn quadratic_descent<F: FnMut(&mut Tensor, &Tensor)>(mut apply: F) -> f32 {
        let mut x = Tensor::from_vec(1, 1, vec![10.0]).unwrap();
        for _ in 0..300 {
            let g = Tensor::from_vec(1, 1, vec![2.0 * (x.get(0, 0) - 3.0)]).unwrap();
            apply(&mut x, &g);
        }
        x.get(0, 0)
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.1);
        let x = quadratic_descent(|x, g| adam.step(&mut [x], std::slice::from_ref(g)));
        assert!((x - 3.0).abs() < 0.1, "converged to {x}");
        assert_eq!(adam.steps_taken(), 300);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.05);
        let x = quadratic_descent(|x, g| sgd.step(&mut [x], std::slice::from_ref(g)));
        assert!((x - 3.0).abs() < 0.01, "converged to {x}");
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut adam = Adam::new(0.01).with_weight_decay(0.5);
        let mut x = Tensor::from_vec(1, 1, vec![5.0]).unwrap();
        let zero_grad = Tensor::zeros(1, 1);
        for _ in 0..200 {
            adam.step(&mut [&mut x], std::slice::from_ref(&zero_grad));
        }
        assert!(x.get(0, 0).abs() < 5.0, "decay should shrink the parameter");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut adam = Adam::new(0.01);
        let mut x = Tensor::zeros(1, 1);
        adam.step(&mut [&mut x], &[]);
    }
}
