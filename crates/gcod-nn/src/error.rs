//! Error type for the neural-network substrate.

use std::fmt;

/// Errors produced by tensors, models and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human readable description of the incompatibility.
        context: String,
    },
    /// A model was applied to a graph whose dimensions do not match its
    /// configuration.
    ModelGraphMismatch {
        /// Description of which dimension disagrees.
        context: String,
    },
    /// An invalid hyper-parameter was supplied.
    InvalidHyperparameter {
        /// Name of the hyper-parameter.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            NnError::ModelGraphMismatch { context } => {
                write!(f, "model/graph mismatch: {context}")
            }
            NnError::InvalidHyperparameter { name, reason } => {
                write!(f, "invalid hyper-parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let err = NnError::ShapeMismatch {
            context: "2x3 vs 4x5".to_string(),
        };
        assert!(err.to_string().contains("2x3 vs 4x5"));
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<NnError>();
    }
}
