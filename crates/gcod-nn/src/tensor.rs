//! Row-major dense matrix used throughout the GNN substrate.

use crate::{NnError, Result};
use serde::{Deserialize, Serialize};

/// A dense 2-D tensor stored row-major in `f32`.
///
/// This deliberately stays a plain matrix: every operation GCN training
/// needs (dense matmul, transpose, row-wise softmax, ReLU, elementwise
/// arithmetic, reductions) is provided as a method, and the sparse side
/// lives in [`crate::sparse_ops`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a tensor from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                context: format!("data length {} != {rows} * {cols}", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data slice (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        self.data[r * self.cols + c] = value;
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dense matrix multiplication `self × other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul: {}x{} × {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Tensor::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous over `other` and
        // `out`, which matters for the larger synthetic graphs.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b, "add")
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b, "sub")
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn hadamard(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a * b, "hadamard")
    }

    fn zip_with<F>(&self, other: &Tensor, op: F, name: &str) -> Result<Tensor>
    where
        F: Fn(f32, f32) -> f32,
    {
        if self.shape() != other.shape() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "{name}: {}x{} vs {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| op(a, b))
            .collect();
        Ok(Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Adds `row` to every row of the tensor (bias broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `row.cols() != self.cols()` or
    /// `row.rows() != 1`.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Result<Tensor> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "broadcast row must be 1x{}, got {}x{}",
                    self.cols, row.rows, row.cols
                ),
            });
        }
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += row.data[c];
            }
        }
        Ok(out)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Applies a function elementwise.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// ReLU non-linearity.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// Gradient mask of the ReLU: 1 where the input was positive, else 0.
    pub fn relu_mask(&self) -> Tensor {
        self.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Row-wise maximum combined elementwise with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, f32::max, "maximum")
    }

    /// Index of the maximum value in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("values are finite"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Concatenates two tensors with the same number of rows along columns.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Result<Tensor> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!("concat rows {} vs {}", self.rows, other.rows),
            });
        }
        let mut out = Tensor::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut eye = Tensor::zeros(3, 3);
        for i in 0..3 {
            eye.set(i, i, 1.0);
        }
        assert_eq!(a.matmul(&eye).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn relu_and_mask() {
        let a = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(a.relu_mask().data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Largest logit keeps the largest probability.
        assert_eq!(s.argmax_rows(), vec![2, 2]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Tensor::from_vec(1, 2, vec![1000.0, 1001.0]).unwrap();
        let s = a.softmax_rows();
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.maximum(&b).unwrap().data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::zeros(2, 3);
        let bias = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let out = x.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(x.add_row_broadcast(&Tensor::zeros(1, 2)).is_err());
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(Tensor::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn concat_cols_stacks_features() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
        assert!(a.concat_cols(&Tensor::zeros(3, 1)).is_err());
    }
}
