//! Row-major dense matrix used throughout the GNN substrate.

use crate::{NnError, Result};
use gcod_runtime::Pool;
use serde::{Deserialize, Serialize};

/// Rows of the right-hand matrix one blocked-matmul inner pass streams: a
/// 64-row × 128-column f32 block is 32 KiB, L1/L2-resident on any core, and
/// reused across every output row of a worker's range.
const MATMUL_K_BLOCK: usize = 64;

/// Output columns one blocked-matmul pass touches before moving on; only
/// bites for very wide outputs, keeping the output-row segment and the
/// right-hand block cache-resident together.
const MATMUL_COL_BLOCK: usize = 1024;

/// Below this many elements a transpose is pure-serial: the pool dispatch
/// cost (see [`crate::POOL_DISPATCH_MIN_MACS`]) dominates smaller moves.
const TRANSPOSE_PARALLEL_MIN_ELEMS: usize = 1 << 16;

/// A dense 2-D tensor stored row-major in `f32`.
///
/// This deliberately stays a plain matrix: every operation GCN training
/// needs (dense matmul, transpose, row-wise softmax, ReLU, elementwise
/// arithmetic, reductions) is provided as a method, and the sparse side
/// lives in [`crate::sparse_ops`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a tensor from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                context: format!("data length {} != {rows} * {cols}", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Underlying data slice (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying data slice (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: f32) {
        self.data[r * self.cols + c] = value;
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Dense matrix multiplication `self × other`: cache-blocked and
    /// pool-parallel with the default block geometry and the global pool's
    /// lane count.
    ///
    /// Bit-for-bit identical to [`Tensor::matmul_serial`] for every worker
    /// count and block size: each output element accumulates its `k` terms
    /// in the same ascending order regardless of how rows are split across
    /// workers or how `k`/column blocks tile the traversal, so f32 summation
    /// order — and therefore the result — never changes.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        self.matmul_with(other, 0)
    }

    /// [`Tensor::matmul`] with an explicit worker count (0 = the global
    /// pool's lane count). Results are identical for every count; only
    /// wall-clock changes.
    ///
    /// Products too small to amortise a pool submission stay on the calling
    /// thread *regardless* of the requested count — the worker knob bounds
    /// parallelism, it never forces dispatch overhead onto tiny operations.
    /// Use [`Tensor::matmul_blocked`] to drive the pooled path
    /// unconditionally (the differential tests do).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul_with(&self, other: &Tensor, workers: usize) -> Result<Tensor> {
        let macs = self.rows as u64 * self.cols as u64 * other.cols as u64;
        let workers = if macs < crate::POOL_DISPATCH_MIN_MACS {
            1
        } else {
            workers
        };
        self.matmul_blocked(other, workers, MATMUL_K_BLOCK, MATMUL_COL_BLOCK)
    }

    /// Fully explicit blocked matmul: `workers` parallel lanes (0 = pool
    /// default), `k_block` rows of `other` per inner pass and `col_block`
    /// output columns per tile (0 = the whole axis as one block). An
    /// explicit worker count is honoured unconditionally — no small-product
    /// cut-off — so tests can drive the pooled path on tiny fixtures.
    ///
    /// Exposed for the differential tests; every geometry is bit-identical
    /// to [`Tensor::matmul_serial`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul_blocked(
        &self,
        other: &Tensor,
        workers: usize,
        k_block: usize,
        col_block: usize,
    ) -> Result<Tensor> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul: {}x{} × {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let (m, inner, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        if m == 0 || inner == 0 || n == 0 {
            return Ok(out);
        }
        let k_block = if k_block == 0 { inner } else { k_block };
        let col_block = if col_block == 0 { n } else { col_block };
        let pool = Pool::global();
        let macs = m as u64 * inner as u64 * n as u64;
        let workers = if workers == 0 && macs < crate::POOL_DISPATCH_MIN_MACS {
            1
        } else {
            pool.effective_workers(workers)
        };
        pool.parallel_for_ranges(
            m,
            out.data_mut(),
            workers,
            |_| 1,
            |rows, chunk| {
                // j-tile outer, k-tile middle: for any fixed output element the
                // k tiles — and the `k`s inside each tile — arrive in ascending
                // order, matching the serial i-k-j reference exactly. The tile
                // of `other` loaded by one (j0, k0) pass stays cache-resident
                // across every row of this worker's range.
                for j0 in (0..n).step_by(col_block) {
                    let j1 = (j0 + col_block).min(n);
                    for k0 in (0..inner).step_by(k_block) {
                        let k1 = (k0 + k_block).min(inner);
                        for (local, i) in rows.clone().enumerate() {
                            let a_row = &self.data[i * inner + k0..i * inner + k1];
                            let out_row = &mut chunk[local * n + j0..local * n + j1];
                            let b_rows = other.data[k0 * n..k1 * n].chunks_exact(n);
                            for (&a, b_row) in a_row.iter().zip(b_rows) {
                                for (o, &b) in out_row.iter_mut().zip(&b_row[j0..j1]) {
                                    *o += a * b;
                                }
                            }
                        }
                    }
                }
            },
        );
        Ok(out)
    }

    /// The serial reference matmul: the plain i-k-j scalar loop, kept as the
    /// oracle the blocked/parallel implementation is differentially tested
    /// against.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul_serial(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "matmul: {}x{} × {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Tensor::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop contiguous over `other` and
        // `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transpose. Pool-parallel over output rows for large tensors; pure
    /// data movement, so the result is trivially identical for every worker
    /// count.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        if self.data.is_empty() {
            return out;
        }
        let workers = if self.data.len() < TRANSPOSE_PARALLEL_MIN_ELEMS {
            1
        } else {
            0 // pool default
        };
        let (rows, cols) = (self.rows, self.cols);
        let data = &self.data;
        Pool::global().parallel_for_ranges(
            cols,
            out.data_mut(),
            workers,
            |_| 1,
            |col_range, chunk| {
                for (local, c) in col_range.enumerate() {
                    let out_row = &mut chunk[local * rows..(local + 1) * rows];
                    for (r, slot) in out_row.iter_mut().enumerate() {
                        *slot = data[r * cols + c];
                    }
                }
            },
        );
        out
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a + b, "add")
    }

    /// Elementwise addition in place (`self += other`), avoiding the
    /// allocation of [`Tensor::add`]. Numerically identical to it.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "add_assign: {}x{} vs {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a - b, "sub")
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn hadamard(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, |a, b| a * b, "hadamard")
    }

    /// Combines two same-shape tensors elementwise with `op` (`name` labels
    /// the shape error). This is the primitive behind [`Tensor::add`],
    /// [`Tensor::hadamard`] and friends; it is public so fused elementwise
    /// passes (e.g. the ReLU backward) can run in one allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn zip_with<F>(&self, other: &Tensor, op: F, name: &str) -> Result<Tensor>
    where
        F: Fn(f32, f32) -> f32,
    {
        if self.shape() != other.shape() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "{name}: {}x{} vs {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| op(a, b))
            .collect();
        Ok(Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Adds `row` to every row of the tensor (bias broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `row.cols() != self.cols()` or
    /// `row.rows() != 1`.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Result<Tensor> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "broadcast row must be 1x{}, got {}x{}",
                    self.cols, row.rows, row.cols
                ),
            });
        }
        let mut out = self.clone();
        out.add_row_broadcast_in_place(row)?;
        Ok(out)
    }

    /// Adds `row` to every row of the tensor in place (allocation-free form
    /// of [`Tensor::add_row_broadcast`], numerically identical).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `row.cols() != self.cols()` or
    /// `row.rows() != 1`.
    pub fn add_row_broadcast_in_place(&mut self, row: &Tensor) -> Result<()> {
        if row.rows != 1 || row.cols != self.cols {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "broadcast row must be 1x{}, got {}x{}",
                    self.cols, row.rows, row.cols
                ),
            });
        }
        for chunk in self.data.chunks_exact_mut(self.cols.max(1)) {
            for (slot, &b) in chunk.iter_mut().zip(&row.data) {
                *slot += b;
            }
        }
        Ok(())
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * s).collect(),
        }
    }

    /// Applies a function elementwise.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// ReLU non-linearity.
    pub fn relu(&self) -> Tensor {
        self.map(|v| v.max(0.0))
    }

    /// ReLU in place (allocation-free form of [`Tensor::relu`], numerically
    /// identical).
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            *v = v.max(0.0);
        }
    }

    /// Gradient mask of the ReLU: 1 where the input was positive, else 0.
    pub fn relu_mask(&self) -> Tensor {
        self.map(|v| if v > 0.0 { 1.0 } else { 0.0 })
    }

    /// Row-wise softmax (numerically stabilised).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = &mut out.data[r * self.cols..(r + 1) * self.cols];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Row-wise maximum combined elementwise with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when shapes differ.
    pub fn maximum(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, f32::max, "maximum")
    }

    /// Stacks the given rows (in order, duplicates allowed) into a new
    /// `rows.len() × cols` tensor.
    ///
    /// This is the gather half of batched inference serving: a fused forward
    /// pass computes logits for the whole graph once, and each request's
    /// node rows are stacked out of that one result. Each output row is a
    /// bitwise copy, so gathering commutes exactly with any per-row
    /// computation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when any row index is out of
    /// bounds.
    pub fn gather_rows(&self, rows: &[usize]) -> Result<Tensor> {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            if r >= self.rows {
                return Err(NnError::ShapeMismatch {
                    context: format!("row index {r} out of bounds for {} rows", self.rows),
                });
            }
            data.extend_from_slice(self.row(r));
        }
        Ok(Tensor {
            rows: rows.len(),
            cols: self.cols,
            data,
        })
    }

    /// Index of the maximum value in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("values are finite"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Concatenates two tensors with the same number of rows along columns.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the row counts differ.
    pub fn concat_cols(&self, other: &Tensor) -> Result<Tensor> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                context: format!("concat rows {} vs {}", self.rows, other.rows),
            });
        }
        let mut out = Tensor::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(other.row(r));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let mut eye = Tensor::zeros(3, 3);
        for i in 0..3 {
            eye.set(i, i, 1.0);
        }
        assert_eq!(a.matmul(&eye).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(NnError::ShapeMismatch { .. })));
        assert!(a.matmul_serial(&b).is_err());
        assert!(a.matmul_blocked(&b, 2, 1, 1).is_err());
    }

    fn patterned(rows: usize, cols: usize, salt: u64) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
                ((h % 1024) as f32 - 512.0) / 128.0
            })
            .collect();
        Tensor::from_vec(rows, cols, data).unwrap()
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_serial_reference() {
        let a = patterned(37, 23, 1);
        let b = patterned(23, 19, 2);
        let reference = a.matmul_serial(&b).unwrap();
        assert_eq!(bits(&a.matmul(&b).unwrap()), bits(&reference));
        for workers in [0usize, 1, 2, 4] {
            let out = a.matmul_with(&b, workers).unwrap();
            assert_eq!(bits(&out), bits(&reference), "{workers} workers");
        }
        for (kb, jb) in [(1, 1), (3, 5), (0, 0), (23, 19), (100, 100)] {
            let out = a.matmul_blocked(&b, 2, kb, jb).unwrap();
            assert_eq!(bits(&out), bits(&reference), "blocks {kb}x{jb}");
        }
    }

    #[test]
    fn matmul_handles_degenerate_shapes() {
        // Zero rows, zero inner dimension, zero columns.
        assert_eq!(
            Tensor::zeros(0, 3)
                .matmul(&Tensor::zeros(3, 2))
                .unwrap()
                .shape(),
            (0, 2)
        );
        assert_eq!(
            Tensor::zeros(2, 0).matmul(&Tensor::zeros(0, 4)).unwrap(),
            Tensor::zeros(2, 4)
        );
        assert_eq!(
            Tensor::zeros(2, 3)
                .matmul(&Tensor::zeros(3, 0))
                .unwrap()
                .shape(),
            (2, 0)
        );
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn relu_and_mask() {
        let a = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]).unwrap();
        assert_eq!(a.relu().data(), &[0.0, 0.0, 2.0, 0.0]);
        assert_eq!(a.relu_mask().data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Largest logit keeps the largest probability.
        assert_eq!(s.argmax_rows(), vec![2, 2]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Tensor::from_vec(1, 2, vec![1000.0, 1001.0]).unwrap();
        let s = a.softmax_rows();
        assert!(s.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.maximum(&b).unwrap().data(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::zeros(2, 3);
        let bias = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let out = x.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
        assert!(x.add_row_broadcast(&Tensor::zeros(1, 2)).is_err());
    }

    #[test]
    fn in_place_ops_match_their_allocating_forms() {
        let a = patterned(5, 4, 3);
        let b = patterned(5, 4, 9);
        let bias = patterned(1, 4, 5);

        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        assert_eq!(bits(&sum), bits(&a.add(&b).unwrap()));
        assert!(sum.add_assign(&Tensor::zeros(2, 2)).is_err());

        let mut biased = a.clone();
        biased.add_row_broadcast_in_place(&bias).unwrap();
        assert_eq!(bits(&biased), bits(&a.add_row_broadcast(&bias).unwrap()));
        assert!(biased
            .add_row_broadcast_in_place(&Tensor::zeros(1, 3))
            .is_err());

        let mut rectified = a.clone();
        rectified.relu_in_place();
        assert_eq!(bits(&rectified), bits(&a.relu()));
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(Tensor::zeros(0, 0).mean(), 0.0);
    }

    #[test]
    fn concat_cols_stacks_features() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = a.concat_cols(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
        assert!(a.concat_cols(&Tensor::zeros(3, 1)).is_err());
    }
}
