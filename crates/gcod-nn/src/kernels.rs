//! Selectable SpMM kernel implementations for the aggregation phase.
//!
//! GCoD's speedups come from making the sparse aggregation regular enough to
//! execute fast — the denser/sparser branch split of the paper exists
//! precisely to feed tuned sparse kernels. This module is the CPU-side
//! counterpart: a [`SpmmKernel`] trait with four interchangeable
//! implementations, selectable per training run via [`KernelKind`]:
//!
//! * [`NaiveCsr`] — the reference scalar CSR loop
//!   ([`crate::sparse_ops::spmm`]), one row at a time,
//! * [`TiledCsr`] — cache-blocked traversal: rows in tiles, columns in
//!   tiles, so the feature rows touched by one column tile stay hot in cache
//!   across the whole row tile (LW-GCN-style PE tiling, on cores),
//! * [`ParallelCsr`] — row-range parallelism over the persistent
//!   [`gcod_runtime::Pool`] worker pool (no per-call thread spawns), ranges
//!   balanced by non-zero count (Accel-GCN-style row binning, on threads),
//! * [`DegreeBinned`] — per-row dispatch mirroring GCoD's denser/sparser
//!   branch split: high-degree (hub) rows take a feature-register-blocked
//!   inner loop, sparse rows the plain gather loop.
//!
//! **Every kernel is bit-for-bit identical to [`NaiveCsr`]**: each output
//! row accumulates its non-zeros in ascending column order regardless of
//! tiling, threading or binning, so f32 summation order — and therefore the
//! result — never changes. Kernel choice affects wall-clock only. The
//! differential harness in `tests/spmm_differential.rs` enforces this, and
//! the golden-report tests in `gcod-bench` pin that simulated-perf results
//! are kernel-independent.
//!
//! # Example
//!
//! ```
//! use gcod_nn::kernels::{KernelKind, SpmmKernel};
//! use gcod_nn::Tensor;
//! use gcod_graph::CsrMatrix;
//!
//! let a = CsrMatrix::identity(3);
//! let x = Tensor::full(3, 2, 1.5);
//! let reference = KernelKind::NaiveCsr.build().spmm(&a, &x).unwrap();
//! for kind in KernelKind::all() {
//!     let out = kind.build().spmm(&a, &x).unwrap();
//!     assert_eq!(out.data(), reference.data(), "{}", kind.name());
//! }
//! ```

use crate::sparse_ops::{self, accumulate_row_segment};
use crate::{NnError, Result, Tensor};
use gcod_graph::CsrMatrix;
use gcod_runtime::Pool;
use serde::{Deserialize, Serialize};

/// A sparse × dense multiplication kernel: `A · X` with `A` in CSR.
///
/// Implementations must be numerically identical to [`NaiveCsr`] (same f32
/// accumulation order per output element) — they are free to differ only in
/// traversal schedule, threading and memory behaviour.
pub trait SpmmKernel: std::fmt::Debug + Send + Sync {
    /// Stable kernel name used in reports and benchmark labels.
    fn name(&self) -> &'static str;

    /// Computes `A · X`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `A.cols() != X.rows()`.
    fn spmm(&self, a: &CsrMatrix, x: &Tensor) -> Result<Tensor>;

    /// Computes `Aᵀ · X` (the backward-pass form).
    ///
    /// The default is the reference scalar scatter loop; kernels with a
    /// faster schedule may override it, but must keep the result bit-for-bit
    /// identical (the scatter accumulates each output row in ascending
    /// source-row order, which equals the order of a row-wise walk over
    /// `Aᵀ`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `A.rows() != X.rows()`.
    fn spmm_transpose(&self, a: &CsrMatrix, x: &Tensor) -> Result<Tensor> {
        sparse_ops::spmm_transpose(a, x)
    }

    /// Multiply-accumulate operations this kernel performs for `A · X`.
    ///
    /// Identical for every kernel by construction — the schedule changes,
    /// the work does not. The accelerator models rely on this invariant when
    /// they charge MACs independently of the kernel that trained the model.
    fn macs(&self, a: &CsrMatrix, x: &Tensor) -> u64 {
        sparse_ops::spmm_macs(a.nnz(), x.cols())
    }
}

/// Selects one of the built-in [`SpmmKernel`] implementations with its
/// default parameters. This is the unit of configuration plumbed through
/// [`GcodConfig`](../../gcod_core/struct.GcodConfig.html) and
/// `Experiment::kernel(..)`; the concrete kernel structs remain available
/// for custom tile sizes / worker counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelKind {
    /// The reference scalar CSR loop.
    #[default]
    NaiveCsr,
    /// Cache-blocked row×column tiling.
    TiledCsr,
    /// Row-range parallelism over a scoped thread pool (auto worker count).
    ParallelCsr,
    /// Dense/sparse row dispatch by degree threshold.
    DegreeBinned,
}

impl KernelKind {
    /// All kernel kinds, reference first.
    pub fn all() -> [KernelKind; 4] {
        [
            KernelKind::NaiveCsr,
            KernelKind::TiledCsr,
            KernelKind::ParallelCsr,
            KernelKind::DegreeBinned,
        ]
    }

    /// Stable lowercase name (matches the benchmark labels).
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::NaiveCsr => "naive-csr",
            KernelKind::TiledCsr => "tiled-csr",
            KernelKind::ParallelCsr => "parallel-csr",
            KernelKind::DegreeBinned => "degree-binned",
        }
    }

    /// Parses a kernel name as printed by [`KernelKind::name`].
    pub fn by_name(name: &str) -> Option<KernelKind> {
        KernelKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Instantiates the kernel with its default parameters.
    pub fn build(self) -> Box<dyn SpmmKernel> {
        self.build_with_workers(0)
    }

    /// Instantiates the kernel with an explicit worker count for the
    /// parallel variant (0 = the global pool's lane count; ignored by the
    /// serial kernels, whose schedule has no worker knob).
    pub fn build_with_workers(self, workers: usize) -> Box<dyn SpmmKernel> {
        match self {
            KernelKind::NaiveCsr => Box::new(NaiveCsr),
            KernelKind::TiledCsr => Box::new(TiledCsr::default()),
            KernelKind::ParallelCsr => Box::new(ParallelCsr::with_workers(workers)),
            KernelKind::DegreeBinned => Box::new(DegreeBinned::default()),
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn check_spmm_shapes(kernel: &str, a: &CsrMatrix, x: &Tensor) -> Result<()> {
    if a.cols() != x.rows() {
        return Err(NnError::ShapeMismatch {
            context: format!(
                "spmm[{kernel}]: adjacency {}x{} × features {}x{}",
                a.rows(),
                a.cols(),
                x.rows(),
                x.cols()
            ),
        });
    }
    Ok(())
}

/// The reference kernel: the plain scalar CSR loop of
/// [`crate::sparse_ops::spmm`], renamed into the kernel suite.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveCsr;

impl SpmmKernel for NaiveCsr {
    fn name(&self) -> &'static str {
        "naive-csr"
    }

    fn spmm(&self, a: &CsrMatrix, x: &Tensor) -> Result<Tensor> {
        sparse_ops::spmm(a, x)
    }
}

/// Cache-blocked CSR kernel: rows are processed in tiles, and within a row
/// tile the non-zeros are regrouped by column tile and consumed tile-major,
/// so the `X` rows referenced by one column tile are reused across every row
/// of the row tile while still cache-resident.
///
/// The regrouping is a single counting pass over each row's entries
/// (no per-tile search), using [`CsrMatrix::tile_bounds`] for the tiling.
/// Within a bucket the entries keep row-major, ascending-column order, and
/// buckets are drained in ascending column-tile order — so every output row
/// still accumulates its non-zeros in ascending column order, bit-identical
/// to [`NaiveCsr`].
#[derive(Debug, Clone, Copy)]
pub struct TiledCsr {
    /// Rows per tile (amortises the bucket reset cost).
    pub row_tile: usize,
    /// Columns per tile (bounds how many `X` rows one inner pass touches).
    pub col_tile: usize,
}

impl Default for TiledCsr {
    fn default() -> Self {
        // 512 feature rows × 64 f32 features ≈ 128 KiB of X per column tile
        // — L2-resident on any current core.
        Self {
            row_tile: 256,
            col_tile: 512,
        }
    }
}

impl TiledCsr {
    /// A tiled kernel with explicit tile sizes (0 = one tile for that axis).
    pub fn with_tiles(row_tile: usize, col_tile: usize) -> Self {
        Self { row_tile, col_tile }
    }
}

impl SpmmKernel for TiledCsr {
    fn name(&self) -> &'static str {
        "tiled-csr"
    }

    fn spmm(&self, a: &CsrMatrix, x: &Tensor) -> Result<Tensor> {
        check_spmm_shapes(self.name(), a, x)?;
        let col_tiles = CsrMatrix::tile_bounds(a.cols(), self.col_tile);
        if col_tiles.len() <= 1 {
            // A single column tile degenerates to the reference traversal.
            return sparse_ops::spmm(a, x);
        }
        let col_tile = if self.col_tile == 0 {
            a.cols()
        } else {
            self.col_tile
        };
        let mut out = Tensor::zeros(a.rows(), x.cols());
        // (row, col, value) triplets of the current row tile, bucketed by
        // column tile; allocations are reused across row tiles.
        let mut buckets: Vec<Vec<(u32, u32, f32)>> = vec![Vec::new(); col_tiles.len()];
        for (r0, r1) in CsrMatrix::tile_bounds(a.rows(), self.row_tile) {
            for bucket in &mut buckets {
                bucket.clear();
            }
            for r in r0..r1 {
                let (cols, vals) = a.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    buckets[c as usize / col_tile].push((r as u32, c, v));
                }
            }
            for bucket in &buckets {
                for &(r, c, v) in bucket {
                    let x_row = x.row(c as usize);
                    for (o, &xv) in out.row_mut(r as usize).iter_mut().zip(x_row) {
                        *o += v * xv;
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Row-range-parallel kernel: output rows are partitioned into contiguous
/// ranges balanced by non-zero count and executed on the persistent
/// [`gcod_runtime::Pool`] — workers are spawned once per process and reused
/// by every call, so the per-call cost is a queue submission, not a thread
/// spawn. That is also why the scalar cut-off
/// ([`ParallelCsr::scalar_cutoff_macs`]) sits 16× below the 1M-MAC
/// threshold the spawn-per-call implementation needed: a 2 000-node replica
/// at 16 features (~320k MACs) now takes the parallel path.
///
/// Each output row is produced entirely by one worker with the same inner
/// loop as [`NaiveCsr`], so the result is bit-identical and — because the
/// partition only decides *who* computes a row, never *how* — deterministic
/// across worker counts.
#[derive(Debug, Clone, Copy)]
pub struct ParallelCsr {
    /// Parallel lanes; 0 (the default) selects the global pool's lane count
    /// (`GCOD_WORKERS` / [`std::thread::available_parallelism`]).
    pub workers: usize,
    /// MAC count below which `spmm` stays on the calling thread instead of
    /// submitting to the pool, whatever the worker count — the worker knob
    /// bounds parallelism, it never forces dispatch overhead onto tiny
    /// operations. Defaults to the crate-wide pool-dispatch cut-off; 0
    /// forces the pooled path on any size (the differential tests use this
    /// to drive the range-split machinery on small fixtures).
    pub scalar_cutoff_macs: u64,
}

impl Default for ParallelCsr {
    fn default() -> Self {
        Self {
            workers: 0,
            scalar_cutoff_macs: crate::POOL_DISPATCH_MIN_MACS,
        }
    }
}

impl ParallelCsr {
    /// A parallel kernel with an explicit worker count (0 = auto) and the
    /// default small-operation cut-off.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers,
            ..Self::default()
        }
    }

    /// A parallel kernel with explicit worker count *and* scalar cut-off
    /// (0 = always take the pooled path, however small the operation).
    pub fn with_workers_and_cutoff(workers: usize, scalar_cutoff_macs: u64) -> Self {
        Self {
            workers,
            scalar_cutoff_macs,
        }
    }

    /// The worker count actually used for a matrix with `rows` rows.
    fn effective_workers(&self, rows: usize) -> usize {
        Pool::global()
            .effective_workers(self.workers)
            .clamp(1, rows.max(1))
    }

    /// Splits `[0, rows)` into at most `workers` contiguous ranges with
    /// roughly equal non-zero counts (row-degree-binned load balancing).
    /// Delegates to [`gcod_runtime::split_by_cost`] with the row's stored
    /// non-zero count as the cost — exactly the split `spmm` hands to
    /// [`Pool::parallel_for_ranges`]; kept as a named helper so the tests
    /// can pin its invariants on real matrices.
    #[cfg(test)]
    fn balanced_row_ranges(a: &CsrMatrix, workers: usize) -> Vec<std::ops::Range<usize>> {
        if a.rows() == 0 {
            return std::iter::once(0..0).collect();
        }
        let indptr = a.indptr();
        gcod_runtime::split_by_cost(a.rows(), workers, |r| indptr[r + 1] - indptr[r])
    }
}

impl SpmmKernel for ParallelCsr {
    fn name(&self) -> &'static str {
        "parallel-csr"
    }

    fn spmm(&self, a: &CsrMatrix, x: &Tensor) -> Result<Tensor> {
        check_spmm_shapes(self.name(), a, x)?;
        let rows = a.rows();
        let cols = x.cols();
        let workers = self.effective_workers(rows);
        // Matrices too small to amortise even a pool submission stay on the
        // calling thread regardless of the worker count; tests drive the
        // pooled path on small fixtures by zeroing `scalar_cutoff_macs`.
        let too_small = sparse_ops::spmm_macs(a.nnz(), cols) < self.scalar_cutoff_macs;
        if workers <= 1 || rows == 0 || cols == 0 || too_small {
            return sparse_ops::spmm(a, x);
        }
        let mut out = Tensor::zeros(rows, cols);
        let indptr = a.indptr();
        Pool::global().parallel_for_ranges(
            rows,
            out.data_mut(),
            workers,
            |r| indptr[r + 1] - indptr[r],
            |range, chunk| {
                for (local, r) in range.enumerate() {
                    let (row_cols, row_vals) = a.row(r);
                    let out_row = &mut chunk[local * cols..(local + 1) * cols];
                    accumulate_row_segment(row_cols, row_vals, x, out_row);
                }
            },
        );
        Ok(out)
    }

    fn spmm_transpose(&self, a: &CsrMatrix, x: &Tensor) -> Result<Tensor> {
        if a.rows() != x.rows() {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "spmm_transpose[{}]: adjacency {}x{} (transposed) × features {}x{}",
                    self.name(),
                    a.rows(),
                    a.cols(),
                    x.rows(),
                    x.cols()
                ),
            });
        }
        // Materialising Aᵀ turns the scatter into a gather that parallelises
        // over output-row ranges. Each output row then accumulates its
        // contributions in ascending source-row order — exactly the order of
        // the scalar scatter — so the result stays bit-identical. Only worth
        // the transposition cost once the matrix carries real work.
        if a.nnz() < PARALLEL_TRANSPOSE_MIN_NNZ {
            return sparse_ops::spmm_transpose(a, x);
        }
        self.spmm(&a.transpose(), x)
    }
}

/// Below this many stored non-zeros, [`ParallelCsr`]'s `spmm_transpose`
/// keeps the scalar scatter instead of materialising `Aᵀ` for the parallel
/// gather.
const PARALLEL_TRANSPOSE_MIN_NNZ: usize = 1 << 14;

/// Degree-binned dispatch kernel, mirroring GCoD's denser/sparser branch
/// split from `gcod-core`: rows at or above the degree threshold (the
/// "denser branch") take a feature-register-blocked inner loop that keeps a
/// block of output accumulators in registers while streaming the row's
/// non-zeros; rows below it (the "sparser branch") take the plain gather
/// loop of [`NaiveCsr`]. The plain loop re-reads the whole output row once
/// per non-zero — cheap for short rows, wasteful for hubs; the blocked loop
/// inverts that trade. Both accumulate each output element over the row's
/// non-zeros in ascending column order, so the routing never changes the
/// numerics.
#[derive(Debug, Clone, Copy)]
pub struct DegreeBinned {
    /// Rows with at least this many non-zeros are routed to the
    /// register-blocked (denser-branch) inner loop.
    pub dense_threshold: usize,
}

/// Output accumulators the denser-branch inner loop keeps in registers /
/// L1-resident stack: wide enough to cover a whole hidden layer (Table IV
/// uses 16–64 features) in one or two passes over the row's gathers.
const FEATURE_BLOCK: usize = 32;

impl Default for DegreeBinned {
    fn default() -> Self {
        // Citation-graph rows average 2–10 non-zeros; 32+ marks the heavy
        // hub rows where re-reading the output row per non-zero dominates.
        Self {
            dense_threshold: 32,
        }
    }
}

impl DegreeBinned {
    /// A degree-binned kernel with an explicit routing threshold.
    pub fn with_threshold(dense_threshold: usize) -> Self {
        Self { dense_threshold }
    }
}

impl SpmmKernel for DegreeBinned {
    fn name(&self) -> &'static str {
        "degree-binned"
    }

    fn spmm(&self, a: &CsrMatrix, x: &Tensor) -> Result<Tensor> {
        check_spmm_shapes(self.name(), a, x)?;
        let mut out = Tensor::zeros(a.rows(), x.cols());
        let feat = x.cols();
        for r in 0..a.rows() {
            let (cols, vals) = a.row(r);
            let out_row = out.row_mut(r);
            if cols.len() >= self.dense_threshold.max(1) {
                // Denser branch: register-blocked over features. Each output
                // element still sums the row's non-zeros in ascending column
                // order — only the loop nest changes, not the order.
                let mut f0 = 0;
                while f0 < feat {
                    let f1 = (f0 + FEATURE_BLOCK).min(feat);
                    let mut acc = [0.0f32; FEATURE_BLOCK];
                    for (&c, &v) in cols.iter().zip(vals) {
                        let x_seg = &x.row(c as usize)[f0..f1];
                        for (a, &xv) in acc.iter_mut().zip(x_seg) {
                            *a += v * xv;
                        }
                    }
                    out_row[f0..f1].copy_from_slice(&acc[..f1 - f0]);
                    f0 = f1;
                }
            } else {
                // Sparser branch: plain gather.
                accumulate_row_segment(cols, vals, x, out_row);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::CooMatrix;

    /// A deterministic pseudo-random sparse matrix with hub rows (degree
    /// skew) so the degree-binned kernel exercises both branches.
    fn skewed_matrix(rows: usize, cols: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for r in 0..rows {
            // Hub rows every 8th row get ~cols/2 entries, others ~4.
            let degree = if r % 8 == 0 { cols / 2 } else { 4 };
            for _ in 0..degree {
                let c = (next() as usize) % cols.max(1);
                let v = ((next() % 1000) as f32 - 500.0) / 250.0;
                // Duplicates are summed by sort_and_dedup — fine for a
                // fixture as long as every kernel sees the same matrix.
                coo.push(r, c, v).unwrap();
            }
        }
        coo.sort_and_dedup();
        coo.to_csr()
    }

    fn features(rows: usize, cols: usize) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| ((i * 37 % 23) as f32 - 11.0) * 0.25)
            .collect();
        Tensor::from_vec(rows, cols, data).unwrap()
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor, label: &str) {
        assert_eq!(a.shape(), b.shape(), "{label}: shape");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: element {i}: {x} vs {y}");
        }
    }

    #[test]
    fn all_kernels_match_naive_bit_for_bit() {
        let a = skewed_matrix(100, 100);
        let x = features(100, 17);
        let reference = NaiveCsr.spmm(&a, &x).unwrap();
        for kind in KernelKind::all() {
            let kernel = kind.build();
            let out = kernel.spmm(&a, &x).unwrap();
            assert_bits_equal(&out, &reference, kernel.name());
        }
    }

    #[test]
    fn tiled_kernel_handles_degenerate_tile_sizes() {
        let a = skewed_matrix(40, 40);
        let x = features(40, 5);
        let reference = NaiveCsr.spmm(&a, &x).unwrap();
        for (rt, ct) in [(1, 1), (3, 7), (40, 40), (1000, 1000), (0, 0)] {
            let out = TiledCsr::with_tiles(rt, ct).spmm(&a, &x).unwrap();
            assert_bits_equal(&out, &reference, &format!("tiles {rt}x{ct}"));
        }
    }

    #[test]
    fn parallel_kernel_deterministic_across_worker_counts() {
        let a = skewed_matrix(120, 120);
        let x = features(120, 9);
        let reference = NaiveCsr.spmm(&a, &x).unwrap();
        for workers in [1, 2, 4] {
            // Cut-off zeroed so the small fixture actually exercises the
            // pooled range-split path.
            let out = ParallelCsr::with_workers_and_cutoff(workers, 0)
                .spmm(&a, &x)
                .unwrap();
            assert_bits_equal(&out, &reference, &format!("{workers} workers"));
        }
    }

    #[test]
    fn degree_binned_thresholds_cover_both_branches() {
        let a = skewed_matrix(64, 64);
        let x = features(64, 6);
        let reference = NaiveCsr.spmm(&a, &x).unwrap();
        for threshold in [0, 1, 8, usize::MAX] {
            let out = DegreeBinned::with_threshold(threshold)
                .spmm(&a, &x)
                .unwrap();
            assert_bits_equal(&out, &reference, &format!("threshold {threshold}"));
        }
    }

    #[test]
    fn transpose_agrees_across_kernels() {
        let a = skewed_matrix(80, 60);
        let x = features(80, 4);
        let reference = NaiveCsr.spmm_transpose(&a, &x).unwrap();
        for kind in KernelKind::all() {
            let out = kind.build().spmm_transpose(&a, &x).unwrap();
            assert_bits_equal(&out, &reference, kind.name());
        }
        // Drive the parallel kernel's actual transpose-then-gather routing:
        // this matrix carries more than PARALLEL_TRANSPOSE_MIN_NNZ non-zeros,
        // so spmm_transpose takes the materialise-Aᵀ branch.
        let big = skewed_matrix(600, 600);
        assert!(
            big.nnz() >= PARALLEL_TRANSPOSE_MIN_NNZ,
            "fixture too sparse ({} nnz) to reach the gather branch",
            big.nnz()
        );
        let xb = features(600, 3);
        let scatter = sparse_ops::spmm_transpose(&big, &xb).unwrap();
        let gathered = ParallelCsr::with_workers_and_cutoff(4, 0)
            .spmm_transpose(&big, &xb)
            .unwrap();
        assert_bits_equal(&gathered, &scatter, "transpose-then-gather");
    }

    #[test]
    fn mac_counts_identical_across_kernels() {
        let a = skewed_matrix(50, 50);
        let x = features(50, 8);
        let expected = sparse_ops::spmm_macs(a.nnz(), x.cols());
        for kind in KernelKind::all() {
            assert_eq!(kind.build().macs(&a, &x), expected, "{}", kind.name());
        }
    }

    #[test]
    fn shape_mismatches_are_rejected_by_every_kernel() {
        let a = skewed_matrix(10, 10);
        let wrong = Tensor::zeros(4, 2);
        for kind in KernelKind::all() {
            let kernel = kind.build();
            assert!(kernel.spmm(&a, &wrong).is_err(), "{}", kernel.name());
            assert!(
                kernel.spmm_transpose(&a, &wrong).is_err(),
                "{}",
                kernel.name()
            );
        }
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        for kind in KernelKind::all() {
            let kernel = kind.build();
            // 0×0 adjacency, 0-row features.
            let out = kernel
                .spmm(&CsrMatrix::zeros(0, 0), &Tensor::zeros(0, 3))
                .unwrap();
            assert_eq!(out.shape(), (0, 3), "{}", kernel.name());
            // Rows but no stored entries.
            let out = kernel
                .spmm(&CsrMatrix::zeros(5, 4), &Tensor::full(4, 2, 7.0))
                .unwrap();
            assert!(out.data().iter().all(|&v| v == 0.0), "{}", kernel.name());
            // Zero-width features.
            let out = kernel
                .spmm(&CsrMatrix::identity(3), &Tensor::zeros(3, 0))
                .unwrap();
            assert_eq!(out.shape(), (3, 0), "{}", kernel.name());
        }
    }

    #[test]
    fn balanced_ranges_partition_rows_by_nnz() {
        let a = skewed_matrix(97, 97);
        for workers in [1, 2, 3, 4, 8, 97, 200] {
            let ranges = ParallelCsr::balanced_row_ranges(&a, workers.min(a.rows()));
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, a.rows());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
                assert!(!w[0].is_empty());
            }
        }
    }

    #[test]
    fn kernel_kind_roundtrips_names() {
        for kind in KernelKind::all() {
            assert_eq!(KernelKind::by_name(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(KernelKind::by_name("fpga"), None);
        assert_eq!(KernelKind::default(), KernelKind::NaiveCsr);
    }
}
