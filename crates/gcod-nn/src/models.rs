//! The GNN model zoo of Table IV.
//!
//! | Model     | Layers | Hidden | Aggregation | Notes            |
//! |-----------|--------|--------|-------------|------------------|
//! | GCN       | 2      | 16/64  | mean (sym.) |                  |
//! | GIN       | 3      | 16/64  | add         |                  |
//! | GraphSAGE | 2      | 16/64  | mean        | sampled variant  |
//! | GAT       | 2      | 8      | attention   | 8 heads          |
//! | ResGCN    | 28     | 128    | mean (sym.) | residual links   |
//!
//! All five share the per-layer template of [`crate::layers`], so a single
//! [`GnnModel`] type parameterised by [`ModelConfig`] covers the zoo. The
//! attention coefficients of GAT are recomputed every forward pass from the
//! current layer inputs and treated as constants during the backward pass
//! (documented simplification — see DESIGN.md).

use crate::kernels::KernelKind;
use crate::layers::{
    graph_conv_backward_workers, graph_conv_forward_workers, Activation, DenseLayer, LayerCache,
    Propagation,
};
use crate::quant::{Precision, QuantizedModel};
use crate::{NnError, Result, Tensor};
use gcod_graph::{CsrMatrix, Graph};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which of the five evaluated architectures a model instance realises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Two-layer GCN (Kipf & Welling).
    Gcn,
    /// Three-layer GIN with sum aggregation.
    Gin,
    /// Two-layer GraphSAGE with mean aggregation.
    GraphSage,
    /// Two-layer GAT with 8 heads.
    Gat,
    /// 28-layer residual GCN.
    ResGcn,
}

impl ModelKind {
    /// Lowercase display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Gcn => "gcn",
            ModelKind::Gin => "gin",
            ModelKind::GraphSage => "graphsage",
            ModelKind::Gat => "gat",
            ModelKind::ResGcn => "resgcn",
        }
    }

    /// All five kinds, in the order the paper's figures enumerate them.
    pub fn all() -> [ModelKind; 5] {
        [
            ModelKind::Gcn,
            ModelKind::Gin,
            ModelKind::Gat,
            ModelKind::GraphSage,
            ModelKind::ResGcn,
        ]
    }
}

/// Hyper-parameters of one model instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Which architecture.
    pub kind: ModelKind,
    /// Input feature dimension.
    pub input_dim: usize,
    /// Hidden dimension.
    pub hidden_dim: usize,
    /// Output dimension (number of classes).
    pub output_dim: usize,
    /// Number of layers.
    pub num_layers: usize,
    /// Attention heads (GAT only; 1 elsewhere).
    pub heads: usize,
    /// GIN epsilon.
    pub eps: f32,
    /// Whether residual connections are added between hidden layers.
    pub residual: bool,
}

impl ModelConfig {
    /// Hidden dimension the paper uses for this dataset size: 16 for the
    /// citation graphs, 64 for NELL/Reddit-scale graphs (Table IV).
    fn paper_hidden_dim(graph: &Graph) -> usize {
        if graph.num_nodes() > 20_000 {
            64
        } else {
            16
        }
    }

    /// Two-layer GCN configuration for `graph`.
    pub fn gcn(graph: &Graph) -> Self {
        Self {
            kind: ModelKind::Gcn,
            input_dim: graph.feature_dim(),
            hidden_dim: Self::paper_hidden_dim(graph),
            output_dim: graph.num_classes(),
            num_layers: 2,
            heads: 1,
            eps: 0.0,
            residual: false,
        }
    }

    /// Three-layer GIN configuration for `graph`.
    pub fn gin(graph: &Graph) -> Self {
        Self {
            kind: ModelKind::Gin,
            num_layers: 3,
            eps: 0.1,
            ..Self::gcn(graph)
        }
    }

    /// Two-layer GraphSAGE configuration for `graph`.
    pub fn graphsage(graph: &Graph) -> Self {
        Self {
            kind: ModelKind::GraphSage,
            ..Self::gcn(graph)
        }
    }

    /// Two-layer, 8-head GAT configuration for `graph`.
    pub fn gat(graph: &Graph) -> Self {
        Self {
            kind: ModelKind::Gat,
            hidden_dim: 8,
            heads: 8,
            ..Self::gcn(graph)
        }
    }

    /// 28-layer ResGCN configuration for `graph`.
    pub fn resgcn(graph: &Graph) -> Self {
        Self {
            kind: ModelKind::ResGcn,
            hidden_dim: 128,
            num_layers: 28,
            residual: true,
            ..Self::gcn(graph)
        }
    }

    /// Configuration of `kind` for `graph`.
    pub fn for_kind(kind: ModelKind, graph: &Graph) -> Self {
        match kind {
            ModelKind::Gcn => Self::gcn(graph),
            ModelKind::Gin => Self::gin(graph),
            ModelKind::GraphSage => Self::graphsage(graph),
            ModelKind::Gat => Self::gat(graph),
            ModelKind::ResGcn => Self::resgcn(graph),
        }
    }

    /// The propagation rule implied by the model kind.
    pub fn propagation(&self) -> Propagation {
        match self.kind {
            ModelKind::Gcn | ModelKind::ResGcn => Propagation::SymmetricNormalized,
            ModelKind::Gin => Propagation::SumWithSelfLoop { eps: self.eps },
            ModelKind::GraphSage => Propagation::MeanNormalized,
            ModelKind::Gat => Propagation::Attention { heads: self.heads },
        }
    }

    /// Effective hidden width including attention heads (GAT concatenates
    /// heads, so the combination workload sees `hidden_dim * heads`).
    pub fn effective_hidden_dim(&self) -> usize {
        self.hidden_dim * self.heads.max(1)
    }

    /// Per-layer `(in_dim, out_dim)` shapes.
    pub fn layer_dims(&self) -> Vec<(usize, usize)> {
        let hidden = self.effective_hidden_dim();
        let mut dims = Vec::with_capacity(self.num_layers);
        for layer in 0..self.num_layers {
            let in_dim = if layer == 0 { self.input_dim } else { hidden };
            let out_dim = if layer + 1 == self.num_layers {
                self.output_dim
            } else {
                hidden
            };
            dims.push((in_dim, out_dim));
        }
        dims
    }

    fn validate(&self) -> Result<()> {
        if self.num_layers == 0 {
            return Err(NnError::InvalidHyperparameter {
                name: "num_layers",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.input_dim == 0 || self.hidden_dim == 0 || self.output_dim == 0 {
            return Err(NnError::InvalidHyperparameter {
                name: "dims",
                reason: "input, hidden and output dimensions must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// A graph neural network instance: a stack of graph-convolution layers
/// following one propagation rule.
#[derive(Debug, Clone)]
pub struct GnnModel {
    config: ModelConfig,
    layers: Vec<DenseLayer>,
    /// Aggregation kernel used by forward/backward. Not a model
    /// hyper-parameter: every kernel is bit-identical, so this selects
    /// wall-clock behaviour only.
    kernel: KernelKind,
    /// Worker lanes for the parallel kernels (0 = the global pool's count).
    /// Like the kernel, never a hyper-parameter: results are bit-identical
    /// for every count.
    workers: usize,
    /// Inference precision. Unlike the kernel and worker knobs this DOES
    /// change the numerics: a quantized precision routes `forward` /
    /// `forward_rows` through the integer compute path of [`crate::quant`].
    /// Training gradients always stay f32 (post-training quantization).
    precision: Precision,
}

/// Cached activations of a full forward pass (needed for the backward pass).
#[derive(Debug, Clone)]
pub struct ForwardCache {
    /// Per-layer caches, in execution order.
    pub layers: Vec<LayerCache>,
    /// Final logits.
    pub logits: Tensor,
    /// Per-layer propagation matrices. Feature-independent rules build the
    /// matrix once and share it across layers (one `Arc` clone per layer
    /// instead of a full CSR copy per layer per epoch); feature-dependent
    /// attention stores genuinely distinct matrices.
    pub propagations: Vec<Arc<CsrMatrix>>,
}

impl GnnModel {
    /// Creates a model with Glorot-initialised parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidHyperparameter`] for degenerate
    /// configurations.
    pub fn new(config: ModelConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let dims = config.layer_dims();
        let layers = dims
            .iter()
            .enumerate()
            .map(|(i, &(in_dim, out_dim))| {
                let activation = if i + 1 == dims.len() {
                    Activation::Linear
                } else {
                    Activation::Relu
                };
                DenseLayer::new(
                    in_dim,
                    out_dim,
                    activation,
                    seed.wrapping_add(i as u64 * 7919),
                )
            })
            .collect();
        Ok(Self {
            config,
            layers,
            kernel: KernelKind::default(),
            workers: 0,
            precision: Precision::Fp32,
        })
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The SpMM kernel the forward/backward passes run on.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    /// Selects the SpMM kernel (builder form). Kernel choice never changes
    /// the numerics — every kernel is bit-identical to
    /// [`KernelKind::NaiveCsr`] — only the wall-clock of training and
    /// inference.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects the SpMM kernel in place.
    pub fn set_kernel(&mut self, kernel: KernelKind) {
        self.kernel = kernel;
    }

    /// The worker-lane count forward/backward run with (0 = the global
    /// pool's count).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Selects the worker-lane count (builder form). Like the kernel choice,
    /// this never changes the numerics — every count is bit-identical — only
    /// the wall-clock of training and inference.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Selects the worker-lane count in place.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers;
    }

    /// The inference precision (see [`GnnModel::with_precision`]).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Selects the inference precision (builder form). **Unlike the kernel
    /// and worker knobs, this changes the numerics**: a quantized precision
    /// makes [`GnnModel::forward`] / [`GnnModel::forward_rows`] quantize the
    /// weights and run the integer kernels of [`crate::qkernels`]
    /// end to end. Gradients ([`GnnModel::forward_cached`] /
    /// [`GnnModel::backward`]) always stay f32 — this is post-training
    /// quantization, so training converges in f32 and only deployment
    /// inference narrows.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Selects the inference precision in place.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    /// The architecture kind.
    pub fn kind(&self) -> ModelKind {
        self.config.kind
    }

    /// The dense layers (weights and biases).
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(DenseLayer::num_params).sum()
    }

    /// Checks that `graph` matches the model configuration.
    fn check_graph(&self, graph: &Graph) -> Result<()> {
        check_graph_for(&self.config, graph)
    }

    /// The graph's node features as the input activation matrix. Shared
    /// with the quantized forward path ([`QuantizedModel`]).
    pub(crate) fn input_features(graph: &Graph) -> Tensor {
        Tensor::from_vec(
            graph.num_nodes(),
            graph.feature_dim(),
            graph.features().to_vec(),
        )
        .expect("graph guarantees feature shape")
    }

    /// Runs inference and returns the logits (`N × classes`).
    ///
    /// This is the lean inference path: activations ping-pong through one
    /// live tensor per layer with in-place bias/activation/residual updates
    /// and no cache bookkeeping. At [`Precision::Fp32`] (the default) it is
    /// bit-identical to `self.forward_cached(graph)?.logits`; at a quantized
    /// precision it quantizes the weights and runs the integer compute path
    /// instead (see [`GnnModel::with_precision`]; hot serving loops should
    /// hold a [`QuantizedModel`] to quantize the weights only once).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ModelGraphMismatch`] when the graph's feature
    /// dimension differs from the configured input dimension.
    pub fn forward(&self, graph: &Graph) -> Result<Tensor> {
        if let Some(width) = self.precision.quant_width() {
            return QuantizedModel::from_model(self, width).forward(graph);
        }
        self.check_graph(graph)?;
        let propagation_rule = self.config.propagation();
        let kernel = self.kernel.build_with_workers(self.workers);
        let mut h = Self::input_features(graph);
        // Feature-independent propagation matrices are built once and shared.
        let shared = if propagation_rule.is_feature_dependent() {
            None
        } else {
            Some(propagation_rule.matrix(graph, &h))
        };
        for (i, layer) in self.layers.iter().enumerate() {
            let rebuilt;
            let propagation = match &shared {
                Some(p) => p,
                None => {
                    rebuilt = propagation_rule.matrix(graph, &h);
                    &rebuilt
                }
            };
            let aggregated = kernel.spmm(propagation, &h)?;
            let mut next = aggregated.matmul_with(&layer.weight, self.workers)?;
            next.add_row_broadcast_in_place(&layer.bias)?;
            layer.activation.apply_in_place(&mut next);
            // Residual connection between same-width hidden layers.
            if self.config.residual && i > 0 && next.shape() == h.shape() {
                next.add_assign(&h)?;
            }
            h = next;
        }
        Ok(h)
    }

    /// Batched inference for a stack of node queries: one fused forward pass
    /// over the whole graph, with the logit rows of `nodes` (in order,
    /// duplicates allowed) stacked into a `nodes.len() × classes` tensor.
    ///
    /// This is the serving entry point: a batcher that coalesces many
    /// node-classification requests against the same model concatenates
    /// their node lists, pays for **one** propagation + combination pass,
    /// and splits the stacked rows back out per request. Because graph
    /// convolution computes every node's logits from the full neighbourhood
    /// anyway, the fused pass is bit-for-bit identical to running
    /// [`forward`](GnnModel::forward) once per request and gathering each
    /// request's rows — batching never changes a single bit of any answer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ModelGraphMismatch`] when the graph does not match
    /// the configuration and [`NnError::ShapeMismatch`] when a node index is
    /// out of bounds.
    pub fn forward_rows(&self, graph: &Graph, nodes: &[usize]) -> Result<Tensor> {
        let logits = self.forward(graph)?;
        logits.gather_rows(nodes)
    }

    /// Runs inference keeping the per-layer caches needed for the backward
    /// pass.
    ///
    /// Each layer reads its input straight out of the previous layer's
    /// cached output — no per-layer activation clones survive from the
    /// pre-pool implementation (which cloned every layer output twice and
    /// the input once more into the cache).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ModelGraphMismatch`] when the graph does not match
    /// the configuration.
    pub fn forward_cached(&self, graph: &Graph) -> Result<ForwardCache> {
        self.check_graph(graph)?;
        let propagation_rule = self.config.propagation();
        let features = Self::input_features(graph);
        let mut caches: Vec<LayerCache> = Vec::with_capacity(self.layers.len());
        let mut propagations = Vec::with_capacity(self.layers.len());
        let kernel = self.kernel.build_with_workers(self.workers);
        // Feature-independent propagation matrices are built once and shared.
        let shared = if propagation_rule.is_feature_dependent() {
            None
        } else {
            Some(Arc::new(propagation_rule.matrix(graph, &features)))
        };
        for (i, layer) in self.layers.iter().enumerate() {
            let input = caches.last().map_or(&features, |c| &c.output);
            let propagation = match &shared {
                Some(p) => Arc::clone(p),
                None => Arc::new(propagation_rule.matrix(graph, input)),
            };
            let mut cache = graph_conv_forward_workers(
                layer,
                &propagation,
                input,
                kernel.as_ref(),
                self.workers,
            )?;
            // Residual connection between same-width hidden layers.
            if self.config.residual && i > 0 && cache.output.shape() == input.shape() {
                cache.output.add_assign(input)?;
            }
            caches.push(cache);
            propagations.push(propagation);
        }
        let logits = caches
            .last()
            .expect("configs validate num_layers >= 1")
            .output
            .clone();
        Ok(ForwardCache {
            logits,
            layers: caches,
            propagations,
        })
    }

    /// Backward pass: gradients of every layer's weight and bias given the
    /// gradient of the logits. Returned as `(weight_grads, bias_grads)` in
    /// layer order.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layer backward passes.
    pub fn backward(
        &self,
        cache: &ForwardCache,
        grad_logits: &Tensor,
    ) -> Result<(Vec<Tensor>, Vec<Tensor>)> {
        let mut weight_grads = vec![Tensor::zeros(0, 0); self.layers.len()];
        let mut bias_grads = vec![Tensor::zeros(0, 0); self.layers.len()];
        let mut grad = grad_logits.clone();
        let kernel = self.kernel.build_with_workers(self.workers);
        for i in (0..self.layers.len()).rev() {
            let grads = graph_conv_backward_workers(
                &self.layers[i],
                &cache.propagations[i],
                &cache.layers[i],
                &grad,
                kernel.as_ref(),
                self.workers,
            )?;
            weight_grads[i] = grads.weight;
            bias_grads[i] = grads.bias;
            let mut next_grad = grads.input;
            // Residual connections add the output gradient straight through.
            if self.config.residual && i > 0 && next_grad.shape() == grad.shape() {
                next_grad = next_grad.add(&grad)?;
            }
            grad = next_grad;
        }
        Ok((weight_grads, bias_grads))
    }

    /// Applies parameter updates in-place using a visitor so optimisers can
    /// walk `(weight, weight_grad)` and `(bias, bias_grad)` pairs.
    pub(crate) fn parameters_mut(&mut self) -> Vec<&mut Tensor> {
        let mut params = Vec::with_capacity(self.layers.len() * 2);
        for layer in &mut self.layers {
            params.push(&mut layer.weight);
            params.push(&mut layer.bias);
        }
        params
    }

    /// Collects gradients in the same order as [`GnnModel::parameters_mut`].
    pub(crate) fn collect_grads(weights: Vec<Tensor>, biases: Vec<Tensor>) -> Vec<Tensor> {
        let mut grads = Vec::with_capacity(weights.len() * 2);
        for (w, b) in weights.into_iter().zip(biases) {
            grads.push(w);
            grads.push(b);
        }
        grads
    }
}

/// Checks that `graph` matches a model configuration. Shared between the
/// f32 [`GnnModel`] and the quantized [`QuantizedModel`] forward paths.
pub(crate) fn check_graph_for(config: &ModelConfig, graph: &Graph) -> Result<()> {
    if graph.feature_dim() != config.input_dim {
        return Err(NnError::ModelGraphMismatch {
            context: format!(
                "graph feature dim {} != model input dim {}",
                graph.feature_dim(),
                config.input_dim
            ),
        });
    }
    if graph.num_classes() != config.output_dim {
        return Err(NnError::ModelGraphMismatch {
            context: format!(
                "graph classes {} != model output dim {}",
                graph.num_classes(),
                config.output_dim
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn graph() -> Graph {
        GraphGenerator::new(3)
            .generate(&DatasetProfile::custom("m", 60, 150, 12, 4))
            .unwrap()
    }

    #[test]
    fn table4_configurations() {
        let g = graph();
        let gcn = ModelConfig::gcn(&g);
        assert_eq!(gcn.num_layers, 2);
        assert_eq!(gcn.hidden_dim, 16);
        let gin = ModelConfig::gin(&g);
        assert_eq!(gin.num_layers, 3);
        let gat = ModelConfig::gat(&g);
        assert_eq!(gat.heads, 8);
        assert_eq!(gat.hidden_dim, 8);
        assert_eq!(gat.effective_hidden_dim(), 64);
        let res = ModelConfig::resgcn(&g);
        assert_eq!(res.num_layers, 28);
        assert_eq!(res.hidden_dim, 128);
        assert!(res.residual);
    }

    #[test]
    fn layer_dims_chain_correctly() {
        let g = graph();
        let cfg = ModelConfig::gin(&g);
        let dims = cfg.layer_dims();
        assert_eq!(dims.len(), 3);
        assert_eq!(dims[0].0, g.feature_dim());
        assert_eq!(dims[2].1, g.num_classes());
        for w in dims.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn forward_produces_logits_for_all_kinds() {
        let g = graph();
        for kind in ModelKind::all() {
            // ResGCN at 28 layers on a tiny test graph is wasteful; shrink it.
            let mut cfg = ModelConfig::for_kind(kind, &g);
            if kind == ModelKind::ResGcn {
                cfg.num_layers = 4;
                cfg.hidden_dim = 16;
            }
            let model = GnnModel::new(cfg, 0).unwrap();
            let logits = model.forward(&g).unwrap();
            assert_eq!(logits.shape(), (g.num_nodes(), g.num_classes()), "{kind:?}");
            assert!(logits.data().iter().all(|v| v.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn forward_rejects_mismatched_graph() {
        let g = graph();
        let other = GraphGenerator::new(9)
            .generate(&DatasetProfile::custom("o", 40, 80, 5, 4))
            .unwrap();
        let model = GnnModel::new(ModelConfig::gcn(&g), 0).unwrap();
        assert!(matches!(
            model.forward(&other),
            Err(NnError::ModelGraphMismatch { .. })
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        let g = graph();
        let mut cfg = ModelConfig::gcn(&g);
        cfg.num_layers = 0;
        assert!(GnnModel::new(cfg, 0).is_err());
        let mut cfg = ModelConfig::gcn(&g);
        cfg.hidden_dim = 0;
        assert!(GnnModel::new(cfg, 0).is_err());
    }

    #[test]
    fn backward_produces_grads_for_every_layer() {
        let g = graph();
        let model = GnnModel::new(ModelConfig::gcn(&g), 1).unwrap();
        let cache = model.forward_cached(&g).unwrap();
        let grad_logits = Tensor::full(g.num_nodes(), g.num_classes(), 0.01);
        let (wgrads, bgrads) = model.backward(&cache, &grad_logits).unwrap();
        assert_eq!(wgrads.len(), 2);
        assert_eq!(bgrads.len(), 2);
        for (layer, wg) in model.layers().iter().zip(&wgrads) {
            assert_eq!(layer.weight.shape(), wg.shape());
            assert!(wg.norm() > 0.0, "gradient should be non-zero");
        }
    }

    #[test]
    fn kernel_choice_never_changes_logits_or_grads() {
        let g = graph();
        let reference = GnnModel::new(ModelConfig::gcn(&g), 4).unwrap();
        assert_eq!(reference.kernel(), KernelKind::NaiveCsr);
        let ref_cache = reference.forward_cached(&g).unwrap();
        let grad_logits = Tensor::full(g.num_nodes(), g.num_classes(), 0.1);
        let (ref_w, ref_b) = reference.backward(&ref_cache, &grad_logits).unwrap();
        for kind in KernelKind::all() {
            let model = GnnModel::new(ModelConfig::gcn(&g), 4)
                .unwrap()
                .with_kernel(kind);
            assert_eq!(model.kernel(), kind);
            let cache = model.forward_cached(&g).unwrap();
            assert_eq!(cache.logits, ref_cache.logits, "{}", kind.name());
            let (w, b) = model.backward(&cache, &grad_logits).unwrap();
            assert_eq!(w, ref_w, "{}", kind.name());
            assert_eq!(b, ref_b, "{}", kind.name());
        }
    }

    #[test]
    fn lean_forward_matches_cached_forward_for_all_kinds() {
        let g = graph();
        for kind in ModelKind::all() {
            let mut cfg = ModelConfig::for_kind(kind, &g);
            if kind == ModelKind::ResGcn {
                cfg.num_layers = 4;
                cfg.hidden_dim = 16;
            }
            let model = GnnModel::new(cfg, 11).unwrap();
            let lean = model.forward(&g).unwrap();
            let cached = model.forward_cached(&g).unwrap().logits;
            assert_eq!(lean, cached, "{kind:?}: lean forward must be bit-identical");
        }
    }

    #[test]
    fn worker_count_never_changes_logits_or_grads() {
        let g = graph();
        let reference = GnnModel::new(ModelConfig::gcn(&g), 8).unwrap();
        assert_eq!(reference.workers(), 0);
        let ref_cache = reference.forward_cached(&g).unwrap();
        let grad_logits = Tensor::full(g.num_nodes(), g.num_classes(), 0.1);
        let (ref_w, ref_b) = reference.backward(&ref_cache, &grad_logits).unwrap();
        for workers in [1usize, 2, 3, 0] {
            for kernel in [KernelKind::NaiveCsr, KernelKind::ParallelCsr] {
                let model = GnnModel::new(ModelConfig::gcn(&g), 8)
                    .unwrap()
                    .with_kernel(kernel)
                    .with_workers(workers);
                assert_eq!(model.workers(), workers);
                let cache = model.forward_cached(&g).unwrap();
                assert_eq!(cache.logits, ref_cache.logits, "{workers}w {kernel}");
                let (w, b) = model.backward(&cache, &grad_logits).unwrap();
                assert_eq!(w, ref_w, "{workers}w {kernel}");
                assert_eq!(b, ref_b, "{workers}w {kernel}");
            }
        }
    }

    #[test]
    fn precision_routes_forward_through_the_quantized_path() {
        let g = graph();
        let base = GnnModel::new(ModelConfig::gcn(&g), 21).unwrap();
        assert_eq!(base.precision(), Precision::Fp32);
        let fp32 = base.forward(&g).unwrap();
        for precision in [Precision::Int8, Precision::Int16] {
            let model = GnnModel::new(ModelConfig::gcn(&g), 21)
                .unwrap()
                .with_precision(precision);
            assert_eq!(model.precision(), precision);
            let quant = model.forward(&g).unwrap();
            // The quantized path is a different computation: close, never
            // bit-identical on a non-trivial model.
            assert_eq!(quant.shape(), fp32.shape());
            assert_ne!(quant, fp32, "{precision} must change the numerics");
            // And it matches the explicit QuantizedModel bit for bit.
            let width = precision.quant_width().unwrap();
            let explicit = QuantizedModel::from_model(&model, width)
                .forward(&g)
                .unwrap();
            assert_eq!(quant, explicit, "{precision}");
            // forward_rows gathers out of the same quantized pass.
            let rows = model.forward_rows(&g, &[2, 5]).unwrap();
            assert_eq!(rows.row(0), quant.row(2));
            assert_eq!(rows.row(1), quant.row(5));
            // Gradients stay on the f32 cached path.
            let cached = model.forward_cached(&g).unwrap();
            assert_eq!(cached.logits, fp32, "{precision}: training stays f32");
        }
        // Setter form mirrors the builder.
        let mut model = GnnModel::new(ModelConfig::gcn(&g), 21).unwrap();
        model.set_precision(Precision::Int8);
        assert_eq!(model.precision(), Precision::Int8);
    }

    #[test]
    fn forward_rows_is_bit_identical_to_per_request_inference() {
        let g = graph();
        let model = GnnModel::new(ModelConfig::gcn(&g), 13).unwrap();
        let full = model.forward(&g).unwrap();
        // A "batch" of three requests with overlapping, unsorted nodes.
        let requests: Vec<Vec<usize>> = vec![vec![5, 0, 17], vec![17, 3], vec![1]];
        let stacked_nodes: Vec<usize> = requests.iter().flatten().copied().collect();
        let fused = model.forward_rows(&g, &stacked_nodes).unwrap();
        assert_eq!(fused.shape(), (stacked_nodes.len(), g.num_classes()));
        // Fused batch equals per-request gathers of independent passes.
        let mut offset = 0;
        for nodes in &requests {
            let solo = model.forward_rows(&g, nodes).unwrap();
            for (i, &node) in nodes.iter().enumerate() {
                assert_eq!(fused.row(offset + i), solo.row(i));
                assert_eq!(solo.row(i), full.row(node));
            }
            offset += nodes.len();
        }
    }

    #[test]
    fn forward_rows_rejects_out_of_range_nodes() {
        let g = graph();
        let model = GnnModel::new(ModelConfig::gcn(&g), 0).unwrap();
        assert!(matches!(
            model.forward_rows(&g, &[0, g.num_nodes()]),
            Err(NnError::ShapeMismatch { .. })
        ));
        // An empty query is legal and yields an empty stack.
        let empty = model.forward_rows(&g, &[]).unwrap();
        assert_eq!(empty.shape(), (0, g.num_classes()));
    }

    #[test]
    fn shared_propagation_is_one_matrix_behind_arcs() {
        let g = graph();
        let model = GnnModel::new(ModelConfig::gcn(&g), 0).unwrap();
        let cache = model.forward_cached(&g).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&cache.propagations[0], &cache.propagations[1]),
            "feature-independent layers must share one propagation matrix"
        );
        // Attention rebuilds per layer from the current features.
        let gat = GnnModel::new(ModelConfig::gat(&g), 0).unwrap();
        let cache = gat.forward_cached(&g).unwrap();
        assert!(!std::sync::Arc::ptr_eq(
            &cache.propagations[0],
            &cache.propagations[1]
        ));
    }

    #[test]
    fn parameter_count_matches_dims() {
        let g = graph();
        let cfg = ModelConfig::gcn(&g);
        let model = GnnModel::new(cfg.clone(), 0).unwrap();
        let expected: usize = cfg.layer_dims().iter().map(|&(i, o)| i * o + o).sum();
        assert_eq!(model.num_params(), expected);
    }

    #[test]
    fn residual_model_differs_from_plain_stack() {
        let g = graph();
        let mut cfg = ModelConfig::resgcn(&g);
        cfg.num_layers = 3;
        cfg.hidden_dim = 8;
        let with_res = GnnModel::new(cfg.clone(), 5).unwrap();
        let mut cfg_no = cfg;
        cfg_no.residual = false;
        let without = GnnModel::new(cfg_no, 5).unwrap();
        let a = with_res.forward(&g).unwrap();
        let b = without.forward(&g).unwrap();
        assert_ne!(a, b, "residual connections must change the output");
    }

    #[test]
    fn model_kind_names_are_stable() {
        assert_eq!(ModelKind::Gcn.name(), "gcn");
        assert_eq!(ModelKind::ResGcn.name(), "resgcn");
        assert_eq!(ModelKind::all().len(), 5);
    }
}
