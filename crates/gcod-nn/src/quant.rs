//! Post-training int8/int16 quantization and the quantized model runner.
//!
//! The paper's GCoD (8-bit) variant quantizes weights and activations to
//! 8-bit integers, which halves-to-quarters the off-chip bandwidth demand
//! and lets the accelerator afford 10240 PEs instead of 4096 (Table V
//! footnote). This module provides the real execution path for that
//! variant, not an emulation:
//!
//! * [`QuantizedTensor`] — symmetric per-tensor quantized dense storage
//!   (int8 or int16 payload behind one scale), the dense counterpart of
//!   [`gcod_graph::QuantizedCsr`],
//! * [`QuantizedLayer`] / [`QuantizedModel`] — a model whose weights are
//!   quantized **once** at construction and whose forward pass runs the
//!   integer kernels of [`crate::qkernels`] end to end: per layer the
//!   activations are quantized, aggregated and combined in the integer
//!   domain (i32 accumulation for int8, i64 for int16), and dequantized
//!   only at the operator boundary (bias, activation and residual stay
//!   f32),
//! * [`quantized_forward`] / [`quantization_accuracy_drop`] — the Table VII
//!   comparison entry points.
//!
//! Selecting a quantized [`Precision`] on a [`GnnModel`] (via
//! [`GnnModel::with_precision`]) routes its *inference* path
//! (`forward`/`forward_rows`, and therefore every evaluation the trainer
//! reports) through this module; gradients keep the f32 cached path, so
//! this is post-training quantization exactly as the paper deploys it.

use crate::kernels::KernelKind;
use crate::layers::{graph_conv_forward_quant, Activation};
use crate::models::{GnnModel, ModelConfig};
use crate::qkernels::quant_kernel_for;
use crate::{Result, Tensor};
use gcod_graph::{Graph, QuantValues, QuantWidth, QuantizedCsr};
use serde::{Deserialize, Serialize};

/// A symmetric, per-tensor quantized dense matrix: `value ≈ scale * q` with
/// an int8 or int16 payload. The dense counterpart of
/// [`gcod_graph::QuantizedCsr`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedTensor {
    rows: usize,
    cols: usize,
    scale: f32,
    values: QuantValues,
}

impl QuantizedTensor {
    /// Quantizes a tensor at `width` with a symmetric scale chosen from its
    /// max absolute value (`scale = max_abs / qmax`, 1.0 for a zero tensor).
    pub fn quantize(tensor: &Tensor, width: QuantWidth) -> Self {
        let scale = width.scale_for(tensor.data());
        Self {
            rows: tensor.rows(),
            cols: tensor.cols(),
            scale,
            values: QuantValues::quantize(tensor.data(), width, scale),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Integer width of the payload.
    pub fn width(&self) -> QuantWidth {
        self.values.width()
    }

    /// The quantized payload.
    pub fn values(&self) -> &QuantValues {
        &self.values
    }

    /// Dequantizes back to fp32.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(self.rows, self.cols, self.values.dequantize(self.scale))
            .expect("shape preserved")
    }

    /// Storage footprint in bytes (payload plus the scale).
    pub fn storage_bytes(&self) -> usize {
        self.values.storage_bytes() + std::mem::size_of::<f32>()
    }

    /// The analytic per-element round-trip error bound of symmetric
    /// quantization: `scale / 2`. [`QuantizedTensor::max_error`] against the
    /// source tensor never exceeds this (the scale choice rules clamping
    /// out).
    pub fn error_bound(&self) -> f32 {
        self.scale / 2.0
    }

    /// Worst-case absolute quantization error of this tensor.
    pub fn max_error(&self, original: &Tensor) -> f32 {
        self.dequantize()
            .data()
            .iter()
            .zip(original.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Bit width used by a model variant; selects the inference compute path
/// and drives the bandwidth model in `gcod-accel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point (the paper's default GCoD configuration).
    #[default]
    Fp32,
    /// 16-bit integers (LW-GCN-style fixed point; i64 accumulation).
    Int16,
    /// 8-bit integers (the GCoD (8-bit) variant; i32 accumulation).
    Int8,
}

impl Precision {
    /// Bytes per scalar.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Int16 => 2,
            Precision::Int8 => 1,
        }
    }

    /// Stable lowercase name (matches the benchmark labels).
    pub fn name(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Int16 => "int16",
            Precision::Int8 => "int8",
        }
    }

    /// All precisions, widest first.
    pub fn all() -> [Precision; 3] {
        [Precision::Fp32, Precision::Int16, Precision::Int8]
    }

    /// The integer storage width of a quantized precision (`None` for f32,
    /// which takes the unquantized path).
    pub fn quant_width(self) -> Option<QuantWidth> {
        match self {
            Precision::Fp32 => None,
            Precision::Int16 => Some(QuantWidth::I16),
            Precision::Int8 => Some(QuantWidth::I8),
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One layer of a [`QuantizedModel`]: the weight quantized once at
/// construction, the bias and activation kept in f32 (bias addition and the
/// non-linearity run at the layer boundary, after dequantization).
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    /// Quantized weight matrix `in_dim × out_dim`.
    pub weight: QuantizedTensor,
    /// Bias row `1 × out_dim`, kept in f32.
    pub bias: Tensor,
    /// Post-layer activation.
    pub activation: Activation,
}

/// A [`GnnModel`] whose parameters were quantized **once** into integer
/// storage, with a forward pass that computes on the integer payloads.
///
/// This replaces the old clone-the-model-and-round-trip-every-parameter
/// emulation: construction quantizes each weight matrix a single time, and
/// every subsequent [`QuantizedModel::forward`] call reuses that storage.
/// Serving paths that answer many requests against one model should build
/// this once and call it repeatedly.
#[derive(Debug, Clone)]
pub struct QuantizedModel {
    config: ModelConfig,
    layers: Vec<QuantizedLayer>,
    width: QuantWidth,
    kernel: KernelKind,
    workers: usize,
}

impl QuantizedModel {
    /// Quantizes `model`'s weights at `width`. Kernel selection and worker
    /// count carry over from the source model (`ParallelCsr` maps to the
    /// pool-parallel quantized SpMM, everything else to the scalar one).
    pub fn from_model(model: &GnnModel, width: QuantWidth) -> Self {
        let layers = model
            .layers()
            .iter()
            .map(|layer| QuantizedLayer {
                weight: QuantizedTensor::quantize(&layer.weight, width),
                bias: layer.bias.clone(),
                activation: layer.activation,
            })
            .collect();
        Self {
            config: model.config().clone(),
            layers,
            width,
            kernel: model.kernel(),
            workers: model.workers(),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// The integer width this model computes at.
    pub fn width(&self) -> QuantWidth {
        self.width
    }

    /// The quantized layers.
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    /// Total parameter storage in bytes (quantized weights + f32 biases).
    pub fn param_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weight.storage_bytes() + l.bias.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Runs quantized inference and returns the (f32) logits.
    ///
    /// Per layer: the current activations are quantized at this model's
    /// width, aggregated against the quantized propagation matrix and
    /// combined with the quantized weight entirely in the integer domain,
    /// then dequantized for the f32 bias/activation/residual tail — one
    /// quantization per operator input, one dequantization per operator
    /// output, exactly the accumulation contract `crate::qkernels`
    /// documents.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ModelGraphMismatch`] when the graph does
    /// not match the configuration.
    pub fn forward(&self, graph: &Graph) -> Result<Tensor> {
        crate::models::check_graph_for(&self.config, graph)?;
        let propagation_rule = self.config.propagation();
        let kernel = quant_kernel_for(self.kernel, self.workers);
        let mut h = GnnModel::input_features(graph);
        // Feature-independent propagation matrices are built and quantized
        // once, shared across layers.
        let shared = if propagation_rule.is_feature_dependent() {
            None
        } else {
            Some(QuantizedCsr::quantize(
                &propagation_rule.matrix(graph, &h),
                self.width,
            ))
        };
        for (i, layer) in self.layers.iter().enumerate() {
            let rebuilt;
            let propagation = match &shared {
                Some(p) => p,
                None => {
                    // Attention scores are computed from the f32 activations
                    // (feature-dependent propagation), then quantized like
                    // any other operand.
                    rebuilt =
                        QuantizedCsr::quantize(&propagation_rule.matrix(graph, &h), self.width);
                    &rebuilt
                }
            };
            let mut next =
                graph_conv_forward_quant(layer, propagation, &h, kernel.as_ref(), self.workers)?;
            // Residual connection between same-width hidden layers (f32, at
            // the layer boundary — mirrors the f32 forward).
            if self.config.residual && i > 0 && next.shape() == h.shape() {
                next.add_assign(&h)?;
            }
            h = next;
        }
        Ok(h)
    }

    /// Batched quantized inference for a stack of node queries: one fused
    /// forward pass with the logit rows of `nodes` gathered out, mirroring
    /// [`GnnModel::forward_rows`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ModelGraphMismatch`] when the graph does
    /// not match the configuration and [`crate::NnError::ShapeMismatch`]
    /// when a node index is out of bounds.
    pub fn forward_rows(&self, graph: &Graph, nodes: &[usize]) -> Result<Tensor> {
        let logits = self.forward(graph)?;
        logits.gather_rows(nodes)
    }
}

/// Runs real int8 inference: quantizes the model's weights once into a
/// [`QuantizedModel`] and executes the integer compute path. Returns the
/// (f32) logits.
///
/// Callers evaluating many graphs or requests against one model should
/// construct the [`QuantizedModel`] themselves and reuse it — this
/// convenience wrapper re-quantizes the weights on every call (it no longer
/// clones the whole f32 model, but the per-call quantization cost remains).
///
/// # Errors
///
/// Propagates forward-pass shape errors.
pub fn quantized_forward(model: &GnnModel, graph: &Graph) -> Result<Tensor> {
    QuantizedModel::from_model(model, QuantWidth::I8).forward(graph)
}

/// Accuracy drop (in absolute fraction) between fp32 and INT8 inference on
/// the test mask. Positive values mean the quantized model is worse.
///
/// Unlike the pre-quantized-path versions of this crate, the INT8 number
/// comes from the real integer kernels, not from weights round-tripped
/// through int8 and evaluated in f32.
///
/// # Errors
///
/// Propagates forward-pass shape errors.
pub fn quantization_accuracy_drop(model: &GnnModel, graph: &Graph) -> Result<f64> {
    let fp32 = model.forward(graph)?;
    let int8 = quantized_forward(model, graph)?;
    let acc_fp32 = crate::metrics::masked_accuracy(&fp32, graph.labels(), graph.test_mask());
    let acc_int8 = crate::metrics::masked_accuracy(&int8, graph.labels(), graph.test_mask());
    Ok(acc_fp32 - acc_int8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelConfig;
    use crate::train::{TrainConfig, Trainer};
    use gcod_graph::{DatasetProfile, GraphGenerator};

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let t = Tensor::from_vec(2, 3, vec![0.5, -1.0, 0.25, 1.27, -0.9, 0.0]).unwrap();
        for width in [QuantWidth::I8, QuantWidth::I16] {
            let q = QuantizedTensor::quantize(&t, width);
            // Error bound of symmetric quantization: scale / 2.
            assert!(
                q.max_error(&t) <= q.error_bound() + 1e-6,
                "{}",
                width.name()
            );
            assert_eq!(q.rows(), 2);
            assert_eq!(q.cols(), 3);
            assert_eq!(q.width(), width);
        }
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let t = Tensor::zeros(3, 3);
        let q = QuantizedTensor::quantize(&t, QuantWidth::I8);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn quantized_storage_shrinks_with_width() {
        let t = Tensor::zeros(64, 64);
        let q8 = QuantizedTensor::quantize(&t, QuantWidth::I8);
        let q16 = QuantizedTensor::quantize(&t, QuantWidth::I16);
        let fp32_bytes = t.len() * 4;
        assert!(q8.storage_bytes() * 3 < fp32_bytes);
        assert!(q16.storage_bytes() < fp32_bytes);
        assert!(q8.storage_bytes() < q16.storage_bytes());
    }

    #[test]
    fn precision_byte_widths_and_names() {
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Int16.bytes(), 2);
        assert_eq!(Precision::Int8.bytes(), 1);
        assert_eq!(Precision::Fp32.name(), "fp32");
        assert_eq!(Precision::Int16.name(), "int16");
        assert_eq!(Precision::Int8.name(), "int8");
        assert_eq!(Precision::Fp32.quant_width(), None);
        assert_eq!(Precision::Int16.quant_width(), Some(QuantWidth::I16));
        assert_eq!(Precision::Int8.quant_width(), Some(QuantWidth::I8));
        assert_eq!(Precision::all().len(), 3);
        assert_eq!(Precision::default(), Precision::Fp32);
    }

    fn small_graph(seed: u64) -> Graph {
        GraphGenerator::new(seed)
            .generate(&DatasetProfile::custom("q", 100, 300, 16, 4))
            .unwrap()
    }

    #[test]
    fn quantized_model_accuracy_close_to_fp32() {
        let g = small_graph(4);
        let mut model = GnnModel::new(ModelConfig::gcn(&g), 0).unwrap();
        Trainer::new(TrainConfig {
            epochs: 40,
            ..TrainConfig::default()
        })
        .fit(&mut model, &g)
        .unwrap();
        let drop = quantization_accuracy_drop(&model, &g).unwrap();
        // Table VII reports sub-1% drops; allow a loose bound for the small
        // synthetic graph.
        assert!(drop.abs() < 0.1, "unexpected quantization drop {drop}");
    }

    #[test]
    fn quantized_forward_changes_little() {
        let g = small_graph(4);
        let model = GnnModel::new(ModelConfig::gcn(&g), 1).unwrap();
        let fp32 = model.forward(&g).unwrap();
        let int8 = quantized_forward(&model, &g).unwrap();
        let diff = fp32.sub(&int8).unwrap().norm() / fp32.norm().max(1e-9);
        assert!(diff < 0.2, "relative difference {diff}");
    }

    #[test]
    fn int16_tracks_f32_tighter_than_int8() {
        let g = small_graph(7);
        let model = GnnModel::new(ModelConfig::gcn(&g), 3).unwrap();
        let fp32 = model.forward(&g).unwrap();
        let int8 = QuantizedModel::from_model(&model, QuantWidth::I8)
            .forward(&g)
            .unwrap();
        let int16 = QuantizedModel::from_model(&model, QuantWidth::I16)
            .forward(&g)
            .unwrap();
        let drift8 = fp32.sub(&int8).unwrap().norm();
        let drift16 = fp32.sub(&int16).unwrap().norm();
        assert!(
            drift16 < drift8,
            "int16 drift {drift16} should beat int8 drift {drift8}"
        );
        assert!(drift16 / fp32.norm().max(1e-9) < 0.01);
    }

    #[test]
    fn wrapper_matches_explicit_quantized_model() {
        let g = small_graph(9);
        let model = GnnModel::new(ModelConfig::gcn(&g), 2).unwrap();
        let via_wrapper = quantized_forward(&model, &g).unwrap();
        let qm = QuantizedModel::from_model(&model, QuantWidth::I8);
        let via_model = qm.forward(&g).unwrap();
        assert_eq!(via_wrapper, via_model);
        assert_eq!(qm.width(), QuantWidth::I8);
        assert!(qm.param_bytes() < model.num_params() * 4);
    }

    #[test]
    fn quantized_forward_rows_matches_full_gather() {
        let g = small_graph(11);
        let model = GnnModel::new(ModelConfig::gcn(&g), 5).unwrap();
        let qm = QuantizedModel::from_model(&model, QuantWidth::I16);
        let full = qm.forward(&g).unwrap();
        let rows = qm.forward_rows(&g, &[3, 0, 17, 3]).unwrap();
        assert_eq!(rows.row(0), full.row(3));
        assert_eq!(rows.row(1), full.row(0));
        assert_eq!(rows.row(2), full.row(17));
        assert_eq!(rows.row(3), full.row(3));
    }

    #[test]
    fn quantized_path_is_worker_and_kernel_invariant() {
        let g = small_graph(13);
        let base = GnnModel::new(ModelConfig::gcn(&g), 6).unwrap();
        let reference = QuantizedModel::from_model(&base, QuantWidth::I8)
            .forward(&g)
            .unwrap();
        for kernel in KernelKind::all() {
            for workers in [0usize, 1, 2, 3] {
                let model = GnnModel::new(ModelConfig::gcn(&g), 6)
                    .unwrap()
                    .with_kernel(kernel)
                    .with_workers(workers);
                let out = QuantizedModel::from_model(&model, QuantWidth::I8)
                    .forward(&g)
                    .unwrap();
                assert_eq!(out, reference, "{} {}w", kernel.name(), workers);
            }
        }
    }

    #[test]
    fn residual_model_runs_quantized() {
        let g = small_graph(17);
        let mut cfg = ModelConfig::resgcn(&g);
        cfg.num_layers = 4;
        cfg.hidden_dim = 16;
        let model = GnnModel::new(cfg, 1).unwrap();
        let fp32 = model.forward(&g).unwrap();
        let q = QuantizedModel::from_model(&model, QuantWidth::I16)
            .forward(&g)
            .unwrap();
        assert_eq!(q.shape(), fp32.shape());
        let rel = fp32.sub(&q).unwrap().norm() / fp32.norm().max(1e-9);
        assert!(rel < 0.05, "residual quantized drift {rel}");
    }
}
