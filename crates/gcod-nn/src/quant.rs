//! Post-training INT8 quantization.
//!
//! The paper's GCoD (8-bit) variant quantizes weights and activations to
//! 8-bit integers, which halves-to-quarters the off-chip bandwidth demand and
//! lets the accelerator afford 10240 PEs instead of 4096 (Table V footnote).
//! This module provides symmetric per-tensor quantization, a quantized
//! matmul, and a whole-model quantization pass whose accuracy can be compared
//! against the fp32 model (Table VII's "GCoD (8-bit)" rows).

use crate::models::GnnModel;
use crate::{Result, Tensor};
use gcod_graph::Graph;
use serde::{Deserialize, Serialize};

/// A symmetric, per-tensor quantized matrix: `value ≈ scale * q`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    rows: usize,
    cols: usize,
    scale: f32,
    values: Vec<i8>,
}

impl QuantizedTensor {
    /// Quantizes a tensor with a symmetric scale chosen from its max
    /// absolute value.
    pub fn quantize(tensor: &Tensor) -> Self {
        let max_abs = tensor
            .data()
            .iter()
            .fold(0.0f32, |acc, &v| acc.max(v.abs()));
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        let values = tensor
            .data()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        Self {
            rows: tensor.rows(),
            cols: tensor.cols(),
            scale,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Raw INT8 values.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Dequantizes back to fp32.
    pub fn dequantize(&self) -> Tensor {
        let data = self.values.iter().map(|&q| q as f32 * self.scale).collect();
        Tensor::from_vec(self.rows, self.cols, data).expect("shape preserved")
    }

    /// Storage footprint in bytes (1 byte per element plus the scale).
    pub fn storage_bytes(&self) -> usize {
        self.values.len() + std::mem::size_of::<f32>()
    }

    /// Worst-case absolute quantization error of this tensor.
    pub fn max_error(&self, original: &Tensor) -> f32 {
        self.dequantize()
            .data()
            .iter()
            .zip(original.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Bit width used by a model variant; drives the bandwidth model in
/// `gcod-accel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit fixed/floating point (the paper's default GCoD configuration).
    Fp32,
    /// 8-bit integers (the GCoD (8-bit) variant).
    Int8,
}

impl Precision {
    /// Bytes per scalar.
    pub fn bytes(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Int8 => 1,
        }
    }
}

/// Runs fp32 inference with weights that have been round-tripped through
/// INT8, emulating quantized deployment accuracy. Returns the logits.
///
/// # Errors
///
/// Propagates forward-pass shape errors.
pub fn quantized_forward(model: &GnnModel, graph: &Graph) -> Result<Tensor> {
    let mut quantized = model.clone();
    // Round-trip every parameter through INT8.
    for param in quantized.parameters_mut() {
        let q = QuantizedTensor::quantize(param);
        *param = q.dequantize();
    }
    quantized.forward(graph)
}

/// Accuracy drop (in absolute fraction) between fp32 and INT8 inference on
/// the test mask. Positive values mean the quantized model is worse.
///
/// # Errors
///
/// Propagates forward-pass shape errors.
pub fn quantization_accuracy_drop(model: &GnnModel, graph: &Graph) -> Result<f64> {
    let fp32 = model.forward(graph)?;
    let int8 = quantized_forward(model, graph)?;
    let acc_fp32 = crate::metrics::masked_accuracy(&fp32, graph.labels(), graph.test_mask());
    let acc_int8 = crate::metrics::masked_accuracy(&int8, graph.labels(), graph.test_mask());
    Ok(acc_fp32 - acc_int8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelConfig;
    use crate::train::{TrainConfig, Trainer};
    use gcod_graph::{DatasetProfile, GraphGenerator};

    #[test]
    fn quantize_roundtrip_error_is_bounded() {
        let t = Tensor::from_vec(2, 3, vec![0.5, -1.0, 0.25, 1.27, -0.9, 0.0]).unwrap();
        let q = QuantizedTensor::quantize(&t);
        // Error bound of symmetric quantization: scale / 2.
        assert!(q.max_error(&t) <= q.scale() / 2.0 + 1e-6);
        assert_eq!(q.rows(), 2);
        assert_eq!(q.cols(), 3);
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let t = Tensor::zeros(3, 3);
        let q = QuantizedTensor::quantize(&t);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn int8_storage_is_about_a_quarter() {
        let t = Tensor::zeros(64, 64);
        let q = QuantizedTensor::quantize(&t);
        let fp32_bytes = t.len() * 4;
        assert!(q.storage_bytes() * 3 < fp32_bytes);
    }

    #[test]
    fn precision_byte_widths() {
        assert_eq!(Precision::Fp32.bytes(), 4);
        assert_eq!(Precision::Int8.bytes(), 1);
    }

    #[test]
    fn quantized_model_accuracy_close_to_fp32() {
        let g = GraphGenerator::new(4)
            .generate(&DatasetProfile::custom("q", 100, 300, 16, 4))
            .unwrap();
        let mut model = GnnModel::new(ModelConfig::gcn(&g), 0).unwrap();
        Trainer::new(TrainConfig {
            epochs: 40,
            ..TrainConfig::default()
        })
        .fit(&mut model, &g)
        .unwrap();
        let drop = quantization_accuracy_drop(&model, &g).unwrap();
        // Table VII reports sub-1% drops; allow a loose bound for the small
        // synthetic graph.
        assert!(drop.abs() < 0.1, "unexpected quantization drop {drop}");
    }

    #[test]
    fn quantized_forward_changes_little() {
        let g = GraphGenerator::new(4)
            .generate(&DatasetProfile::custom("q2", 60, 150, 8, 3))
            .unwrap();
        let model = GnnModel::new(ModelConfig::gcn(&g), 1).unwrap();
        let fp32 = model.forward(&g).unwrap();
        let int8 = quantized_forward(&model, &g).unwrap();
        let diff = fp32.sub(&int8).unwrap().norm() / fp32.norm().max(1e-9);
        assert!(diff < 0.2, "relative difference {diff}");
    }
}
