//! Neighbour sampling (GraphSAGE-style mini-batch aggregation).
//!
//! Table IV specifies GraphSAGE with neighbourhood sample sizes of 25 and 10
//! for the first and second hop, and the GCoD sub-accelerators carry a
//! dedicated *sampling unit* ("a linear shift register to randomly pick from
//! non-zero elements from the adjacency matrices' columns", Sec. V-B). This
//! module provides the algorithmic counterpart: per-layer fan-out sampling of
//! the adjacency matrix, producing a thinned propagation matrix whose row
//! non-zeros are capped at the fan-out.

use crate::Tensor;
use gcod_graph::{CooMatrix, CsrMatrix, Graph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fan-out schedule: the maximum number of neighbours sampled per node at
/// each layer (outermost layer first), e.g. `[25, 10]` for the paper's
/// GraphSAGE setting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingPlan {
    fanouts: Vec<usize>,
}

impl SamplingPlan {
    /// Creates a plan from per-layer fan-outs.
    pub fn new(fanouts: Vec<usize>) -> Self {
        Self { fanouts }
    }

    /// The paper's GraphSAGE schedule: 25 neighbours at the first hop, 10 at
    /// the second.
    pub fn graphsage_default() -> Self {
        Self::new(vec![25, 10])
    }

    /// Fan-out of layer `layer` (layers beyond the schedule reuse the last
    /// entry).
    pub fn fanout(&self, layer: usize) -> usize {
        self.fanouts
            .get(layer)
            .or_else(|| self.fanouts.last())
            .copied()
            .unwrap_or(usize::MAX)
    }

    /// Number of layers covered explicitly.
    pub fn len(&self) -> usize {
        self.fanouts.len()
    }

    /// Whether the plan has no explicit fan-outs (meaning "no sampling").
    pub fn is_empty(&self) -> bool {
        self.fanouts.is_empty()
    }
}

/// Samples at most `fanout` neighbours per row of the adjacency matrix,
/// without replacement, using the shift-register-style uniform selection the
/// accelerator's sampling unit implements. Rows with at most `fanout`
/// neighbours are kept untouched. The result is row-normalised so the sampled
/// aggregation remains an unbiased mean estimate.
pub fn sample_neighbors(adj: &CsrMatrix, fanout: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = CooMatrix::with_capacity(adj.rows(), adj.cols(), adj.nnz());
    for row in 0..adj.rows() {
        let (cols, _vals) = adj.row(row);
        let picked: Vec<usize> = if cols.len() <= fanout {
            cols.iter().map(|&c| c as usize).collect()
        } else {
            // Partial Fisher-Yates over the column indices.
            let mut indices: Vec<usize> = (0..cols.len()).collect();
            for i in 0..fanout {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..fanout]
                .iter()
                .map(|&i| cols[i] as usize)
                .collect()
        };
        if picked.is_empty() {
            continue;
        }
        let weight = 1.0 / picked.len() as f32;
        for c in picked {
            coo.push(row, c, weight)
                .expect("sampled index within bounds");
        }
    }
    coo.to_csr()
}

/// Result of sampling a full mini-batch computation graph.
#[derive(Debug, Clone)]
pub struct SampledBatch {
    /// One sampled, row-normalised propagation matrix per layer (outermost
    /// layer first).
    pub propagations: Vec<CsrMatrix>,
    /// Seed nodes of the batch.
    pub seeds: Vec<usize>,
}

impl SampledBatch {
    /// Total number of sampled edges across layers.
    pub fn sampled_edges(&self) -> usize {
        self.propagations.iter().map(CsrMatrix::nnz).sum()
    }
}

/// Builds the per-layer sampled propagation matrices for a mini-batch of
/// `seeds` under `plan`. All matrices keep the full node index space (rows
/// outside the receptive field are simply empty), which keeps them directly
/// usable with [`crate::sparse_ops::spmm`] and the dense feature matrix.
pub fn sample_batch(
    graph: &Graph,
    seeds: &[usize],
    plan: &SamplingPlan,
    seed: u64,
) -> SampledBatch {
    let adj = graph.adjacency();
    let mut frontier: Vec<usize> = seeds.to_vec();
    let mut propagations = Vec::with_capacity(plan.len().max(1));
    for layer in 0..plan.len().max(1) {
        let fanout = plan.fanout(layer);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(layer as u64));
        let mut coo = CooMatrix::with_capacity(adj.rows(), adj.cols(), frontier.len() * fanout);
        let mut next_frontier = Vec::new();
        for &node in &frontier {
            if node >= adj.rows() {
                continue;
            }
            let (cols, _) = adj.row(node);
            let picked: Vec<usize> = if cols.len() <= fanout {
                cols.iter().map(|&c| c as usize).collect()
            } else {
                let mut indices: Vec<usize> = (0..cols.len()).collect();
                for i in 0..fanout {
                    let j = rng.gen_range(i..indices.len());
                    indices.swap(i, j);
                }
                indices[..fanout]
                    .iter()
                    .map(|&i| cols[i] as usize)
                    .collect()
            };
            if picked.is_empty() {
                continue;
            }
            let weight = 1.0 / picked.len() as f32;
            for c in picked {
                coo.push(node, c, weight).expect("within bounds");
                next_frontier.push(c);
            }
        }
        next_frontier.sort_unstable();
        next_frontier.dedup();
        propagations.push(coo.to_csr());
        frontier = next_frontier;
    }
    SampledBatch {
        propagations,
        seeds: seeds.to_vec(),
    }
}

/// Runs a sampled mean-aggregation of the node features for the batch's first
/// hop — the operation the accelerator's sampling unit feeds into its SpMM
/// engine.
///
/// # Errors
///
/// Propagates shape errors from the underlying SpMM.
pub fn sampled_aggregate(graph: &Graph, batch: &SampledBatch) -> crate::Result<Tensor> {
    let features = Tensor::from_vec(
        graph.num_nodes(),
        graph.feature_dim(),
        graph.features().to_vec(),
    )
    .expect("graph guarantees the feature shape");
    let first = batch
        .propagations
        .first()
        .cloned()
        .unwrap_or_else(|| CsrMatrix::zeros(graph.num_nodes(), graph.num_nodes()));
    crate::sparse_ops::spmm(&first, &features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn graph() -> Graph {
        GraphGenerator::new(77)
            .generate(&DatasetProfile::custom("sample", 300, 2400, 8, 4))
            .unwrap()
    }

    #[test]
    fn plan_defaults_match_table4() {
        let plan = SamplingPlan::graphsage_default();
        assert_eq!(plan.fanout(0), 25);
        assert_eq!(plan.fanout(1), 10);
        // Layers beyond the schedule reuse the last fan-out.
        assert_eq!(plan.fanout(5), 10);
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
    }

    #[test]
    fn sampling_caps_row_degree() {
        let g = graph();
        let sampled = sample_neighbors(g.adjacency(), 5, 0);
        assert!(sampled.row_degrees().iter().all(|&d| d <= 5));
        // Low-degree rows are untouched.
        for row in 0..g.num_nodes() {
            let original = g.adjacency().row_nnz(row);
            if original <= 5 {
                assert_eq!(sampled.row_nnz(row), original);
            }
        }
    }

    #[test]
    fn sampled_rows_are_mean_normalised() {
        let g = graph();
        let sampled = sample_neighbors(g.adjacency(), 4, 1);
        for row in 0..sampled.rows() {
            let (_, vals) = sampled.row(row);
            if !vals.is_empty() {
                let sum: f32 = vals.iter().sum();
                assert!((sum - 1.0).abs() < 1e-5, "row {row} sums to {sum}");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = graph();
        let a = sample_neighbors(g.adjacency(), 3, 9);
        let b = sample_neighbors(g.adjacency(), 3, 9);
        let c = sample_neighbors(g.adjacency(), 3, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sampled_edges_are_a_subset_of_the_graph() {
        let g = graph();
        let sampled = sample_neighbors(g.adjacency(), 6, 3);
        for (r, c, _) in sampled.iter() {
            assert!(
                g.adjacency().get(r, c) != 0.0,
                "({r},{c}) not in the original graph"
            );
        }
    }

    #[test]
    fn batch_sampling_expands_the_frontier() {
        let g = graph();
        let plan = SamplingPlan::new(vec![5, 3]);
        let batch = sample_batch(&g, &[0, 1, 2], &plan, 0);
        assert_eq!(batch.propagations.len(), 2);
        assert_eq!(batch.seeds, vec![0, 1, 2]);
        // First hop only has rows for the seeds.
        let first = &batch.propagations[0];
        for row in 0..first.rows() {
            if ![0, 1, 2].contains(&row) {
                assert_eq!(first.row_nnz(row), 0);
            } else {
                assert!(first.row_nnz(row) <= 5);
            }
        }
        assert!(batch.sampled_edges() > 0);
        // Second hop covers at least as many rows as the first hop's targets.
        let second_rows: usize = (0..batch.propagations[1].rows())
            .filter(|&r| batch.propagations[1].row_nnz(r) > 0)
            .count();
        assert!(second_rows >= 1);
    }

    #[test]
    fn sampled_aggregation_matches_manual_mean() {
        let g = graph();
        let plan = SamplingPlan::new(vec![1000]); // no truncation
        let batch = sample_batch(&g, &[0], &plan, 0);
        let aggregated = sampled_aggregate(&g, &batch).unwrap();
        // Row 0 should be the exact mean of node 0's neighbour features.
        let (cols, _) = g.adjacency().row(0);
        let mut expected = vec![0.0f32; g.feature_dim()];
        for &c in cols {
            for (e, &v) in expected.iter_mut().zip(g.node_features(c as usize)) {
                *e += v / cols.len() as f32;
            }
        }
        for (a, e) in aggregated.row(0).iter().zip(&expected) {
            assert!((a - e).abs() < 1e-4);
        }
    }
}
