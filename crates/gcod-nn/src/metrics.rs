//! Classification metrics.

use crate::Tensor;
use gcod_graph::NodeMask;

/// Fraction of masked nodes whose argmax prediction matches the label.
/// Returns 0 when the mask is empty.
pub fn masked_accuracy(logits: &Tensor, labels: &[u32], mask: &NodeMask) -> f64 {
    let predictions = logits.argmax_rows();
    let mut correct = 0usize;
    let mut total = 0usize;
    for node in mask.iter() {
        if node < labels.len() {
            total += 1;
            if predictions[node] == labels[node] as usize {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Confusion matrix over the masked nodes (`classes × classes`,
/// rows = ground truth, columns = prediction).
pub fn confusion_matrix(
    logits: &Tensor,
    labels: &[u32],
    mask: &NodeMask,
    classes: usize,
) -> Vec<Vec<usize>> {
    let predictions = logits.argmax_rows();
    let mut matrix = vec![vec![0usize; classes]; classes];
    for node in mask.iter() {
        if node < labels.len() {
            let truth = labels[node] as usize;
            let pred = predictions[node].min(classes.saturating_sub(1));
            if truth < classes {
                matrix[truth][pred] += 1;
            }
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_perfect_predictions() {
        let logits = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]).unwrap();
        let labels = vec![0, 1, 0];
        let mask = NodeMask::from_indices(3, &[0, 1, 2]);
        assert_eq!(masked_accuracy(&logits, &labels, &mask), 1.0);
    }

    #[test]
    fn accuracy_respects_mask() {
        let logits = Tensor::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        let labels = vec![0, 1]; // node 1 is wrong but excluded by the mask
        let mask = NodeMask::from_indices(2, &[0]);
        assert_eq!(masked_accuracy(&logits, &labels, &mask), 1.0);
    }

    #[test]
    fn empty_mask_gives_zero() {
        let logits = Tensor::zeros(2, 2);
        assert_eq!(masked_accuracy(&logits, &[0, 0], &NodeMask::new(2)), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let logits = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0]).unwrap();
        let labels = vec![0, 1, 0];
        let mask = NodeMask::from_indices(3, &[0, 1, 2]);
        let cm = confusion_matrix(&logits, &labels, &mask, 2);
        assert_eq!(cm[0][0], 1); // node 0 correct
        assert_eq!(cm[1][1], 1); // node 1 correct
        assert_eq!(cm[0][1], 1); // node 2 mispredicted as class 1
    }
}
