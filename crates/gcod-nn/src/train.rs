//! Full-batch semi-supervised training loop.
//!
//! Mirrors the paper's training settings (Sec. VI-A): Adam with learning rate
//! 0.01, full-batch gradient descent on the masked cross-entropy loss, with a
//! configurable epoch budget (the paper uses 400; the test-suite uses far
//! fewer on scaled-down graphs).
//!
//! Every epoch runs on the persistent [`gcod_runtime::Pool`]: the cached
//! forward pass, the backward pass and the in-loop evaluation (which takes
//! [`GnnModel::forward`]'s lean, cache-free path) all inherit the model's
//! kernel and worker settings, so the whole epoch — sparse aggregation and
//! dense combination alike — is multi-core while staying bit-deterministic
//! across worker counts. `benches/train.rs` in `gcod-bench` sweeps exactly
//! this loop over workers × datasets.

use crate::loss::masked_cross_entropy;
use crate::metrics::masked_accuracy;
use crate::models::GnnModel;
use crate::optim::Adam;
use crate::Result;
use gcod_graph::Graph;
use serde::{Deserialize, Serialize};

/// Training-loop hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Record train/val accuracy every `log_every` epochs (0 = never).
    pub log_every: usize,
    /// Stop early when the validation accuracy has not improved for this many
    /// epochs (0 disables early stopping).
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 400,
            learning_rate: 0.01,
            weight_decay: 5e-4,
            log_every: 0,
            patience: 0,
        }
    }
}

/// One logged point of the training curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Training loss.
    pub loss: f32,
    /// Training accuracy.
    pub train_accuracy: f64,
    /// Validation accuracy.
    pub val_accuracy: f64,
}

/// Summary of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of epochs actually run (early stopping may cut it short).
    pub epochs_run: usize,
    /// Final loss on the training mask.
    pub final_loss: f32,
    /// Final accuracy on the training mask.
    pub final_train_accuracy: f64,
    /// Final accuracy on the validation mask.
    pub final_val_accuracy: f64,
    /// Final accuracy on the test mask.
    pub final_test_accuracy: f64,
    /// Logged curve (empty when `log_every == 0`).
    pub curve: Vec<EpochRecord>,
}

/// Full-batch trainer.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `graph` and returns the summary report.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the forward/backward passes (e.g. a graph
    /// that does not match the model configuration).
    pub fn fit(&self, model: &mut GnnModel, graph: &Graph) -> Result<TrainReport> {
        let mut optimizer =
            Adam::new(self.config.learning_rate).with_weight_decay(self.config.weight_decay);
        let mut curve = Vec::new();
        let mut best_val = 0.0f64;
        let mut since_best = 0usize;
        let mut epochs_run = 0usize;
        let mut final_loss = 0.0f32;

        for epoch in 0..self.config.epochs {
            let cache = model.forward_cached(graph)?;
            let loss_out = masked_cross_entropy(&cache.logits, graph.labels(), graph.train_mask())?;
            let (wgrads, bgrads) = model.backward(&cache, &loss_out.grad_logits)?;
            let grads = GnnModel::collect_grads(wgrads, bgrads);
            let mut params = model.parameters_mut();
            optimizer.step(&mut params, &grads);
            final_loss = loss_out.loss;
            epochs_run = epoch + 1;

            let should_log = self.config.log_every > 0 && (epoch % self.config.log_every == 0);
            let need_val = should_log || self.config.patience > 0;
            if need_val {
                let logits = model.forward(graph)?;
                let train_acc = masked_accuracy(&logits, graph.labels(), graph.train_mask());
                let val_acc = masked_accuracy(&logits, graph.labels(), graph.val_mask());
                if should_log {
                    curve.push(EpochRecord {
                        epoch,
                        loss: loss_out.loss,
                        train_accuracy: train_acc,
                        val_accuracy: val_acc,
                    });
                }
                if self.config.patience > 0 {
                    if val_acc > best_val + 1e-9 {
                        best_val = val_acc;
                        since_best = 0;
                    } else {
                        since_best += 1;
                        if since_best >= self.config.patience {
                            break;
                        }
                    }
                }
            }
        }

        let logits = model.forward(graph)?;
        Ok(TrainReport {
            epochs_run,
            final_loss,
            final_train_accuracy: masked_accuracy(&logits, graph.labels(), graph.train_mask()),
            final_val_accuracy: masked_accuracy(&logits, graph.labels(), graph.val_mask()),
            final_test_accuracy: masked_accuracy(&logits, graph.labels(), graph.test_mask()),
            curve,
        })
    }

    /// Evaluates a trained model without updating it.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass shape errors.
    pub fn evaluate(&self, model: &GnnModel, graph: &Graph) -> Result<(f64, f64, f64)> {
        let logits = model.forward(graph)?;
        Ok((
            masked_accuracy(&logits, graph.labels(), graph.train_mask()),
            masked_accuracy(&logits, graph.labels(), graph.val_mask()),
            masked_accuracy(&logits, graph.labels(), graph.test_mask()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ModelConfig, ModelKind};
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn graph() -> Graph {
        GraphGenerator::new(5)
            .generate(&DatasetProfile::custom("train", 120, 360, 16, 4))
            .unwrap()
    }

    #[test]
    fn gcn_learns_the_synthetic_labels() {
        let g = graph();
        let mut model = GnnModel::new(ModelConfig::gcn(&g), 0).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            ..TrainConfig::default()
        });
        let before = trainer.evaluate(&model, &g).unwrap().0;
        let report = trainer.fit(&mut model, &g).unwrap();
        assert!(report.final_train_accuracy > before.max(0.5));
        assert!(
            report.final_test_accuracy > 0.4,
            "test acc {}",
            report.final_test_accuracy
        );
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn loss_decreases_over_training() {
        let g = graph();
        let mut model = GnnModel::new(ModelConfig::gcn(&g), 2).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 40,
            log_every: 1,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut model, &g).unwrap();
        let first = report.curve.first().unwrap().loss;
        let last = report.curve.last().unwrap().loss;
        assert!(last < first, "loss {first} -> {last} should decrease");
    }

    #[test]
    fn graphsage_also_trains() {
        let g = graph();
        let mut model = GnnModel::new(ModelConfig::graphsage(&g), 1).unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 40,
            ..TrainConfig::default()
        })
        .fit(&mut model, &g)
        .unwrap();
        assert!(report.final_train_accuracy > 0.5);
    }

    #[test]
    fn gin_also_trains() {
        let g = graph();
        let mut model = GnnModel::new(ModelConfig::gin(&g), 1).unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 40,
            learning_rate: 0.005,
            ..TrainConfig::default()
        })
        .fit(&mut model, &g)
        .unwrap();
        assert!(report.final_train_accuracy > 0.4);
    }

    #[test]
    fn early_stopping_cuts_training_short() {
        let g = graph();
        let mut model = GnnModel::new(ModelConfig::gcn(&g), 3).unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 200,
            patience: 5,
            ..TrainConfig::default()
        })
        .fit(&mut model, &g)
        .unwrap();
        assert!(
            report.epochs_run < 200,
            "should stop early, ran {}",
            report.epochs_run
        );
    }

    #[test]
    fn logging_interval_respected() {
        let g = graph();
        let mut model = GnnModel::new(ModelConfig::gcn(&g), 4).unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 10,
            log_every: 5,
            ..TrainConfig::default()
        })
        .fit(&mut model, &g)
        .unwrap();
        assert_eq!(report.curve.len(), 2);
        assert_eq!(report.curve[0].epoch, 0);
        assert_eq!(report.curve[1].epoch, 5);
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let g = graph();
        let run = || {
            let mut model = GnnModel::new(ModelConfig::gcn(&g), 9).unwrap();
            Trainer::new(TrainConfig {
                epochs: 15,
                ..TrainConfig::default()
            })
            .fit(&mut model, &g)
            .unwrap()
            .final_train_accuracy
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn evaluate_does_not_mutate_model() {
        let g = graph();
        let model = GnnModel::new(ModelConfig::for_kind(ModelKind::Gcn, &g), 0).unwrap();
        let before = model.forward(&g).unwrap();
        let _ = Trainer::new(TrainConfig::default())
            .evaluate(&model, &g)
            .unwrap();
        let after = model.forward(&g).unwrap();
        assert_eq!(before, after);
    }
}
