//! Layer building blocks shared by the GNN model zoo.
//!
//! Every model in Table IV of the paper fits the same per-layer template:
//!
//! ```text
//! H_{l+1} = activation( P_l · H_l · W_l + b_l )       (+ residual for ResGCN)
//! ```
//!
//! where `P_l` is a *propagation matrix* derived from the graph adjacency.
//! The models differ only in how `P_l` is built (symmetric normalization for
//! GCN, sum with weighted self loops for GIN, mean aggregation for
//! GraphSAGE, attention-scaled neighbours for GAT) and in the layer count /
//! hidden width. Keeping that template explicit lets one manual
//! forward/backward implementation serve the whole zoo.

use crate::kernels::{NaiveCsr, SpmmKernel};
use crate::qkernels::{quant_matmul, QuantSpmmKernel};
use crate::quant::{QuantizedLayer, QuantizedTensor};
use crate::{init, Result, Tensor};
use gcod_graph::{CooMatrix, CsrMatrix, Graph, QuantizedCsr, SelfLoops};
use serde::{Deserialize, Serialize};

/// Non-linearity applied after a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// No activation (used on the output layer; softmax lives in the loss).
    Linear,
}

impl Activation {
    /// Applies the activation elementwise.
    pub fn apply(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => x.relu(),
            Activation::Linear => x.clone(),
        }
    }

    /// Applies the activation in place (allocation-free form of
    /// [`Activation::apply`], numerically identical).
    pub fn apply_in_place(self, x: &mut Tensor) {
        match self {
            Activation::Relu => x.relu_in_place(),
            Activation::Linear => {}
        }
    }

    /// Elementwise gradient mask evaluated at the pre-activation input.
    pub fn grad_mask(self, pre_activation: &Tensor) -> Tensor {
        match self {
            Activation::Relu => pre_activation.relu_mask(),
            Activation::Linear => Tensor::full(pre_activation.rows(), pre_activation.cols(), 1.0),
        }
    }

    /// Backward pass of the activation in one fused elementwise sweep:
    /// `grad_output ⊙ activation'(pre_activation)` without materialising the
    /// mask tensor. Bit-identical to `grad_output.hadamard(&grad_mask(..))`
    /// — the per-element expression is the same `g * {1.0|0.0}` product.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ShapeMismatch`] when the shapes differ.
    pub fn apply_grad(
        self,
        grad_output: &Tensor,
        pre_activation: &Tensor,
    ) -> crate::Result<Tensor> {
        match self {
            Activation::Relu => grad_output.zip_with(
                pre_activation,
                |g, p| g * if p > 0.0 { 1.0 } else { 0.0 },
                "relu-grad",
            ),
            Activation::Linear => {
                if grad_output.shape() != pre_activation.shape() {
                    return Err(crate::NnError::ShapeMismatch {
                        context: format!(
                            "linear-grad: {}x{} vs {}x{}",
                            grad_output.rows(),
                            grad_output.cols(),
                            pre_activation.rows(),
                            pre_activation.cols()
                        ),
                    });
                }
                Ok(grad_output.clone())
            }
        }
    }
}

/// How the propagation matrix `P` is derived from the adjacency matrix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Propagation {
    /// GCN: `D^{-1/2} (A + I) D^{-1/2}` (mean-like symmetric normalization).
    SymmetricNormalized,
    /// GraphSAGE (mean variant): `D^{-1} (A + I)`.
    MeanNormalized,
    /// GIN: `A + (1 + eps) I` (sum aggregation with a learnable-ish self
    /// weight; `eps` is treated as a fixed hyper-parameter here).
    SumWithSelfLoop {
        /// The GIN epsilon.
        eps: f32,
    },
    /// GAT: degree-normalized neighbours scaled by per-edge attention. The
    /// attention coefficients are computed from node feature similarity and
    /// treated as constants in the backward pass (a documented
    /// simplification; see DESIGN.md).
    Attention {
        /// Number of attention heads (heads share the propagation matrix but
        /// widen the combination workload).
        heads: usize,
    },
    /// No aggregation: plain MLP layer (used for readouts).
    Identity,
}

impl Propagation {
    /// Materialises the propagation matrix for `graph`.
    ///
    /// For [`Propagation::Attention`] the matrix depends on the current node
    /// features `h`; other variants ignore `h`.
    pub fn matrix(&self, graph: &Graph, h: &Tensor) -> CsrMatrix {
        let adj = graph.adjacency();
        match *self {
            Propagation::SymmetricNormalized => {
                gcod_graph::normalize_symmetric(adj, SelfLoops::Add)
            }
            Propagation::MeanNormalized => gcod_graph::normalize_row(adj, SelfLoops::Add),
            Propagation::SumWithSelfLoop { eps } => {
                let mut coo = adj.to_coo();
                for i in 0..adj.rows() {
                    coo.push(i, i, 1.0 + eps).expect("diagonal in range");
                }
                coo.to_csr()
            }
            Propagation::Attention { .. } => attention_matrix(adj, h),
            Propagation::Identity => CsrMatrix::identity(adj.rows()),
        }
    }

    /// Whether the propagation matrix depends on the node features (and must
    /// therefore be rebuilt every forward pass).
    pub fn is_feature_dependent(&self) -> bool {
        matches!(self, Propagation::Attention { .. })
    }
}

/// Attention propagation: softmax over neighbours of the (scaled) dot-product
/// similarity of the endpoint features, including a self loop.
fn attention_matrix(adj: &CsrMatrix, h: &Tensor) -> CsrMatrix {
    let n = adj.rows();
    let dim = h.cols().max(1) as f32;
    let mut coo = CooMatrix::with_capacity(n, n, adj.nnz() + n);
    for r in 0..n {
        let (cols, _) = adj.row(r);
        // Collect raw scores for neighbours + self.
        let mut targets: Vec<usize> = cols.iter().map(|&c| c as usize).collect();
        targets.push(r);
        let hr = h.row(r.min(h.rows().saturating_sub(1)));
        let mut scores: Vec<f32> = targets
            .iter()
            .map(|&c| {
                let hc = h.row(c.min(h.rows().saturating_sub(1)));
                let dot: f32 = hr.iter().zip(hc).map(|(a, b)| a * b).sum();
                (dot / dim.sqrt()).clamp(-10.0, 10.0)
            })
            .collect();
        // Softmax over the neighbourhood.
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for s in &mut scores {
            *s = (*s - max).exp();
            sum += *s;
        }
        for (t, s) in targets.iter().zip(&scores) {
            coo.push(r, *t, s / sum.max(1e-12))
                .expect("targets within range");
        }
    }
    coo.to_csr()
}

/// One dense layer: weight, bias and activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight matrix `in_dim × out_dim`.
    pub weight: Tensor,
    /// Bias row `1 × out_dim`.
    pub bias: Tensor,
    /// Post-layer activation.
    pub activation: Activation,
}

impl DenseLayer {
    /// Creates a Glorot-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, seed: u64) -> Self {
        Self {
            weight: init::glorot_uniform(in_dim, out_dim, seed),
            bias: init::zeros(1, out_dim),
            activation,
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// Cached intermediate values of one layer's forward pass, needed by the
/// backward pass.
///
/// The layer *input* is deliberately not cached: the backward pass never
/// reads it (gradients flow through `aggregated` and `pre_activation`), and
/// dropping it saves one full activation clone per layer per epoch.
#[derive(Debug, Clone)]
pub struct LayerCache {
    /// Aggregated input `P · H_l`.
    pub aggregated: Tensor,
    /// Pre-activation output `P · H_l · W + b`.
    pub pre_activation: Tensor,
    /// Post-activation output.
    pub output: Tensor,
}

/// Gradients of one layer.
#[derive(Debug, Clone)]
pub struct LayerGrads {
    /// Gradient of the weight matrix.
    pub weight: Tensor,
    /// Gradient of the bias row.
    pub bias: Tensor,
    /// Gradient flowing to the layer input (for the previous layer).
    pub input: Tensor,
}

/// Runs a graph-convolution layer forward: `activation(P · x · W + b)`,
/// using the reference [`NaiveCsr`] SpMM kernel.
///
/// # Errors
///
/// Returns [`crate::NnError::ShapeMismatch`] when the dimensions are inconsistent.
pub fn graph_conv_forward(
    layer: &DenseLayer,
    propagation: &CsrMatrix,
    x: &Tensor,
) -> Result<LayerCache> {
    graph_conv_forward_with(layer, propagation, x, &NaiveCsr)
}

/// [`graph_conv_forward`] with an explicit aggregation kernel.
///
/// Every [`SpmmKernel`] is bit-for-bit identical to [`NaiveCsr`], so the
/// kernel choice changes wall-clock only — training curves, logits and the
/// simulated-perf reports downstream are untouched.
///
/// # Errors
///
/// Returns [`crate::NnError::ShapeMismatch`] when the dimensions are inconsistent.
pub fn graph_conv_forward_with(
    layer: &DenseLayer,
    propagation: &CsrMatrix,
    x: &Tensor,
    kernel: &dyn SpmmKernel,
) -> Result<LayerCache> {
    graph_conv_forward_workers(layer, propagation, x, kernel, 0)
}

/// [`graph_conv_forward_with`] with an explicit worker count for the dense
/// combination (`· W`): 0 selects the global pool's lane count. Worker count
/// never changes the numerics, only wall-clock.
///
/// # Errors
///
/// Returns [`crate::NnError::ShapeMismatch`] when the dimensions are inconsistent.
pub fn graph_conv_forward_workers(
    layer: &DenseLayer,
    propagation: &CsrMatrix,
    x: &Tensor,
    kernel: &dyn SpmmKernel,
    workers: usize,
) -> Result<LayerCache> {
    let aggregated = kernel.spmm(propagation, x)?;
    let mut pre_activation = aggregated.matmul_with(&layer.weight, workers)?;
    pre_activation.add_row_broadcast_in_place(&layer.bias)?;
    let output = layer.activation.apply(&pre_activation);
    Ok(LayerCache {
        aggregated,
        pre_activation,
        output,
    })
}

/// The quantized counterpart of [`graph_conv_forward_workers`]: one
/// graph-convolution layer computed on integer payloads.
///
/// Dataflow (one quantization per operator input, one dequantization per
/// operator output):
///
/// 1. quantize the f32 activations `x` at the layer's width,
/// 2. aggregate against the pre-quantized propagation matrix with the
///    integer SpMM kernel (widened-integer accumulation, dequantized f32
///    out),
/// 3. re-quantize the aggregated activations and combine with the
///    pre-quantized weight via the integer GEMM,
/// 4. run the f32 tail — bias broadcast and activation — at the layer
///    boundary.
///
/// The result is **not** bit-identical to the f32 layer (quantization is
/// lossy by design); it *is* bit-exact across worker counts and tile
/// geometries, because the integer accumulation is order-independent.
///
/// # Errors
///
/// Returns [`crate::NnError::ShapeMismatch`] when the dimensions or operand
/// widths are inconsistent.
pub fn graph_conv_forward_quant(
    layer: &QuantizedLayer,
    propagation: &QuantizedCsr,
    x: &Tensor,
    kernel: &dyn QuantSpmmKernel,
    workers: usize,
) -> Result<Tensor> {
    let width = layer.weight.width();
    let x_q = QuantizedTensor::quantize(x, width);
    let aggregated = kernel.spmm(propagation, &x_q)?;
    let agg_q = QuantizedTensor::quantize(&aggregated, width);
    let mut next = quant_matmul(&agg_q, &layer.weight, workers)?;
    next.add_row_broadcast_in_place(&layer.bias)?;
    layer.activation.apply_in_place(&mut next);
    Ok(next)
}

/// One sharded layer step: the per-shard half of `GnnModel::forward`.
///
/// `prop` holds this shard's *rows* of the full-graph propagation matrix
/// (`|owned| × |locals|`, columns remapped to shard-local ids in ascending
/// global order) and `h_local` the activations of every local node (owned ∪
/// halo, `|locals| × d_in`, rows in the same ascending global order). The
/// result is the next activation of the shard's **owned** rows
/// (`|owned| × d_out`).
///
/// Bit-identity contract: because the propagation rows are sliced (not
/// renormalised) from the full-graph matrix, the column remapping is
/// monotone in global node id (so each CSR row accumulates in exactly the
/// full-graph order), and the op sequence below — SpMM, dense combination,
/// bias broadcast, activation, residual — mirrors `GnnModel::forward`
/// term for term, the owned rows equal the corresponding rows of the
/// single-process forward bit for bit, at every worker count.
///
/// `apply_residual` is `config.residual && layer_index > 0`; like the
/// single-process path, the residual is added only when the layer preserves
/// the width (`d_out == d_in`), reading the previous activation of the owned
/// rows out of `h_local` via `owned_pos` (positions of the owned nodes
/// within the local ordering).
///
/// # Errors
///
/// Returns [`crate::NnError::ShapeMismatch`] when the dimensions are
/// inconsistent or `owned_pos` is out of range.
pub fn shard_layer_forward(
    layer: &DenseLayer,
    prop: &CsrMatrix,
    h_local: &Tensor,
    owned_pos: &[u32],
    apply_residual: bool,
    workers: usize,
) -> Result<Tensor> {
    if prop.rows() != owned_pos.len() {
        return Err(crate::NnError::ShapeMismatch {
            context: format!(
                "shard-layer: {} propagation rows vs {} owned positions",
                prop.rows(),
                owned_pos.len()
            ),
        });
    }
    let aggregated = NaiveCsr.spmm(prop, h_local)?;
    let mut next = aggregated.matmul_with(&layer.weight, workers)?;
    next.add_row_broadcast_in_place(&layer.bias)?;
    layer.activation.apply_in_place(&mut next);
    // Residual connection between same-width hidden layers: the full-graph
    // condition `next.shape() == h.shape()` compares (N, d_out) with
    // (N, d_in), i.e. reduces to the widths matching.
    if apply_residual && next.cols() == h_local.cols() {
        let mut gathered_prev = Tensor::zeros(owned_pos.len(), h_local.cols());
        for (row, &pos) in owned_pos.iter().enumerate() {
            let pos = pos as usize;
            if pos >= h_local.rows() {
                return Err(crate::NnError::ShapeMismatch {
                    context: format!(
                        "shard-layer: owned position {pos} outside {} local rows",
                        h_local.rows()
                    ),
                });
            }
            gathered_prev.row_mut(row).copy_from_slice(h_local.row(pos));
        }
        next.add_assign(&gathered_prev)?;
    }
    Ok(next)
}

/// Backward pass of [`graph_conv_forward`], using the reference
/// [`NaiveCsr`] SpMM kernel.
///
/// `grad_output` is the gradient w.r.t. the layer output. The propagation
/// matrix is treated as a constant (the GCoD graph-tuning step that *does*
/// differentiate w.r.t. the adjacency lives in `gcod-core::polarize`).
///
/// # Errors
///
/// Returns [`crate::NnError::ShapeMismatch`] on inconsistent shapes.
pub fn graph_conv_backward(
    layer: &DenseLayer,
    propagation: &CsrMatrix,
    cache: &LayerCache,
    grad_output: &Tensor,
) -> Result<LayerGrads> {
    graph_conv_backward_with(layer, propagation, cache, grad_output, &NaiveCsr)
}

/// [`graph_conv_backward`] with an explicit aggregation kernel (used for the
/// `Pᵀ · dX` term).
///
/// # Errors
///
/// Returns [`crate::NnError::ShapeMismatch`] on inconsistent shapes.
pub fn graph_conv_backward_with(
    layer: &DenseLayer,
    propagation: &CsrMatrix,
    cache: &LayerCache,
    grad_output: &Tensor,
    kernel: &dyn SpmmKernel,
) -> Result<LayerGrads> {
    graph_conv_backward_workers(layer, propagation, cache, grad_output, kernel, 0)
}

/// [`graph_conv_backward_with`] with an explicit worker count for the dense
/// matmuls and transposes (0 = the global pool's lane count). Worker count
/// never changes the numerics, only wall-clock.
///
/// # Errors
///
/// Returns [`crate::NnError::ShapeMismatch`] on inconsistent shapes.
pub fn graph_conv_backward_workers(
    layer: &DenseLayer,
    propagation: &CsrMatrix,
    cache: &LayerCache,
    grad_output: &Tensor,
    kernel: &dyn SpmmKernel,
    workers: usize,
) -> Result<LayerGrads> {
    // dPre = dOut ⊙ activation'(pre), fused into one elementwise sweep.
    let grad_pre = layer
        .activation
        .apply_grad(grad_output, &cache.pre_activation)?;
    // dW = (P·X)^T · dPre
    let grad_weight = cache
        .aggregated
        .transpose()
        .matmul_with(&grad_pre, workers)?;
    // db = column sums of dPre (rows accumulated in ascending order, exactly
    // like the element-indexed loop it replaces).
    let mut grad_bias = Tensor::zeros(1, layer.out_dim());
    for r in 0..grad_pre.rows() {
        for (slot, &g) in grad_bias.data_mut().iter_mut().zip(grad_pre.row(r)) {
            *slot += g;
        }
    }
    // dX = P^T · (dPre · W^T)
    let grad_combined = grad_pre.matmul_with(&layer.weight.transpose(), workers)?;
    let grad_input = kernel.spmm_transpose(propagation, &grad_combined)?;
    Ok(LayerGrads {
        weight: grad_weight,
        bias: grad_bias,
        input: grad_input,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcod_graph::{DatasetProfile, GraphGenerator};

    fn tiny_graph() -> Graph {
        GraphGenerator::new(1)
            .generate(&DatasetProfile::custom("t", 30, 60, 8, 3))
            .unwrap()
    }

    #[test]
    fn activations() {
        let x = Tensor::from_vec(1, 3, vec![-1.0, 0.5, 2.0]).unwrap();
        assert_eq!(Activation::Relu.apply(&x).data(), &[0.0, 0.5, 2.0]);
        assert_eq!(Activation::Linear.apply(&x), x);
        assert_eq!(Activation::Relu.grad_mask(&x).data(), &[0.0, 1.0, 1.0]);
        assert_eq!(Activation::Linear.grad_mask(&x).data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn propagation_matrices_have_expected_structure() {
        let g = tiny_graph();
        let h = Tensor::zeros(g.num_nodes(), 4);
        let sym = Propagation::SymmetricNormalized.matrix(&g, &h);
        let mean = Propagation::MeanNormalized.matrix(&g, &h);
        let gin = Propagation::SumWithSelfLoop { eps: 0.1 }.matrix(&g, &h);
        let ident = Propagation::Identity.matrix(&g, &h);
        assert_eq!(sym.rows(), g.num_nodes());
        // Mean normalization: every row sums to one.
        for r in 0..mean.rows() {
            let (_, vals) = mean.row(r);
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // GIN keeps raw edges and adds 1 + eps on the diagonal.
        assert!((gin.get(0, 0) - 1.1).abs() < 1e-6);
        assert_eq!(ident.nnz(), g.num_nodes());
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let g = tiny_graph();
        let h = Tensor::full(g.num_nodes(), 4, 0.5);
        let att = Propagation::Attention { heads: 8 }.matrix(&g, &h);
        for r in 0..att.rows() {
            let (_, vals) = att.row(r);
            let sum: f32 = vals.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
        }
        assert!(Propagation::Attention { heads: 8 }.is_feature_dependent());
        assert!(!Propagation::SymmetricNormalized.is_feature_dependent());
    }

    #[test]
    fn forward_shapes() {
        let g = tiny_graph();
        let layer = DenseLayer::new(g.feature_dim(), 5, Activation::Relu, 0);
        let prop = Propagation::SymmetricNormalized.matrix(&g, &Tensor::zeros(1, 1));
        let x = Tensor::from_vec(g.num_nodes(), g.feature_dim(), g.features().to_vec()).unwrap();
        let cache = graph_conv_forward(&layer, &prop, &x).unwrap();
        assert_eq!(cache.output.shape(), (g.num_nodes(), 5));
        assert!(cache.output.data().iter().all(|&v| v >= 0.0), "ReLU output");
    }

    #[test]
    fn backward_gradient_matches_finite_difference() {
        // Numerical gradient check on a tiny layer: perturb one weight and
        // compare d(loss)/d(w) with the analytic gradient, where the loss is
        // the sum of outputs.
        let g = tiny_graph();
        let mut layer = DenseLayer::new(g.feature_dim(), 3, Activation::Relu, 7);
        let prop = Propagation::SymmetricNormalized.matrix(&g, &Tensor::zeros(1, 1));
        let x = Tensor::from_vec(g.num_nodes(), g.feature_dim(), g.features().to_vec()).unwrap();

        let cache = graph_conv_forward(&layer, &prop, &x).unwrap();
        let grad_out = Tensor::full(cache.output.rows(), cache.output.cols(), 1.0);
        let grads = graph_conv_backward(&layer, &prop, &cache, &grad_out).unwrap();

        let eps = 1e-3f32;
        for &(r, c) in &[(0usize, 0usize), (2, 1), (5, 2)] {
            let orig = layer.weight.get(r, c);
            layer.weight.set(r, c, orig + eps);
            let plus = graph_conv_forward(&layer, &prop, &x).unwrap().output.sum();
            layer.weight.set(r, c, orig - eps);
            let minus = graph_conv_forward(&layer, &prop, &x).unwrap().output.sum();
            layer.weight.set(r, c, orig);
            let numeric = (plus - minus) / (2.0 * eps);
            let analytic = grads.weight.get(r, c);
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(1.0),
                "grad mismatch at ({r},{c}): numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn forward_backward_identical_under_every_kernel() {
        let g = tiny_graph();
        let layer = DenseLayer::new(g.feature_dim(), 4, Activation::Relu, 3);
        let prop = Propagation::SymmetricNormalized.matrix(&g, &Tensor::zeros(1, 1));
        let x = Tensor::from_vec(g.num_nodes(), g.feature_dim(), g.features().to_vec()).unwrap();
        let cache = graph_conv_forward(&layer, &prop, &x).unwrap();
        let grad_out = Tensor::full(cache.output.rows(), cache.output.cols(), 0.5);
        let grads = graph_conv_backward(&layer, &prop, &cache, &grad_out).unwrap();
        for kind in crate::kernels::KernelKind::all() {
            let kernel = kind.build();
            let cache_k = graph_conv_forward_with(&layer, &prop, &x, kernel.as_ref()).unwrap();
            assert_eq!(cache_k.output, cache.output, "{}", kernel.name());
            let grads_k =
                graph_conv_backward_with(&layer, &prop, &cache_k, &grad_out, kernel.as_ref())
                    .unwrap();
            assert_eq!(grads_k.weight, grads.weight, "{}", kernel.name());
            assert_eq!(grads_k.bias, grads.bias, "{}", kernel.name());
            assert_eq!(grads_k.input, grads.input, "{}", kernel.name());
        }
    }

    #[test]
    fn shard_layer_forward_matches_full_forward_rows() {
        // Shard = the even nodes, locals = every node (identity column
        // mapping): the sharded step over the sliced propagation rows must
        // reproduce the full layer's even rows bit for bit.
        let g = tiny_graph();
        let layer = DenseLayer::new(g.feature_dim(), 5, Activation::Relu, 11);
        let prop = Propagation::SymmetricNormalized.matrix(&g, &Tensor::zeros(1, 1));
        let x = Tensor::from_vec(g.num_nodes(), g.feature_dim(), g.features().to_vec()).unwrap();
        let full = graph_conv_forward(&layer, &prop, &x).unwrap().output;

        let owned: Vec<usize> = (0..g.num_nodes()).step_by(2).collect();
        let mut indptr = vec![0u64];
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &node in &owned {
            let (cols, vals) = prop.row(node);
            indices.extend_from_slice(cols);
            values.extend_from_slice(vals);
            indptr.push(indices.len() as u64);
        }
        let sliced =
            CsrMatrix::from_parts(owned.len(), prop.cols(), indptr, indices, values).unwrap();
        let owned_pos: Vec<u32> = owned.iter().map(|&n| n as u32).collect();
        let sharded = shard_layer_forward(&layer, &sliced, &x, &owned_pos, false, 0).unwrap();
        for (row, &node) in owned.iter().enumerate() {
            assert_eq!(sharded.row(row), full.row(node), "node {node}");
        }
    }

    #[test]
    fn shard_layer_forward_residual_matches_full_condition() {
        // Same-width layer with residual: sharded output row = full
        // `activation(P·H·W + b) + H` row for the owned nodes.
        let g = tiny_graph();
        let dim = g.feature_dim();
        let layer = DenseLayer::new(dim, dim, Activation::Relu, 3);
        let prop = Propagation::SymmetricNormalized.matrix(&g, &Tensor::zeros(1, 1));
        let x = Tensor::from_vec(g.num_nodes(), dim, g.features().to_vec()).unwrap();
        let mut full = graph_conv_forward(&layer, &prop, &x).unwrap().output;
        full.add_assign(&x).unwrap();

        let owned_pos: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let sharded = shard_layer_forward(&layer, &prop, &x, &owned_pos, true, 0).unwrap();
        assert_eq!(sharded, full);
        // Width-changing layers skip the residual even when requested.
        let narrowing = DenseLayer::new(dim, 3, Activation::Relu, 3);
        let no_res = shard_layer_forward(&narrowing, &prop, &x, &owned_pos, true, 0).unwrap();
        let plain = graph_conv_forward(&narrowing, &prop, &x).unwrap().output;
        assert_eq!(no_res, plain);
    }

    #[test]
    fn shard_layer_forward_rejects_inconsistent_shapes() {
        let g = tiny_graph();
        let layer = DenseLayer::new(g.feature_dim(), 4, Activation::Relu, 0);
        let prop = Propagation::SymmetricNormalized.matrix(&g, &Tensor::zeros(1, 1));
        let x = Tensor::from_vec(g.num_nodes(), g.feature_dim(), g.features().to_vec()).unwrap();
        // owned_pos length must match the propagation row count.
        let err = shard_layer_forward(&layer, &prop, &x, &[0, 1], false, 0);
        assert!(err.is_err());
    }

    #[test]
    fn quant_layer_forward_tracks_f32_layer() {
        use gcod_graph::QuantWidth;
        let g = tiny_graph();
        let layer = DenseLayer::new(g.feature_dim(), 4, Activation::Relu, 5);
        let prop = Propagation::SymmetricNormalized.matrix(&g, &Tensor::zeros(1, 1));
        let x = Tensor::from_vec(g.num_nodes(), g.feature_dim(), g.features().to_vec()).unwrap();
        let f32_out = graph_conv_forward(&layer, &prop, &x).unwrap().output;
        let q_layer = QuantizedLayer {
            weight: QuantizedTensor::quantize(&layer.weight, QuantWidth::I16),
            bias: layer.bias.clone(),
            activation: layer.activation,
        };
        let q_prop = QuantizedCsr::quantize(&prop, QuantWidth::I16);
        let naive = crate::qkernels::NaiveQuantSpmm;
        let out = graph_conv_forward_quant(&q_layer, &q_prop, &x, &naive, 0).unwrap();
        let rel = f32_out.sub(&out).unwrap().norm() / f32_out.norm().max(1e-9);
        assert!(rel < 0.01, "int16 layer drifts {rel} from f32");
        // Worker count never changes the quantized result (integer
        // accumulation is order-independent).
        for workers in [1usize, 2, 3] {
            let parallel = crate::qkernels::ParallelQuantSpmm::with_workers_and_cutoff(workers, 0);
            let out_w =
                graph_conv_forward_quant(&q_layer, &q_prop, &x, &parallel, workers).unwrap();
            assert_eq!(out_w, out, "{workers} workers");
        }
    }

    #[test]
    fn layer_parameter_count() {
        let layer = DenseLayer::new(10, 4, Activation::Linear, 0);
        assert_eq!(layer.num_params(), 44);
        assert_eq!(layer.in_dim(), 10);
        assert_eq!(layer.out_dim(), 4);
    }
}
