//! Deterministic-interleaving model test for the serving dispatcher's
//! reactor wakeup protocol.
//!
//! The full `Server` is too heavy to model-check directly (every explored
//! execution would train models), so this test checks the *protocol
//! skeleton* the dispatcher in `gcod_serve::server` is built from: a
//! bounded [`SyncQueue`] of submissions whose tickets are sticky
//! [`Event`]s, a [`Reactor`] the submitters raise `EV_SUBMIT` on, and the
//! pop-until-empty / closed-check / `Reactor::wait` loop. Properties
//! proved on every schedule:
//!
//! * **no lost wakeup** — a submission pushed-then-raised is always
//!   executed; if the raise could be lost the dispatcher would block in
//!   `Reactor::wait` forever and the checker would report the stuck
//!   schedule as a deadlock;
//! * **drain-on-shutdown** — closing the queue and then the reactor, even
//!   racing in-flight submitters, terminates the dispatcher with every
//!   *accepted* ticket resolved (and every rejected one untouched);
//! * **pause/park handshake** — the `paused`/`parked` condvar protocol
//!   (`Handle::pause` blocks until the dispatcher parks; the parked
//!   dispatcher blocks in `Reactor::wait` until `EV_CONTROL`) neither
//!   loses the park acknowledgement nor strands the dispatcher after
//!   resume.
//!
//! Build with `--features model` or `RUSTFLAGS='--cfg gcod_model'`; on a
//! plain build this file compiles to nothing.

#![cfg(any(feature = "model", gcod_model))]

use std::sync::Arc;

use gcod_runtime::reactor::Event;
use gcod_runtime::sync::model::Model;
use gcod_runtime::sync::{thread, Condvar, Mutex};
use gcod_runtime::{Reactor, SyncQueue};

/// The dispatcher's submit bit (mirrors `EV_SUBMIT` in `gcod_serve`).
const EV_SUBMIT: u64 = 1 << 0;
/// The dispatcher's control bit (mirrors `EV_CONTROL` in `gcod_serve`).
const EV_CONTROL: u64 = 1 << 1;

/// The dispatcher skeleton: pop greedily; on empty decide termination on
/// the queue's closed flag (re-popping once to absorb a submission racing
/// the close), otherwise block on the reactor. Exactly the loop in
/// `Server::dispatcher_loop`, with "execute" reduced to setting the
/// ticket's event.
fn dispatcher_loop(queue: &SyncQueue<Arc<Event>>, reactor: &Reactor) {
    loop {
        match queue.try_pop() {
            Some(ticket) => ticket.set(),
            None => {
                if queue.is_closed() {
                    if queue.is_empty() {
                        break;
                    }
                    continue;
                }
                let _wake = reactor.wait();
            }
        }
    }
}

/// Two submitters race the dispatcher: push-then-raise must never be lost,
/// on any schedule — every ticket resolves, and the dispatcher (woken only
/// through the reactor) terminates once the queue closes behind them.
#[test]
fn submit_wakeups_are_never_lost() {
    let report = Model {
        max_preemptions: 2,
        ..Model::default()
    }
    .check("serve-reactor-no-lost-submit", || {
        let queue = Arc::new(SyncQueue::bounded(4));
        let reactor = Arc::new(Reactor::new());
        let tickets: Vec<Arc<Event>> = (0..2).map(|_| Arc::new(Event::new())).collect();

        let dispatcher = {
            let queue = Arc::clone(&queue);
            let reactor = Arc::clone(&reactor);
            thread::spawn_named("dispatcher", move || dispatcher_loop(&queue, &reactor))
        };
        let submitters: Vec<_> = tickets
            .iter()
            .map(|ticket| {
                let queue = Arc::clone(&queue);
                let reactor = Arc::clone(&reactor);
                let ticket = Arc::clone(ticket);
                thread::spawn_named("submitter", move || {
                    queue.try_push(ticket).expect("queue sized for the test");
                    reactor.raise(EV_SUBMIT);
                })
            })
            .collect();
        for submitter in submitters {
            submitter.join().expect("submitter");
        }
        queue.close();
        reactor.close();
        dispatcher.join().expect("dispatcher");
        for ticket in &tickets {
            assert!(ticket.is_set(), "an accepted submission was never executed");
        }
    });
    assert!(
        report.interleavings >= 100,
        "expected meaningful schedule coverage, got {}",
        report.interleavings
    );
}

/// Shutdown races an in-flight submitter: whatever the schedule, the
/// dispatcher terminates, an accepted ticket resolves, and a rejected one
/// stays untouched — no schedule strands a client or the dispatcher.
#[test]
fn shutdown_drain_resolves_every_accepted_ticket() {
    let report = Model {
        max_preemptions: 2,
        ..Model::default()
    }
    .check("serve-reactor-drain-on-shutdown", || {
        let queue = Arc::new(SyncQueue::bounded(2));
        let reactor = Arc::new(Reactor::new());
        let ticket = Arc::new(Event::new());

        let dispatcher = {
            let queue = Arc::clone(&queue);
            let reactor = Arc::clone(&reactor);
            thread::spawn_named("dispatcher", move || dispatcher_loop(&queue, &reactor))
        };
        let submitter = {
            let queue = Arc::clone(&queue);
            let reactor = Arc::clone(&reactor);
            let ticket = Arc::clone(&ticket);
            thread::spawn_named("submitter", move || {
                let accepted = queue.try_push(ticket).is_ok();
                reactor.raise(EV_SUBMIT);
                accepted
            })
        };
        let closer = {
            let queue = Arc::clone(&queue);
            let reactor = Arc::clone(&reactor);
            thread::spawn_named("closer", move || {
                // Shutdown order matters: queue first (no new accepts, the
                // backlog stays poppable), then the reactor (wakes a
                // blocked dispatcher).
                queue.close();
                reactor.close();
            })
        };
        let accepted = submitter.join().expect("submitter");
        closer.join().expect("closer");
        dispatcher.join().expect("dispatcher");
        assert_eq!(
            ticket.is_set(),
            accepted,
            "accepted tickets must resolve; rejected tickets must not"
        );
    });
    assert!(
        report.interleavings >= 100,
        "expected meaningful schedule coverage, got {}",
        report.interleavings
    );
}

/// The pause/park handshake: `pause()` (set `paused`, raise `EV_CONTROL`,
/// wait for the `parked` acknowledgement) rendezvouses with the dispatcher
/// park loop on every schedule, and `resume()` always un-parks it — no
/// lost acknowledgement, no stranded dispatcher, and the submission
/// accepted before the pause still resolves after it.
#[test]
fn pause_park_handshake_never_loses_the_acknowledgement() {
    struct Control {
        paused: bool,
        parked: bool,
    }
    let report = Model {
        max_preemptions: 2,
        ..Model::default()
    }
    .check("serve-reactor-pause-park", || {
        let queue = Arc::new(SyncQueue::<Arc<Event>>::bounded(2));
        let reactor = Arc::new(Reactor::new());
        let control = Arc::new((
            Mutex::new(Control {
                paused: true,
                parked: false,
            }),
            Condvar::new(),
        ));
        let ticket = Arc::new(Event::new());
        queue
            .try_push(Arc::clone(&ticket))
            .expect("queue sized for the test");

        // The dispatcher: park while paused (mirroring
        // `Shared::park_while_paused`), then drain and exit.
        let dispatcher = {
            let queue = Arc::clone(&queue);
            let reactor = Arc::clone(&reactor);
            let control = Arc::clone(&control);
            thread::spawn_named("dispatcher", move || {
                loop {
                    {
                        let (lock, changed) = &*control;
                        let mut state = lock.lock_unpoisoned();
                        if !state.paused || reactor.is_closed() {
                            state.parked = false;
                            break;
                        }
                        if !state.parked {
                            state.parked = true;
                            changed.notify_all();
                        }
                    }
                    let _wake = reactor.wait();
                }
                dispatcher_loop(&queue, &reactor);
            })
        };
        // The client: block until the park is acknowledged, then resume.
        let pauser = {
            let reactor = Arc::clone(&reactor);
            let control = Arc::clone(&control);
            thread::spawn_named("pauser", move || {
                {
                    let (lock, changed) = &*control;
                    let mut state = lock.lock_unpoisoned();
                    while !state.parked {
                        state = changed.wait(state);
                    }
                    state.paused = false;
                }
                control.1.notify_all();
                reactor.raise(EV_CONTROL);
            })
        };
        pauser.join().expect("pauser");
        queue.close();
        reactor.close();
        dispatcher.join().expect("dispatcher");
        assert!(ticket.is_set(), "the pre-pause submission must still run");
    });
    assert!(
        report.interleavings >= 100,
        "expected meaningful schedule coverage, got {}",
        report.interleavings
    );
}
