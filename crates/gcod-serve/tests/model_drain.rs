//! Deterministic-interleaving model test for the serve shutdown-drain
//! protocol.
//!
//! The full `Server` is too heavy to model-check directly (every explored
//! execution would rebuild graphs and models), so this test checks the
//! *protocol skeleton* the dispatcher is built from — the exact primitive
//! composition of `Server::spawn`/`Handle::shutdown`: a bounded
//! `SyncQueue` of submissions each carrying a one-shot `Latch` ticket, a
//! dispatcher thread that `pop_timeout`s until the `Closed` terminal state,
//! and a shutdown path that closes the queue and joins the dispatcher. The
//! property proved on every schedule: **every accepted ticket resolves** —
//! no submission is dropped between the close and the drain, and the
//! dispatcher never hangs on its way out.
//!
//! Build with `--features model` or `RUSTFLAGS='--cfg gcod_model'`; on a
//! plain build this file compiles to nothing.

#![cfg(any(feature = "model", gcod_model))]

use std::sync::Arc;
use std::time::Duration;

use gcod_runtime::sync::model::{self, Model};
use gcod_runtime::sync::thread;
use gcod_runtime::{Latch, PopTimeout, SyncQueue};

/// One modelled submission: the ticket the client blocks on.
struct Submission {
    ticket: Arc<Latch>,
}

/// The dispatcher skeleton: drain submissions until closed-and-empty,
/// resolving each ticket — the same pop-until-`Closed` loop as
/// `Server::dispatcher_loop`.
fn dispatcher_loop(queue: &SyncQueue<Submission>) {
    loop {
        match queue.pop_timeout(Duration::from_millis(1)) {
            PopTimeout::Item(submission) => submission.ticket.complete_one(),
            PopTimeout::TimedOut => continue,
            PopTimeout::Closed => break,
        }
    }
}

/// On every schedule of {client submitting, shutdown closing, dispatcher
/// draining}, each ticket accepted before the close must resolve, and the
/// dispatcher must terminate.
#[test]
fn shutdown_drain_resolves_every_accepted_ticket() {
    let report = Model {
        max_preemptions: 2,
        ..Model::default()
    }
    .check("serve-shutdown-drain", || {
        let queue: Arc<SyncQueue<Submission>> = Arc::new(SyncQueue::bounded(4));
        let dispatcher = {
            let queue = Arc::clone(&queue);
            thread::spawn_named("dispatcher", move || dispatcher_loop(&queue))
        };
        // A client races the shutdown: some submissions may be rejected by
        // the close, but every *accepted* one must resolve.
        let client = {
            let queue = Arc::clone(&queue);
            thread::spawn_named("client", move || {
                let mut accepted = Vec::new();
                for _ in 0..2 {
                    let ticket = Arc::new(Latch::new(1));
                    let submission = Submission {
                        ticket: Arc::clone(&ticket),
                    };
                    if queue.try_push(submission).is_ok() {
                        accepted.push(ticket);
                    }
                }
                accepted
            })
        };
        let accepted = client.join().expect("client ran to completion");
        queue.close(); // shutdown: reject new work, keep the backlog poppable
        dispatcher.join().expect("dispatcher ran to completion");
        for (i, ticket) in accepted.iter().enumerate() {
            assert!(
                ticket.is_done(),
                "accepted ticket {i} was dropped by the shutdown drain"
            );
        }
    });
    assert!(
        report.interleavings >= 100,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}

/// The close itself may race the drain: a shutdown issued while the
/// dispatcher is mid-pop must neither hang the dispatcher nor strand a
/// queued ticket.
#[test]
fn close_racing_the_drain_leaves_nothing_stranded() {
    model::check("serve-close-races-drain", || {
        let queue: Arc<SyncQueue<Submission>> = Arc::new(SyncQueue::bounded(4));
        let ticket = Arc::new(Latch::new(1));
        queue
            .try_push(Submission {
                ticket: Arc::clone(&ticket),
            })
            .ok()
            .expect("fresh queue accepts the submission");
        let dispatcher = {
            let queue = Arc::clone(&queue);
            thread::spawn_named("dispatcher", move || dispatcher_loop(&queue))
        };
        let closer = {
            let queue = Arc::clone(&queue);
            thread::spawn_named("closer", move || queue.close())
        };
        closer.join().expect("closer ran to completion");
        dispatcher.join().expect("dispatcher ran to completion");
        assert!(ticket.is_done(), "the queued ticket must resolve");
    });
}
