//! Differential suite: a server answering classification from a
//! [`ShardedModel`] must be **bit-identical** to the same trained model
//! registered locally — for every shard count, on several dataset
//! profiles, over both socket flavours, and through both the synchronous
//! and the queued/batched serving paths.

use gcod_graph::{DatasetProfile, Graph, GraphGenerator};
use gcod_nn::models::{GnnModel, ModelConfig};
use gcod_serve::{
    ServeRequest, ServedModel, Server, ShardOptions, ShardedModel, SubmitOptions, Ticket,
};
use gcod_shard::TransportKind;

/// Deterministic graph+model pairs on two distinct dataset profiles.
fn workloads() -> Vec<(Graph, GnnModel)> {
    let profiles = [
        DatasetProfile::custom("shard-diff-a", 150, 600, 12, 5),
        DatasetProfile::custom("shard-diff-b", 220, 500, 8, 3),
    ];
    profiles
        .iter()
        .enumerate()
        .map(|(i, profile)| {
            let graph = GraphGenerator::new(40 + i as u64)
                .generate(profile)
                .expect("generate");
            let model = GnnModel::new(ModelConfig::gcn(&graph), 2 + i as u64).expect("model");
            (graph, model)
        })
        .collect()
}

fn query_sets(n: usize) -> Vec<Vec<usize>> {
    vec![
        vec![0],
        vec![n - 1, 0, n / 2],
        (0..n).step_by(7).collect(),
        vec![3, 3, 3, 5],
        (0..n).collect(),
    ]
}

#[test]
fn sharded_serving_is_bit_identical_for_k_1_2_4() {
    for (graph, model) in workloads() {
        let n = graph.num_nodes();
        let oracle = Server::new().register(ServedModel::new("m", graph.clone(), model.clone()));
        for k in [1usize, 2, 4] {
            let sharded =
                ShardedModel::launch("m", &graph, &model, &ShardOptions::new(k)).expect("launch");
            let server = Server::new().register_sharded(sharded);
            for nodes in query_sets(n) {
                let request = ServeRequest::classify("m", nodes);
                let expected = oracle.serve_one(&request).expect("oracle");
                let got = server.serve_one(&request).expect("sharded");
                assert_eq!(got, expected, "k={k} diverged from single-process");
            }
        }
    }
}

#[test]
fn tcp_transport_matches_uds_bit_for_bit() {
    let (graph, model) = workloads().remove(0);
    let request = ServeRequest::classify("m", (0..graph.num_nodes()).collect());
    let oracle = Server::new()
        .register(ServedModel::new("m", graph.clone(), model.clone()))
        .serve_one(&request)
        .expect("oracle");
    for transport in [TransportKind::default(), TransportKind::Tcp] {
        let sharded = ShardedModel::launch(
            "m",
            &graph,
            &model,
            &ShardOptions::new(3).with_transport(transport),
        )
        .expect("launch");
        let server = Server::new().register_sharded(sharded);
        assert_eq!(
            server.serve_one(&request).expect("sharded"),
            oracle,
            "{transport:?} diverged"
        );
    }
}

#[test]
fn batched_dispatch_over_shards_matches_the_oracle_and_counts_transport() {
    let (graph, model) = workloads().remove(1);
    let requests: Vec<ServeRequest> = query_sets(graph.num_nodes())
        .into_iter()
        .map(|nodes| ServeRequest::classify("m", nodes))
        .collect();
    let oracle = Server::new().register(ServedModel::new("m", graph.clone(), model.clone()));
    let expected: Vec<_> = requests.iter().map(|r| oracle.serve_one(r)).collect();

    let sharded = ShardedModel::launch("m", &graph, &model, &ShardOptions::new(2)).expect("launch");
    let halo_nodes = sharded.plan().total_halo_nodes() as u64;
    let handle = Server::new().register_sharded(sharded).spawn();
    // Pause so every submission coalesces into one dispatcher drain — the
    // fused path must still split back out bit-identically.
    handle.pause();
    let tickets: Vec<Ticket> = requests
        .iter()
        .map(|r| {
            handle
                .submit(r.clone(), SubmitOptions::default())
                .expect("submit")
        })
        .collect();
    handle.resume();
    for (ticket, expected) in tickets.into_iter().zip(expected) {
        assert_eq!(ticket.wait(), expected);
    }
    let stats = handle.shutdown();
    assert_eq!(stats.completed_ok, 5);
    assert_eq!(stats.shard.shards, 2);
    assert_eq!(stats.shard.halo_nodes, halo_nodes);
    assert_eq!(stats.shard.forward_passes, 1, "layer lockstep runs once");
    assert!(stats.shard.frames_sent > 0 && stats.shard.bytes_sent > 0);
    assert!(stats.shard.rows_gathered > 0);
}
