//! Deterministic-interleaving model test for the shard supervisor's
//! recovery state machine.
//!
//! The full `ShardedModel` is too heavy to model-check directly (every
//! explored execution would launch sockets and workers), so this test
//! checks the *protocol skeleton* the supervisor is built from: the
//! [`RecoveryGate`] that serialises respawn cycles, wakes waiters when a
//! cycle finishes, and lets shutdown fence new cycles while in-flight
//! recovery drains. Properties proved on every schedule:
//!
//! * **no double respawn** — two supervisors racing a worker failure never
//!   hold two recovery tokens at once;
//! * **no lost wakeup** — once every cycle has finished, a waiter observes
//!   `Healthy` without blocking;
//! * **shutdown-during-recovery drains cleanly** — a `close` racing an
//!   active cycle neither strands the recoverer nor leaves the gate
//!   mid-recovery.
//!
//! Build with `--features model` or `RUSTFLAGS='--cfg gcod_model'`; on a
//! plain build this file compiles to nothing.

#![cfg(any(feature = "model", gcod_model))]

use std::sync::Arc;
use std::time::Duration;

use gcod_runtime::sync::atomic::{AtomicU64, Ordering};
use gcod_runtime::sync::model::Model;
use gcod_runtime::sync::thread;
use gcod_runtime::{GateWait, RecoveryGate};

/// Two supervisors race the same worker failure. On every schedule at most
/// one holds a recovery token at a time, at least one cycle completes, and
/// afterwards the gate reports healthy immediately — the finish's
/// `notify_all` was not lost.
#[test]
fn racing_supervisors_never_double_respawn_and_waiters_wake() {
    let report = Model {
        max_preemptions: 2,
        ..Model::default()
    }
    .check("shard-supervisor-single-respawner", || {
        let gate = Arc::new(RecoveryGate::new());
        let holders = Arc::new(AtomicU64::new(0));
        let respawns = Arc::new(AtomicU64::new(0));
        let supervisor = |name: &str| {
            let gate = Arc::clone(&gate);
            let holders = Arc::clone(&holders);
            let respawns = Arc::clone(&respawns);
            thread::spawn_named(name, move || {
                match gate.begin_recovery() {
                    Some(token) => {
                        assert_eq!(
                            holders.fetch_add(1, Ordering::SeqCst),
                            0,
                            "two recovery cycles ran concurrently"
                        );
                        respawns.fetch_add(1, Ordering::SeqCst);
                        holders.fetch_sub(1, Ordering::SeqCst);
                        gate.finish(token);
                    }
                    None => {
                        // The peer holds the cycle; a bounded wait must
                        // terminate (TimedOut is a schedulable event in the
                        // model — only hanging would be a bug).
                        let _ = gate.await_healthy(Duration::from_millis(1));
                    }
                }
            })
        };
        let a = supervisor("supervisor-a");
        let b = supervisor("supervisor-b");
        a.join().expect("supervisor a ran to completion");
        b.join().expect("supervisor b ran to completion");
        let completed = respawns.load(Ordering::SeqCst);
        assert!(
            (1..=2).contains(&completed),
            "expected one or two completed cycles, got {completed}"
        );
        assert!(!gate.is_recovering(), "a cycle was left dangling");
        assert_eq!(
            gate.await_healthy(Duration::ZERO),
            GateWait::Healthy,
            "a finished cycle must leave the gate observably healthy — \
             anything else is a lost wakeup"
        );
    });
    assert!(
        report.interleavings >= 100,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}

/// Shutdown races an active recovery cycle. On every schedule the
/// recoverer either completes its cycle (close only fences *new* cycles)
/// or is refused because the close won — and the gate never ends up
/// mid-recovery or admitting post-close cycles.
#[test]
fn shutdown_during_recovery_drains_cleanly() {
    let report = Model {
        max_preemptions: 2,
        ..Model::default()
    }
    .check("shard-supervisor-close-races-recovery", || {
        let gate = Arc::new(RecoveryGate::new());
        let recoverer = {
            let gate = Arc::clone(&gate);
            thread::spawn_named("recoverer", move || match gate.begin_recovery() {
                Some(token) => {
                    gate.finish(token);
                    true
                }
                // Refusal is only legitimate when the close got there first.
                None => gate.is_closed(),
            })
        };
        let closer = {
            let gate = Arc::clone(&gate);
            thread::spawn_named("closer", move || gate.close())
        };
        closer.join().expect("closer ran to completion");
        let resolved = recoverer.join().expect("recoverer ran to completion");
        assert!(resolved, "recoverer was refused while the gate was open");
        assert!(gate.is_closed());
        assert!(
            !gate.is_recovering(),
            "shutdown left a recovery cycle dangling"
        );
        assert_eq!(gate.await_healthy(Duration::ZERO), GateWait::Closed);
        assert!(
            gate.begin_recovery().is_none(),
            "a closed gate admitted a new recovery cycle"
        );
    });
    assert!(
        report.interleavings >= 20,
        "expected a meaningful exploration, got {} interleavings",
        report.interleavings
    );
}
